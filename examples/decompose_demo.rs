//! Worked decomposition examples: the paper's Figure 2 tree and the
//! Figure 5 random benchmark.
//!
//! Figure 2 of the paper decomposes a small graph whose communication is a
//! gossip-of-4 plus extra structure; Figure 5 shows an 8-node random graph
//! that decomposes completely (no remainder) into one MGG4, three G123
//! broadcasts and one G124 broadcast. This example rebuilds both inputs,
//! runs the branch-and-bound and prints the trees.
//!
//! Run with: `cargo run --example decompose_demo`

use noc::prelude::*;
use noc::workloads::pajek;

fn main() {
    // --- A Figure-2-style worked example -------------------------------
    // Gossip among cores {0,1,2,3} plus a loop over {4,5,6,7}: the search
    // tries MGG4 first (leftmost branch of the tree in Figure 2), then the
    // alternatives, and keeps the cheapest.
    let mut builder = Acg::builder(8);
    for a in 0..4 {
        for b in 0..4 {
            if a != b {
                builder = builder.volume(a, b, 8.0);
            }
        }
    }
    for i in 0..4 {
        builder = builder.volume(4 + i, 4 + (i + 1) % 4, 8.0);
    }
    let acg = builder.build();

    let result = SynthesisFlow::new(acg).run().unwrap();
    println!("=== Figure-2-style example: gossip + loop ===");
    println!("{}", result.paper_report());
    println!(
        "search: {} nodes visited, {} leaves, {} branches pruned\n",
        result.stats.nodes_visited, result.stats.leaves_evaluated, result.stats.branches_pruned
    );

    // --- The Figure 5 benchmark ----------------------------------------
    let fig5 = pajek::fig5_benchmark();
    println!(
        "=== Figure 5 benchmark: {} nodes, {} edges ===",
        fig5.core_count(),
        fig5.graph().edge_count()
    );
    let t0 = std::time::Instant::now();
    let result = SynthesisFlow::new(fig5).run().unwrap();
    let elapsed = t0.elapsed();
    println!("{}", result.paper_report());
    println!("decomposed in {elapsed:?} (paper: \"less than 0.1 seconds\" in Matlab)");
    assert!(
        result.decomposition.remainder.is_edgeless(),
        "Figure 5 decomposes completely, as the paper reports"
    );
    println!(
        "matches: {} (paper: 1x MGG4, 3x G123, 1x G124, no remainder)",
        result.decomposition.matchings.len()
    );
}
