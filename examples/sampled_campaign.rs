//! Budgeted adaptive sampling: reach the exhaustive front's quality at a
//! fraction of its flows.
//!
//! Runs the smoke grid three ways — exhaustively, with an ε-greedy
//! bandit, and with successive halving at the same budget — and prints
//! each sampler's per-round provenance (arms pulled, hypervolume
//! trajectory) next to the exhaustive baseline.
//!
//! Run with: `cargo run --release -p noc-explore --example sampled_campaign`

use noc_explore::{Campaign, SamplerConfig, SamplerPolicy, ScenarioGrid};

fn main() {
    let campaign = Campaign::new(ScenarioGrid::smoke());

    let full = campaign.run();
    println!(
        "exhaustive: {} flows, hypervolume {:.6}, spread {:.6}",
        full.points.len(),
        full.hypervolume,
        full.spread
    );

    let budget = full.points.len() * 2 / 3;
    for policy in [SamplerPolicy::DEFAULT_BANDIT, SamplerPolicy::Halving] {
        let config = SamplerConfig::new(budget).policy(policy);
        let sampled = campaign.run_sampled(&config);
        let provenance = sampled.sampler.as_ref().expect("sampled provenance");
        println!(
            "\n{} (budget {budget}, seed {}): {} flows, hypervolume {:.6} ({:.2}% of exhaustive)",
            policy.label(),
            config.seed,
            provenance.flows_spent,
            sampled.hypervolume,
            100.0 * sampled.hypervolume / full.hypervolume,
        );
        for round in &provenance.rounds {
            println!(
                "  round {}: {} flow(s) -> hypervolume {:.6}  [{}]",
                round.round,
                round.flows,
                round.hypervolume,
                round.arms.join(", "),
            );
        }
        // Sampling never invents trade-offs: every sampled front member
        // is on the exhaustive front too.
        assert!(sampled.front.iter().all(|id| full.front.contains(id)));
    }
}
