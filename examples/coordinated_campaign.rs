//! A coordinated multi-worker campaign with a persistent warm-start
//! cache, run twice to show the restart payoff:
//!
//! ```text
//! cargo run --release --example coordinated_campaign
//! ```
//!
//! Run 1 deals the grid to two workers (in-process threads here; the
//! `explore coordinate` CLI uses real OS processes) and persists the VF2
//! match cache the fleet built. Run 2 pretends to be a brand-new fleet:
//! every worker warm-starts from the cache file, and the report's
//! `match_cache` rows show the hits attributed to the warm start. Both
//! runs produce the exact single-shot Pareto front.

use noc::prelude::*;
use noc_explore::coordinate::{coordinate, CoordinatorConfig, ThreadTransport};
use noc_explore::prelude::*;

fn main() {
    let campaign = Campaign::new(
        ScenarioGrid::new()
            .workloads([
                WorkloadSpec::fixed(WorkloadFamily::Fig5),
                WorkloadSpec::new(WorkloadFamily::Tgff, 8, 8),
                WorkloadSpec::new(WorkloadFamily::PajekPlanted, 10, 3),
            ])
            .synthesis_objectives([Objective::Links, Objective::Energy]),
    );
    let single = campaign.run();
    println!(
        "single-shot reference: {} points, front {:?}\n",
        single.points.len(),
        single.front
    );

    let work_dir = std::env::temp_dir().join(format!("coordinated_demo_{}", std::process::id()));
    let cache_path = work_dir.join("match_cache.json");
    std::fs::create_dir_all(&work_dir).expect("work dir");

    for run in ["cold fleet", "warm restart"] {
        let config = CoordinatorConfig::new(2)
            .work_dir(work_dir.join(run.replace(' ', "_")))
            .cache_path(&cache_path);
        let mut transport = ThreadTransport::new(campaign.clone());
        let report = coordinate(&campaign, &config, &mut transport).expect("coordination");

        println!("{run}:");
        for wave in &report.coordinator.as_ref().expect("provenance").waves {
            println!(
                "  wave {}: {} worker(s), {} completed, {} killed, {} re-dealt",
                wave.wave, wave.workers, wave.completed, wave.killed, wave.redealt
            );
        }
        let warm = report.warm_cache.as_ref().expect("warm-cache record");
        let warm_hits: u64 = report.match_cache.iter().map(|c| c.warm_hits).sum();
        println!(
            "  cache: {} graph(s) loaded, {} saved, {} warm hit(s)",
            warm.loaded_graphs, warm.saved_graphs, warm_hits
        );
        assert_eq!(
            report.front, single.front,
            "fleet diverged from single-shot"
        );
        println!("  front == single-shot front\n");
    }

    std::fs::remove_dir_all(&work_dir).ok();
}
