//! Quickstart: synthesize a customized NoC for a small application.
//!
//! Builds an 8-core application characterization graph (a gossip cluster
//! feeding a broadcast tree), runs the full synthesis flow — floorplan,
//! branch-and-bound decomposition, architecture gluing — and prints the
//! paper-format decomposition, the architecture statistics and a quick
//! simulation of one application iteration.
//!
//! Run with: `cargo run --example quickstart`

use noc::prelude::*;
use noc::sim::traffic;

fn main() {
    // 1. Describe the application: cores and communication demands.
    //    Cores 0-3 exchange state all-to-all (a gossip pattern); core 0
    //    then broadcasts results to cores 4-6; core 7 logs from core 4.
    let mut builder = Acg::builder(8)
        .name(0, "dsp0")
        .name(1, "dsp1")
        .name(2, "dsp2")
        .name(3, "dsp3")
        .name(4, "cpu")
        .name(5, "mem")
        .name(6, "io")
        .name(7, "log");
    for a in 0..4 {
        for b in 0..4 {
            if a != b {
                builder = builder.demand(a, b, 256.0, 1.0e6);
            }
        }
    }
    for target in 4..7 {
        builder = builder.demand(0, target, 512.0, 2.0e6);
    }
    builder = builder.demand(4, 7, 128.0, 0.5e6);
    let acg = builder.build();

    // 2. Run the synthesis flow with the paper's defaults (standard
    //    library, 180 nm technology, link-count objective).
    let result = SynthesisFlow::new(acg.clone())
        .seed(42)
        .run()
        .expect("synthesis always succeeds without constraint enforcement");

    println!("=== decomposition (paper format) ===");
    println!("{}", result.paper_report());

    let stats = result.architecture.stats();
    println!("=== synthesized architecture ===");
    println!("channels:        {}", stats.channels);
    println!("physical links:  {}", stats.physical_links);
    println!("total wire:      {:.1} mm", stats.total_wire_mm);
    println!("avg route hops:  {:.2}", stats.avg_route_hops);
    println!("max route hops:  {}", stats.max_route_hops);
    println!("bisection links: {}", stats.bisection_links);
    println!(
        "deadlock-free:   {}",
        result.architecture.is_deadlock_free()
    );
    println!("constraints:     {}", result.constraints);
    println!();

    // 3. Simulate one iteration of the application on the result.
    let model = result.noc_model();
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    let report = Simulator::new(&model, SimConfig::default(), energy)
        .run(traffic::acg_iteration(&acg))
        .expect("synthesized networks route all ACG traffic");
    println!("=== one application iteration on the synthesized NoC ===");
    println!("{report}");
}
