//! The paper's Section 5.2 experiment end to end: distributed AES-128 on a
//! standard 4x4 mesh versus the synthesized customized architecture.
//!
//! Prints the decomposition of the AES application characterization graph
//! (compare with the paper's output: four MGG4 column gossips, two L4 row
//! loops, the shift-by-2 row as remainder, COST: 28) and the prototype
//! comparison table (compare with 271 vs 199 cycles/block, +36% throughput,
//! -17% latency, -33% power, -51% energy/block).
//!
//! Run with: `cargo run --release --example aes_flow`

use noc::prelude::*;

fn main() {
    // First show the engine really encrypts: FIPS-197 Appendix B vector.
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let plaintext = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];
    let run = DistributedAes::new(&key).encrypt_block(&plaintext);
    assert_eq!(run.ciphertext, Aes128::new(&key).encrypt_block(&plaintext));
    println!(
        "distributed AES ciphertext (FIPS-197 App. B): {:02x?}",
        run.ciphertext
    );
    println!(
        "block trace: {} messages, {} bits, {} phases\n",
        run.trace.message_count(),
        run.trace.total_bits(),
        run.trace.phases.len()
    );

    // The full prototype comparison.
    let comparison = AesPrototype::new()
        .input(key, plaintext)
        .run()
        .expect("the AES experiment runs on the default configuration");

    println!("=== AES ACG decomposition (paper Section 5.2 output) ===");
    println!("{}", comparison.decomposition_report);
    println!("=== prototype comparison (paper Section 5.2 table) ===");
    println!("{}", comparison.paper_table());
    println!("mesh:   {}", comparison.mesh);
    println!("custom: {}", comparison.custom);
}
