//! The paper's Section 6 future-work directions, implemented:
//!
//! 1. **Floorplan co-optimization** — "relax the initial floorplan
//!    information and solve the optimization problem for the general
//!    case": alternate floorplanning and decomposition, feeding the
//!    synthesized architecture's link traffic back into the wirelength
//!    objective.
//! 2. **Stochastic routing** — "the possibility of using adaptive or
//!    stochastic routing strategies should be investigated": the O1TURN
//!    oblivious scheme (per-packet XY/YX choice on separate VC layers)
//!    compared against deterministic XY on adversarial transpose traffic.
//!
//! Run with: `cargo run --release --example future_work`

use noc::prelude::*;
use noc::sim::{NocModel as Model, TrafficEvent};

fn main() {
    // ---- 1. floorplan co-optimization --------------------------------
    println!("=== future work 1: floorplan <-> decomposition co-optimization ===");
    let acg = Acg::from_graph_uniform(
        noc::graph::DiGraph::complete(4),
        EdgeDemand::from_volume(1024.0),
    );
    let flow = SynthesisFlow::new(acg)
        .objective(Objective::Energy)
        .seed(11);
    let (best, history) = flow.run_co_optimized(5).unwrap();
    println!("energy-cost history per round:");
    for (round, cost) in history.iter().enumerate() {
        println!(
            "  round {round}: {:.4} nJ{}",
            cost * 1e9,
            if *cost <= history.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-18 {
                "   <- best"
            } else {
                ""
            }
        );
    }
    println!(
        "best chip: {:.2} mm^2, total wire {:.1} mm\n",
        best.placement.chip_area_mm2(),
        best.architecture.stats().total_wire_mm
    );

    // ---- 2. stochastic routing ----------------------------------------
    println!("=== future work 2: stochastic (O1TURN) routing vs XY ===");
    let xy = Model::mesh(6, 6, 1.0);
    let o1turn = Model::mesh_o1turn(6, 6, 1.0, 7);
    // Adversarial transpose traffic: (x, y) -> (y, x) concentrates load on
    // the diagonal under deterministic XY.
    let mut events = Vec::new();
    for x in 0..6usize {
        for y in 0..6usize {
            if x != y {
                for k in 0..4u64 {
                    events.push(TrafficEvent::new(
                        4 * k,
                        NodeId(y * 6 + x),
                        NodeId(x * 6 + y),
                        128,
                    ));
                }
            }
        }
    }
    let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
    for model in [&xy, &o1turn] {
        let report = Simulator::new(model, SimConfig::default(), energy.clone())
            .run(events.clone())
            .unwrap();
        println!(
            "  {:<18} makespan {:>5} cycles, avg latency {:>6.1} cycles",
            report.model_name, report.total_cycles, report.avg_packet_latency_cycles
        );
    }
    println!("(O1TURN spreads the transpose load across both dimension orders)");
}
