//! Random-benchmark sweep in the style of the paper's Figures 4a/4b:
//! decomposition runtime on TGFF-style task graphs (5-18 nodes) and
//! Pajek-style random graphs (10-40 nodes).
//!
//! Run with: `cargo run --release --example random_benchmarks`

use std::time::Instant;

use noc::prelude::*;
use noc::synthesis::SearchStats;
use noc::workloads::{automotive_18, pajek, tgff, TgffConfig};

/// Times the decomposition only: the paper's Figure 4 measures the
/// algorithm itself — "the core coordinates are given as inputs", so the
/// floorplan is precomputed (a simple tile grid here).
fn decompose(acg: Acg) -> (SearchStats, f64) {
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    let placement = Placement::grid(side, side, 2.0, 2.0);
    let t0 = Instant::now();
    let result = SynthesisFlow::new(acg).placement(placement).run().unwrap();
    (result.stats, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    println!("=== Figure 4a: TGFF-style task graphs ===");
    println!(
        "{:>6} {:>7} {:>10} {:>9} {:>8}",
        "nodes", "edges", "time (ms)", "visited", "pruned"
    );
    for tasks in [5usize, 8, 10, 12, 15, 18] {
        let acg = tgff(&TgffConfig {
            tasks,
            seed: tasks as u64,
            ..TgffConfig::default()
        });
        let edges = acg.graph().edge_count();
        let (stats, ms) = decompose(acg);
        println!(
            "{tasks:>6} {edges:>7} {ms:>10.3} {:>9} {:>8}",
            stats.nodes_visited, stats.branches_pruned
        );
    }
    let auto = automotive_18();
    let edges = auto.graph().edge_count();
    let (stats, ms) = decompose(auto);
    println!(
        "{:>6} {edges:>7} {ms:>10.3} {:>9} {:>8}   <- automotive (paper: 0.3 s in Matlab)",
        18, stats.nodes_visited, stats.branches_pruned
    );

    println!("\n=== Figure 4b: Pajek-style random graphs (5 seeds each) ===");
    println!("{:>6} {:>10} {:>12}", "nodes", "avg edges", "avg time (ms)");
    for n in [10usize, 15, 20, 25, 30, 35, 40] {
        let mut total_ms = 0.0;
        let mut total_edges = 0usize;
        let seeds = 5;
        for seed in 0..seeds {
            let acg = pajek::planted(&pajek::PlantedConfig {
                n,
                gossip4: n / 8,
                broadcast4: n / 10,
                broadcast3: n / 8,
                loops4: n / 10,
                noise_prob: 0.01,
                volume: 8.0,
                seed,
            });
            total_edges += acg.graph().edge_count();
            let (_, ms) = decompose(acg);
            total_ms += ms;
        }
        println!(
            "{n:>6} {:>10.1} {:>12.3}",
            total_edges as f64 / seeds as f64,
            total_ms / seeds as f64
        );
    }
    println!("\n(paper envelope: <= 3 minutes at 40 nodes in Matlab; the Rust");
    println!(" implementation with the paper's one-match-per-primitive branching");
    println!(" stays in milliseconds)");
}
