//! A design-space exploration campaign end to end: sweep workloads,
//! synthesis objectives and technologies, stream per-point results, and
//! print the energy/latency/area Pareto front.
//!
//! Run with: `cargo run --release --example pareto_campaign`

use noc::prelude::*;
use noc_explore::prelude::*;

fn main() {
    // The scenario space: 2 fixed benchmarks + a TGFF size sweep, under
    // both printed-COST (Links) and energy-driven synthesis, in two
    // technology generations, each simulated over a short load ramp.
    let grid = ScenarioGrid::new()
        .workloads([
            WorkloadSpec::fixed(WorkloadFamily::Fig5),
            WorkloadSpec::fixed(WorkloadFamily::Multimedia),
        ])
        .workload_family(WorkloadFamily::Tgff, [8, 12], [7])
        .synthesis_objectives([Objective::Links, Objective::Energy])
        .technologies([
            TechnologyProfile::cmos_180nm(),
            TechnologyProfile::cmos_100nm(),
        ])
        .sims([SimSpec {
            rates: vec![0.05, 0.15, 0.30],
            duration_cycles: 300,
            saturation_cutoff: Some(6.0),
            ..SimSpec::default()
        }]);

    println!("campaign over {} scenario points\n", grid.len());

    // Stream completions as JSON Lines to stderr while the campaign runs;
    // the report itself comes back at the end.
    let mut sink = JsonLinesSink::new(std::io::stderr(), ObjectiveKind::DEFAULT.to_vec());
    let report = Campaign::new(grid)
        .threads(0) // one worker per hardware thread
        .run_with_sink(&mut sink);

    println!(
        "{} flows synthesized, {} reused, {:.0} ms wall\n",
        report.flows_synthesized, report.synthesis_reused, report.wall_ms
    );
    println!(
        "{:<44} {:>12} {:>9} {:>9}",
        "PARETO FRONT (energy, latency, area)", "energy pJ", "lat cyc", "area mm2"
    );
    for point in report.front_points() {
        println!(
            "{:<44} {:>12.2} {:>9.2} {:>9.1}",
            point.label,
            point.objectives[0] * 1e12,
            point.objectives[1],
            point.objectives[2],
        );
    }
    println!(
        "\n{} of {} points are Pareto-optimal; the rest are dominated.",
        report.front.len(),
        report.points.len()
    );
}
