//! A design-space exploration campaign end to end: sweep workloads,
//! synthesis objectives and technologies, stream per-point results, and
//! print the energy/latency/area Pareto front.
//!
//! Run with: `cargo run --release --example pareto_campaign`

use noc::prelude::*;
use noc_explore::prelude::*;

fn main() {
    // The scenario space: 2 fixed benchmarks + a TGFF size sweep, under
    // both printed-COST (Links) and energy-driven synthesis, in two
    // technology generations, each simulated over a short load ramp.
    let grid = ScenarioGrid::new()
        .workloads([
            WorkloadSpec::fixed(WorkloadFamily::Fig5),
            WorkloadSpec::fixed(WorkloadFamily::Multimedia),
        ])
        .workload_family(WorkloadFamily::Tgff, [8, 12], [7])
        .synthesis_objectives([Objective::Links, Objective::Energy])
        .technologies([
            TechnologyProfile::cmos_180nm(),
            TechnologyProfile::cmos_100nm(),
        ])
        .sims([SimSpec {
            rates: vec![0.05, 0.15, 0.30],
            duration_cycles: 300,
            saturation_cutoff: Some(6.0),
            ..SimSpec::default()
        }]);

    println!("campaign over {} scenario points\n", grid.len());

    // Stream completions as JSON Lines to stderr while the campaign runs;
    // the report itself comes back at the end.
    let mut sink = JsonLinesSink::new(std::io::stderr(), ObjectiveKind::DEFAULT.to_vec());
    let campaign = Campaign::new(grid).threads(0); // one worker per hardware thread
    let report = campaign.run_with_sink(&mut sink);

    println!(
        "{} flows synthesized, {} reused, {:.0} ms wall\n",
        report.flows_synthesized, report.synthesis_reused, report.wall_ms
    );
    println!(
        "{:<44} {:>12} {:>9} {:>9}",
        "PARETO FRONT (energy, latency, area)", "energy pJ", "lat cyc", "area mm2"
    );
    for point in report.front_points() {
        println!(
            "{:<44} {:>12.2} {:>9.2} {:>9.1}",
            point.label,
            point.objectives[0] * 1e12,
            point.objectives[1],
            point.objectives[2],
        );
    }
    println!(
        "\n{} of {} points are Pareto-optimal; the rest are dominated.",
        report.front.len(),
        report.points.len()
    );
    println!(
        "front quality: hypervolume {:.6}, spread {:.4}",
        report.hypervolume, report.spread
    );
    if !report.match_cache.is_empty() {
        let sizes: Vec<String> = report
            .match_cache
            .iter()
            .map(|c| format!("{}v: {} hits", c.vertex_count, c.hits))
            .collect();
        println!("one shared match cache across sizes: {}", sizes.join(", "));
    }

    // Campaigns are incremental: a report round-trips through its JSON
    // and a resume runs only what is missing — here, nothing.
    let reloaded = noc_explore::CampaignReport::from_json(&report.to_json())
        .expect("reports parse their own output");
    let resumed = campaign
        .resume_from(&reloaded)
        .expect("objectives match, so the report is resumable");
    assert_eq!(resumed.front, report.front);
    println!(
        "\nresume from the finished report: {} points re-run, {} carried — front unchanged.",
        resumed.points.len() - resumed.carried_points,
        resumed.carried_points
    );
}
