//! The explicit-frontier engine's knobs in action: depth-first vs
//! best-first expansion, sequential vs parallel search, and the VF2 match
//! cache — all proving the same optimum on the paper's Figure 5 benchmark
//! and a 40-node Figure 4b-style graph.
//!
//! Run with: `cargo run --release --example engine_modes`

use std::time::Instant;

use noc::prelude::*;
use noc::workloads::pajek;

fn run(acg: &Acg, label: &str, flow: SynthesisFlow) {
    let t0 = Instant::now();
    let result = flow.run().expect("synthesis succeeds without constraints");
    let stats = result.stats;
    println!(
        "{label:<28} cost {:<6} {:>8.2?}  nodes {:<6} pruned {:<6} cache {}/{}",
        result.decomposition.total_cost.value(),
        t0.elapsed(),
        stats.nodes_visited,
        stats.branches_pruned,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
    );
    let _ = acg;
}

fn sweep(name: &str, acg: Acg, show_noncanonical: bool) {
    println!(
        "=== {name}: {} nodes, {} edges ===",
        acg.core_count(),
        acg.graph().edge_count()
    );
    let side = (acg.core_count() as f64).sqrt().ceil() as usize;
    let placement = Placement::grid(side, side, 2.0, 2.0);
    let base = || SynthesisFlow::new(acg.clone()).placement(placement.clone());

    run(&acg, "depth-first, 1 thread", base());
    run(
        &acg,
        "best-first, 1 thread",
        base().search_order(SearchOrder::BestFirst),
    );
    run(&acg, "depth-first, all threads", base().threads(0));
    run(
        &acg,
        "depth-first, cache off",
        base().decomposer_config(DecomposerConfig {
            use_match_cache: false,
            ..DecomposerConfig::default()
        }),
    );
    // Canonical ordering off: the engine re-reaches identical remaining
    // graphs along permuted paths, and the match cache absorbs the
    // re-enumeration (watch the hit count). Only sensible on small
    // graphs — the permutation blowup is factorial in the matching count.
    if show_noncanonical {
        run(
            &acg,
            "permutations via cache",
            base().decomposer_config(DecomposerConfig {
                use_canonical_ordering: false,
                ..DecomposerConfig::default()
            }),
        );
    }
    println!();
}

fn main() {
    sweep("Figure 5 benchmark", pajek::fig5_benchmark(), true);
    sweep(
        "Figure 4b-style, n = 40",
        pajek::planted(&pajek::PlantedConfig {
            n: 40,
            gossip4: 5,
            broadcast4: 4,
            broadcast3: 5,
            loops4: 4,
            noise_prob: 0.01,
            volume: 8.0,
            seed: 7,
        }),
        false,
    );
    println!("every mode proves the same optimum; see DESIGN.md for why");
}
