//! Property tests for the branch-and-bound search itself: the pruning
//! devices (lower bound, canonical ordering) must be *exact* — they may
//! only remove redundant work, never change the optimum.

use noc_energy::{EnergyModel, TechnologyProfile};
use noc_floorplan::Placement;
use noc_graph::{Acg, DiGraph, EdgeDemand, NodeId};
use noc_primitives::CommLibrary;
use noc_synthesis::{CostModel, Decomposer, DecomposerConfig, Objective};
use proptest::prelude::*;

/// Small random ACGs dense enough to contain primitives but small enough
/// for exhaustive search.
fn arb_small_acg() -> impl Strategy<Value = Acg> {
    (5usize..=7, 0u64..500).prop_map(|(n, seed)| {
        // Deterministic pseudo-random edges from the seed.
        let mut g = DiGraph::new(n);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for u in 0..n {
            for v in 0..n {
                if u != v && next() % 100 < 38 {
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
        }
        Acg::from_graph_uniform(g, EdgeDemand::from_volume(8.0))
    })
}

fn cost_model(n: usize, objective: Objective) -> CostModel {
    let side = (n as f64).sqrt().ceil() as usize;
    CostModel::new(
        EnergyModel::new(TechnologyProfile::cmos_180nm()),
        Placement::grid(side, side, 2.0, 2.0),
        objective,
    )
}

fn run(acg: &Acg, lib: &CommLibrary, config: DecomposerConfig, objective: Objective) -> f64 {
    Decomposer::new(acg, lib, cost_model(acg.core_count(), objective))
        .config(config)
        .run()
        .best
        .expect("unconstrained search reaches a leaf")
        .total_cost
        .value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The lower bound never changes the optimum of the exhaustive search.
    #[test]
    fn bound_is_exact(acg in arb_small_acg()) {
        let lib = CommLibrary::standard();
        let exhaustive = DecomposerConfig {
            max_matches_per_level: None,
            ..DecomposerConfig::default()
        };
        let with = run(&acg, &lib, exhaustive.clone(), Objective::Links);
        let without = run(
            &acg,
            &lib,
            DecomposerConfig { use_lower_bound: false, ..exhaustive },
            Objective::Links,
        );
        prop_assert_eq!(with, without);
    }

    /// Canonical sibling ordering never changes the optimum either — it
    /// only collapses permutations of the same matching set.
    #[test]
    fn canonical_ordering_is_exact(acg in arb_small_acg()) {
        let lib = CommLibrary::standard();
        let base = DecomposerConfig {
            max_matches_per_level: None,
            use_lower_bound: false, // isolate the ordering's effect
            ..DecomposerConfig::default()
        };
        let canonical = run(&acg, &lib, base.clone(), Objective::Links);
        let unordered = run(
            &acg,
            &lib,
            DecomposerConfig { use_canonical_ordering: false, ..base },
            Objective::Links,
        );
        prop_assert_eq!(canonical, unordered);
    }

    /// Canonical ordering visits no more nodes than the unordered search.
    #[test]
    fn canonical_ordering_shrinks_the_tree(acg in arb_small_acg()) {
        let lib = CommLibrary::standard();
        let base = DecomposerConfig {
            max_matches_per_level: None,
            use_lower_bound: false,
            ..DecomposerConfig::default()
        };
        let cm = cost_model(acg.core_count(), Objective::Links);
        let canonical = Decomposer::new(&acg, &lib, cm.clone())
            .config(base.clone())
            .run()
            .stats
            .nodes_visited;
        let unordered = Decomposer::new(&acg, &lib, cm)
            .config(DecomposerConfig { use_canonical_ordering: false, ..base })
            .run()
            .stats
            .nodes_visited;
        prop_assert!(canonical <= unordered);
    }

    /// The paper's first-match branching never beats the exhaustive search
    /// (it may tie or lose, never win).
    #[test]
    fn exhaustive_at_least_as_good_as_first_match(acg in arb_small_acg()) {
        let lib = CommLibrary::standard();
        let first = run(&acg, &lib, DecomposerConfig::default(), Objective::Links);
        let exhaustive = run(
            &acg,
            &lib,
            DecomposerConfig { max_matches_per_level: None, ..DecomposerConfig::default() },
            Objective::Links,
        );
        prop_assert!(exhaustive <= first);
    }

    /// Under the Energy objective the optimum is also bound-independent.
    #[test]
    fn energy_bound_is_exact(acg in arb_small_acg()) {
        let lib = CommLibrary::standard();
        let exhaustive = DecomposerConfig {
            max_matches_per_level: None,
            ..DecomposerConfig::default()
        };
        let with = run(&acg, &lib, exhaustive.clone(), Objective::Energy);
        let without = run(
            &acg,
            &lib,
            DecomposerConfig { use_lower_bound: false, ..exhaustive },
            Objective::Energy,
        );
        prop_assert!((with - without).abs() <= 1e-18 + with.abs() * 1e-12);
    }
}
