//! Energy- and performance-driven NoC communication architecture synthesis
//! using a decomposition approach — the core contribution of Ogras &
//! Marculescu (DATE 2005).
//!
//! Given an application characterization graph (ACG), a library of
//! communication primitives and a floorplan, the synthesizer:
//!
//! 1. **decomposes** the ACG into primitive instances with a depth-first
//!    branch-and-bound search over subgraph isomorphisms ([`Decomposer`],
//!    Sections 4.1–4.4 and Figure 3 of the paper);
//! 2. **costs** every matching with the bit-energy model of Equation 1/5
//!    ([`CostModel`]) and prunes branches whose optimistic completion cannot
//!    beat the best known decomposition;
//! 3. **checks** the design constraints of Section 4.2 — per-link bandwidth
//!    aggregation and bisection wiring budget ([`constraints`]);
//! 4. **glues** the optimal implementations of the chosen primitives into a
//!    customized topology with routing tables derived from the optimal
//!    gossip/broadcast schedules ([`Architecture`], Section 4.5), including
//!    channel-dependency-graph deadlock analysis and virtual-channel
//!    assignment.
//!
//! # Quickstart
//!
//! ```
//! use noc_graph::{Acg, EdgeDemand, DiGraph};
//! use noc_primitives::CommLibrary;
//! use noc_floorplan::Placement;
//! use noc_energy::{EnergyModel, TechnologyProfile};
//! use noc_synthesis::{CostModel, Decomposer, Objective};
//!
//! // A 4-core application whose pattern is exactly a gossip-of-4.
//! let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
//! let placement = Placement::grid(2, 2, 2.0, 2.0);
//! let model = EnergyModel::new(TechnologyProfile::cmos_180nm());
//! let cost = CostModel::new(model, placement, Objective::Links);
//!
//! let library = CommLibrary::standard();
//! let result = Decomposer::new(&acg, &library, cost).run();
//! let best = result.best.expect("decomposition exists");
//! assert_eq!(best.matchings.len(), 1); // one MGG4 covers everything
//! assert!(best.remainder.is_edgeless());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod architecture;
pub mod constraints;
mod cost;
mod decompose;

pub use architecture::{Architecture, ArchitectureStats, LinkInfo};
pub use constraints::{ConstraintReport, ConstraintViolation};
pub use cost::{Cost, CostModel, Objective};
pub use decompose::{
    Decomposer, DecomposerConfig, Decomposition, DecompositionOutcome, Matching, SearchOrder,
    SearchStats, SharedMatchCache, SizeCacheStats, WarmStart,
};
