//! Gluing optimal implementations into the customized architecture
//! (Sections 3 and 4.5 of the paper).
//!
//! After the decomposition step, "the communication primitives are replaced
//! by their optimal implementations, and finally glued together to
//! synthesize the customized architecture". Each matching contributes its
//! implementation links (mapped through the matching's vertex map) and its
//! schedule-derived routes; remainder edges contribute dedicated
//! point-to-point links. The result carries everything the simulator and
//! the constraint checker need: channels with lengths and aggregated
//! demands, per-pair routing tables, and a channel-dependency-graph
//! deadlock analysis with virtual-channel assignment.

use std::collections::BTreeMap;

use noc_floorplan::Placement;
use noc_graph::{algo, Acg, DiGraph, NodeId};
use noc_primitives::CommLibrary;

use crate::decompose::Decomposition;

/// Metadata for one directed channel of the synthesized topology.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkInfo {
    /// Wire length in millimetres (floorplan center-to-center distance).
    pub length_mm: f64,
    /// Labels of the primitives (or `"direct"`) that instantiated the
    /// channel.
    pub contributors: Vec<String>,
    /// Sum of `b(e)` over ACG pairs routed across this channel, bits/s.
    pub aggregated_bandwidth_bps: f64,
    /// Sum of `v(e)` over ACG pairs routed across this channel, bits.
    pub carried_volume_bits: f64,
}

/// Aggregate figures of a synthesized architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureStats {
    /// Directed channels.
    pub channels: usize,
    /// Physical (unordered) links.
    pub physical_links: usize,
    /// Total wire length over physical links, mm.
    pub total_wire_mm: f64,
    /// Mean route length over ACG pairs, hops.
    pub avg_route_hops: f64,
    /// Worst route length, hops.
    pub max_route_hops: usize,
    /// Physical links crossing the balanced bisection.
    pub bisection_links: usize,
}

impl std::fmt::Display for ArchitectureStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} channels / {} links, {:.1} mm wire, hops avg {:.2} max {}, bisection {}",
            self.channels,
            self.physical_links,
            self.total_wire_mm,
            self.avg_route_hops,
            self.max_route_hops,
            self.bisection_links
        )
    }
}

/// A synthesized communication architecture: topology + routes + demands.
#[derive(Debug, Clone)]
pub struct Architecture {
    topology: DiGraph,
    links: BTreeMap<(NodeId, NodeId), LinkInfo>,
    routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
    placement: Placement,
}

impl Architecture {
    /// Glues the decomposition's implementation graphs (and remainder
    /// links) into the final architecture.
    ///
    /// # Panics
    ///
    /// Panics if the decomposition is inconsistent with the ACG (never the
    /// case for decompositions produced by [`crate::Decomposer`]).
    pub fn synthesize(
        acg: &Acg,
        library: &CommLibrary,
        decomposition: &Decomposition,
        placement: Placement,
    ) -> Self {
        let n = acg.core_count();
        let mut topology = DiGraph::new(n);
        let mut links: BTreeMap<(NodeId, NodeId), LinkInfo> = BTreeMap::new();
        let mut routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>> = BTreeMap::new();

        let touch_link = |topology: &mut DiGraph,
                          links: &mut BTreeMap<(NodeId, NodeId), LinkInfo>,
                          a: NodeId,
                          b: NodeId,
                          contributor: &str,
                          placement: &Placement| {
            topology.add_edge(a, b);
            let entry = links.entry((a, b)).or_insert_with(|| LinkInfo {
                length_mm: placement.distance_mm(a, b),
                contributors: Vec::new(),
                aggregated_bandwidth_bps: 0.0,
                carried_volume_bits: 0.0,
            });
            if !entry.contributors.iter().any(|c| c == contributor) {
                entry.contributors.push(contributor.to_string());
            }
        };

        for matching in &decomposition.matchings {
            let primitive = library.get(matching.primitive);
            // Channels.
            for e in primitive.implementation().edges() {
                let a = matching.mapping.target_of(e.src);
                let b = matching.mapping.target_of(e.dst);
                touch_link(
                    &mut topology,
                    &mut links,
                    a,
                    b,
                    primitive.label(),
                    &placement,
                );
            }
            // Schedule-derived routes for every covered pair.
            for ((s, d), route) in primitive.routes() {
                let src = matching.mapping.target_of(s);
                let dst = matching.mapping.target_of(d);
                let mapped: Vec<NodeId> = route
                    .iter()
                    .map(|&v| matching.mapping.target_of(v))
                    .collect();
                routes.insert((src, dst), mapped);
            }
        }
        for e in decomposition.remainder.edges() {
            touch_link(
                &mut topology,
                &mut links,
                e.src,
                e.dst,
                "direct",
                &placement,
            );
            routes.insert((e.src, e.dst), vec![e.src, e.dst]);
        }

        // Aggregate demands over routes.
        for (edge, demand) in acg.demands() {
            let route = routes
                .get(&(edge.src, edge.dst))
                .unwrap_or_else(|| panic!("no route covers ACG edge {edge}"));
            for w in route.windows(2) {
                let info = links
                    .get_mut(&(w[0], w[1]))
                    .expect("routes run over instantiated channels");
                info.aggregated_bandwidth_bps += demand.bandwidth;
                info.carried_volume_bits += demand.volume;
            }
        }

        Architecture {
            topology,
            links,
            routes,
            placement,
        }
    }

    /// The directed channel graph.
    pub fn topology(&self) -> &DiGraph {
        &self.topology
    }

    /// The floorplan the architecture was synthesized against.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Channel metadata, keyed by directed `(src, dst)` pair.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), &LinkInfo)> + '_ {
        self.links.iter().map(|(&k, v)| (k, v))
    }

    /// Metadata of one channel.
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<&LinkInfo> {
        self.links.get(&(src, dst))
    }

    /// The route serving `(src, dst)`, if that pair communicates (ACG edge)
    /// or has been filled by [`Architecture::fill_all_pairs`].
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&(src, dst)).map(Vec::as_slice)
    }

    /// Iterates all known routes.
    pub fn routes(&self) -> impl Iterator<Item = ((NodeId, NodeId), &[NodeId])> + '_ {
        self.routes.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Adds shortest-path routes (hop metric over the glued topology) for
    /// every ordered pair that lacks one, so arbitrary traffic can be
    /// simulated. Returns the number of routes added.
    ///
    /// Unreachable pairs are left without routes.
    pub fn fill_all_pairs(&mut self) -> usize {
        let n = self.topology.node_count();
        let mut added = 0;
        for s in 0..n {
            for d in 0..n {
                if s == d || self.routes.contains_key(&(NodeId(s), NodeId(d))) {
                    continue;
                }
                if let Some(path) = algo::shortest_path(&self.topology, NodeId(s), NodeId(d)) {
                    self.routes.insert((NodeId(s), NodeId(d)), path);
                    added += 1;
                }
            }
        }
        added
    }

    /// The *single-VC* channel dependency graph (CDG): one vertex per
    /// directed channel, an edge whenever some route uses one channel
    /// immediately after another. A cyclic CDG means the routing function
    /// can deadlock on one virtual channel (Dally–Seitz); the paper
    /// proposes breaking such cycles with virtual channels (Section 4.5).
    ///
    /// This raw graph ignores [`Self::assign_virtual_channels`], so it
    /// falsely flags multi-VC-safe designs. It is kept as the `num_vcs ==
    /// 1` special case of the VC-aware analysis; use [`Self::verify`] for
    /// the real verdict.
    #[deprecated(
        note = "single-VC view that ignores assign_virtual_channels; use verify() for the \
                VC-aware extended CDG"
    )]
    pub fn channel_dependency_graph(&self) -> (DiGraph, Vec<(NodeId, NodeId)>) {
        let channels: Vec<(NodeId, NodeId)> = self.links.keys().copied().collect();
        let index: BTreeMap<(NodeId, NodeId), usize> =
            channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut cdg = DiGraph::new(channels.len());
        for route in self.routes.values() {
            for w in route.windows(3) {
                let c1 = index[&(w[0], w[1])];
                let c2 = index[&(w[1], w[2])];
                if c1 != c2 {
                    cdg.add_edge(NodeId(c1), NodeId(c2));
                }
            }
        }
        (cdg, channels)
    }

    /// The architecture's routes and VC assignment as a
    /// [`noc_verify::RoutingSpec`] — the input of the static
    /// deadlock-freedom analysis. Channels are the instantiated links,
    /// the VC count and per-hop VC indices come from
    /// [`Self::assign_virtual_channels`].
    pub fn routing_spec(&self, name: &str) -> noc_verify::RoutingSpec {
        let (vcs, num_vcs) = self.assign_virtual_channels();
        noc_verify::RoutingSpec::new(name, self.links.keys().copied(), num_vcs).route_set(
            noc_verify::RouteSet::from_tables("assigned", &self.routes, &vcs),
        )
    }

    /// Statically verifies the routing function under the architecture's
    /// own VC assignment: lint pass plus acyclicity of the VC-aware
    /// extended channel dependency graph. Returns the full diagnostic
    /// [`noc_verify::Verdict`] (witness cycle, lint errors, per-layer
    /// reports), not just a bool.
    pub fn verify(&self) -> noc_verify::Verdict {
        noc_verify::verify(&self.routing_spec("architecture"))
    }

    /// `true` when [`Self::verify`] proves the routing function
    /// deadlock-free under the VC assignment the simulator actually uses.
    ///
    /// The old behavior — acyclicity of the raw single-VC CDG, which
    /// disagrees with [`Self::assign_virtual_channels`] — survives as the
    /// deprecated [`Self::channel_dependency_graph`] and equals this
    /// verdict exactly when the assignment needs a single VC.
    pub fn is_deadlock_free(&self) -> bool {
        self.verify().is_deadlock_free()
    }

    /// Assigns a virtual channel to every hop of every route such that
    /// within each VC layer channel indices strictly increase along any
    /// route — making each layer's dependency graph acyclic and the whole
    /// routing function deadlock-free.
    ///
    /// Returns the per-route VC sequences and the number of VCs needed
    /// (1 if the CDG was already acyclic *and* every route is ascending;
    /// otherwise small, typically 2).
    pub fn assign_virtual_channels(&self) -> (BTreeMap<(NodeId, NodeId), Vec<usize>>, usize) {
        let channels: Vec<(NodeId, NodeId)> = self.links.keys().copied().collect();
        let index: BTreeMap<(NodeId, NodeId), usize> =
            channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut assignment = BTreeMap::new();
        let mut max_vc = 0usize;
        for (&pair, route) in &self.routes {
            let mut vcs = Vec::with_capacity(route.len().saturating_sub(1));
            let mut vc = 0usize;
            let mut prev: Option<usize> = None;
            for w in route.windows(2) {
                let c = index[&(w[0], w[1])];
                if let Some(p) = prev {
                    if c <= p {
                        vc += 1; // descending in the channel order: next layer
                    }
                }
                vcs.push(vc);
                prev = Some(c);
            }
            max_vc = max_vc.max(vc);
            assignment.insert(pair, vcs);
        }
        (assignment, max_vc + 1)
    }

    /// Renders the topology as Graphviz DOT, labeling channels with their
    /// contributing primitives and wire lengths.
    pub fn to_dot(&self, acg: &Acg) -> String {
        noc_graph::dot::to_dot(
            &self.topology,
            "architecture",
            |v| acg.core_name(v).to_string(),
            |s, d| {
                let info = &self.links[&(s, d)];
                format!(
                    "label=\"{} {:.1}mm\", fontsize=8",
                    info.contributors.join("+"),
                    info.length_mm
                )
            },
        )
    }

    /// Aggregate statistics (volume-unweighted route hops).
    pub fn stats(&self) -> ArchitectureStats {
        let mut physical: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
        for (&(a, b), info) in &self.links {
            physical
                .entry((a.min(b), a.max(b)))
                .or_insert(info.length_mm);
        }
        let total_wire_mm = physical.values().sum();
        let hops: Vec<usize> = self.routes.values().map(|r| r.len() - 1).collect();
        let avg_route_hops = if hops.is_empty() {
            0.0
        } else {
            hops.iter().sum::<usize>() as f64 / hops.len() as f64
        };
        let bisection_links = if self.topology.node_count() >= 2 {
            // Count physical links crossing the balanced cut: build the
            // undirected link graph and halve the directed crossing count.
            let mut undirected = DiGraph::new(self.topology.node_count());
            for &(a, b) in physical.keys() {
                undirected.add_edge(a, b);
                undirected.add_edge(b, a);
            }
            let cut = algo::bisection_bandwidth(&undirected, |_, _| 1.0);
            (cut.cut_weight / 2.0).round() as usize
        } else {
            0
        };
        ArchitectureStats {
            channels: self.links.len(),
            physical_links: physical.len(),
            total_wire_mm,
            avg_route_hops,
            max_route_hops: hops.into_iter().max().unwrap_or(0),
            bisection_links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Decomposer, Objective};
    use noc_energy::{EnergyModel, TechnologyProfile};
    use noc_graph::EdgeDemand;

    fn synthesize_gossip4() -> (Acg, CommLibrary, Decomposition, Placement) {
        let acg =
            Acg::from_graph_uniform(DiGraph::complete(4), noc_graph::EdgeDemand::new(8.0, 1.0e6));
        let lib = CommLibrary::standard();
        let placement = Placement::grid(2, 2, 2.0, 2.0);
        let cm = CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            placement.clone(),
            Objective::Links,
        );
        let best = Decomposer::new(&acg, &lib, cm).run().best.unwrap();
        (acg, lib, best, placement)
    }

    #[test]
    fn gossip_architecture_is_the_mgg4_cycle() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let stats = arch.stats();
        assert_eq!(stats.physical_links, 4);
        assert_eq!(stats.channels, 8); // both directions
        assert_eq!(stats.max_route_hops, 2);
        // 8 one-hop + 4 two-hop routes.
        assert!((stats.avg_route_hops - (8.0 + 8.0) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn every_acg_pair_has_a_route_over_channels() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        for (e, _) in acg.demands() {
            let r = arch.route(e.src, e.dst).expect("route exists");
            assert_eq!(r[0], e.src);
            assert_eq!(*r.last().unwrap(), e.dst);
            for w in r.windows(2) {
                assert!(arch.topology().has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn bandwidth_aggregates_over_shared_channels() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        // Total bandwidth over all channels = sum over pairs of b * hops.
        let total_link_bw: f64 = arch.links().map(|(_, i)| i.aggregated_bandwidth_bps).sum();
        let expect: f64 = acg
            .demands()
            .map(|(e, dem)| {
                let hops = arch.route(e.src, e.dst).unwrap().len() - 1;
                dem.bandwidth * hops as f64
            })
            .sum();
        assert!((total_link_bw - expect).abs() < 1e-6);
        // Some channel must carry more than a single pair's bandwidth
        // (aggregation happened: 2-hop routes share links).
        assert!(arch
            .links()
            .any(|(_, i)| i.aggregated_bandwidth_bps > 1.0e6 + 1.0));
    }

    #[test]
    fn remainder_edges_become_direct_links() {
        let acg = Acg::builder(3).volume(0, 1, 4.0).volume(1, 0, 4.0).build();
        let lib = CommLibrary::standard();
        let placement = Placement::grid(3, 1, 2.0, 2.0);
        let cm = CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            placement.clone(),
            Objective::Links,
        );
        let d = Decomposer::new(&acg, &lib, cm).run().best.unwrap();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        assert_eq!(arch.stats().physical_links, 1);
        let info = arch.link(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(info.contributors, vec!["direct"]);
        assert_eq!(info.carried_volume_bits, 4.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deadlock_analysis_on_gossip_architecture() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let (assignment, vcs) = arch.assign_virtual_channels();
        assert_eq!(assignment.len(), 12);
        assert!(vcs <= 2, "gossip routes need at most 2 VCs, got {vcs}");
        // Per-layer ascending invariant.
        let (cdg, channels) = arch.channel_dependency_graph();
        assert_eq!(cdg.node_count(), channels.len());
        for (pair, vcseq) in &assignment {
            let route = arch.route(pair.0, pair.1).unwrap();
            assert_eq!(vcseq.len(), route.len() - 1);
            for w in vcseq.windows(2) {
                assert!(w[1] >= w[0], "vc sequence must be non-decreasing");
            }
        }
    }

    #[test]
    fn verify_certifies_the_vc_assignment() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let verdict = arch.verify();
        // The ascending-per-layer assignment is deadlock-free by
        // construction, so the VC-aware verdict is always clean.
        assert!(verdict.is_deadlock_free(), "{verdict}");
        assert!(verdict.lint.is_empty());
        assert!(verdict.escape_layer_acyclic());
        assert_eq!(verdict.routes_checked, 12);
        assert_eq!(verdict.layers.len(), verdict.num_vcs);
        assert!(arch.is_deadlock_free());
    }

    #[test]
    fn fill_all_pairs_makes_everything_reachable() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let mut arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let before = arch.routes().count();
        let added = arch.fill_all_pairs();
        // Gossip ACG already routes all 12 ordered pairs: nothing to add.
        assert_eq!(added, 0);
        assert_eq!(arch.routes().count(), before);

        // A path ACG only routes consecutive pairs; filling adds the rest
        // that are reachable.
        let acg2 = Acg::from_graph_uniform(DiGraph::path(3), EdgeDemand::from_volume(1.0));
        let lib2 = CommLibrary::standard();
        let placement2 = Placement::grid(3, 1, 2.0, 2.0);
        let cm = CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            placement2.clone(),
            Objective::Links,
        );
        let d2 = Decomposer::new(&acg2, &lib2, cm).run().best.unwrap();
        let mut arch2 = Architecture::synthesize(&acg2, &lib2, &d2, placement2);
        let added2 = arch2.fill_all_pairs();
        assert_eq!(added2, 1); // 0 -> 2 via 1; reverse pairs unreachable
        assert_eq!(
            arch2.route(NodeId(0), NodeId(2)).unwrap(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        assert!(arch2.route(NodeId(2), NodeId(0)).is_none());
    }

    #[test]
    fn dot_export_names_cores_and_primitives() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let dot = arch.to_dot(&acg);
        assert!(dot.contains("digraph architecture"));
        assert!(dot.contains("core0"));
        assert!(dot.contains("MGG4"));
        assert!(dot.contains("mm"));
    }

    #[test]
    fn stats_display_is_informative() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let text = arch.stats().to_string();
        assert!(text.contains("4 links"));
        assert!(text.contains("bisection 2"));
    }

    #[test]
    fn stats_wire_length_uses_floorplan() {
        let (acg, lib, d, placement) = synthesize_gossip4();
        let arch = Architecture::synthesize(&acg, &lib, &d, placement);
        let stats = arch.stats();
        // MGG4 on the 2x2 grid: links (0,1),(2,3) horizontal 2 mm;
        // (0,2),(1,3) vertical 2 mm => total 8 mm.
        assert!((stats.total_wire_mm - 8.0).abs() < 1e-9);
        assert_eq!(stats.bisection_links, 2);
    }
}
