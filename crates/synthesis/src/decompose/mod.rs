//! The branch-and-bound decomposition engine
//! (Sections 4.1–4.4, Figures 2 and 3 of the paper).
//!
//! The search walks a tree whose nodes are *remaining graphs*. At each node
//! it enumerates, for every library primitive in order, the distinct
//! subgraph images of the primitive's representation graph in the remaining
//! graph (a *matching*, Definition 4), subtracts the image, and explores
//! the child. When no primitive matches, the node is a leaf: the
//! decomposition is the path of matchings plus the remainder graph, and its
//! cost is `Σ C(M_i) + C(R)` (Equation 3). A branch is cut when its current
//! cost plus an admissible bound on completing the remaining graph cannot
//! beat the best decomposition found so far.
//!
//! Because every matching subtracts its image, the images along a path are
//! pairwise edge-disjoint — so a decomposition is a *set* of matchings, and
//! any permutation of the same set reaches the same leaf. The search
//! therefore enumerates matchings in canonical (primitive id, image) order
//! only, which prunes the `k!` permutations of each `k`-matching
//! decomposition without losing any leaf (an exact reduction the paper's
//! Figure 3 pseudo-code leaves implicit).
//!
//! # Engine architecture
//!
//! The engine is split into a module family (design notes in `DESIGN.md`):
//!
//! * [`frontier`] — the search is *iterative* over an explicit open list
//!   with a pluggable expansion order ([`SearchOrder`]): LIFO depth-first
//!   (reproducing the recursive search's preorder exactly, and therefore
//!   the paper's printed decompositions) or best-first on the optimistic
//!   bound. Open nodes are edge bitmasks in a struct-of-arrays arena, not
//!   materialized graphs; bounds are recomputed incrementally from a
//!   precomputed per-edge table instead of rescanning graphs.
//! * [`cache`] — a VF2 match-enumeration cache keyed by the remaining
//!   graph's edge bitset, so identical remaining graphs reached along
//!   different paths never re-enumerate matchings. Hits and misses are
//!   reported in [`SearchStats`].
//! * [`parallel`] — workers claim whole subtrees as *packets* and expand
//!   them on private frontiers, donating shallow nodes through a shared
//!   injector only when peers are starved; the incumbent best cost is
//!   shared through an atomic, so pruning stays global, and statistics are
//!   aggregated through atomics. Sequential and parallel searches prove
//!   the same optimum (the bound is admissible and pruning is strict), so
//!   best costs are identical.

mod cache;
mod frontier;
mod parallel;
mod persist;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use noc_energy::Energy;
use noc_graph::{
    iso::{Mapping, Vf2},
    Acg, BitSetKey, DiGraph, Edge, NodeId,
};
use noc_primitives::{CommLibrary, Primitive, PrimitiveId};

use crate::{
    constraints,
    cost::{Cost, CostModel, Objective},
    Architecture,
};

use cache::{ImageList, MatchCache};
use frontier::{mask_le, mask_subset, path_to_vec, Frontier, PathLink, PoppedNode};

pub use cache::{SharedMatchCache, SizeCacheStats, WarmStart};

/// One matched primitive instance on the decomposition path.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Which library primitive matched.
    pub primitive: PrimitiveId,
    /// The primitive's label (`MGG4`, `G123`, …).
    pub label: String,
    /// The injective map from primitive vertices to ACG cores.
    pub mapping: noc_graph::iso::Mapping,
    /// This matching's cost contribution (Equation 5).
    pub cost: Cost,
}

impl Matching {
    /// The ACG edges this matching covers (the image of the representation
    /// graph), sorted.
    pub fn covered_edges(&self, library: &CommLibrary) -> Vec<Edge> {
        self.mapping
            .image_edges(library.get(self.primitive).representation())
    }

    /// Formats the matching one line in the paper's output style:
    /// `1: MGG4,       Mapping: (1 1), (2 5), (3 9), (4 13)`.
    pub fn paper_line(&self) -> String {
        format!(
            "{}: {},\tMapping: {}",
            self.primitive.paper_id(),
            self.label,
            self.mapping.paper_format()
        )
    }
}

/// A complete decomposition: the root-to-leaf matchings plus the remainder
/// graph that matched nothing (Equation 2: `G = Σ M_i(L_i) + R`).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Matchings in the order they were subtracted.
    pub matchings: Vec<Matching>,
    /// The remaining graph (full vertex set, uncovered edges).
    pub remainder: DiGraph,
    /// Cost assigned to the remainder (dedicated point-to-point links).
    pub remainder_cost: Cost,
    /// Total decomposition cost (Equation 3).
    pub total_cost: Cost,
}

impl Decomposition {
    /// Renders the decomposition in the paper's output format, e.g. for the
    /// AES ACG:
    ///
    /// ```text
    /// COST: 28
    /// 1: MGG4,    Mapping: (1 1), (2 5), (3 9), (4 13)
    ///  1: MGG4,    Mapping: (1 2), (2 6), (3 10), (4 14)
    ///  ...
    ///        0: Remaining Graph: 9 -> 11, 10 -> 12, 11 -> 9, 12 -> 10
    /// ```
    ///
    /// Vertices are printed 1-based as in the paper.
    pub fn paper_report(&self) -> String {
        let mut out = format!("COST: {}\n", self.total_cost);
        for (depth, m) in self.matchings.iter().enumerate() {
            out.push_str(&" ".repeat(depth));
            out.push_str(&m.paper_line());
            out.push('\n');
        }
        out.push_str(&" ".repeat(self.matchings.len()));
        if self.remainder.is_edgeless() {
            out.push_str("0: Remaining Graph: (empty)\n");
        } else {
            let edges: Vec<String> = self
                .remainder
                .edges()
                .map(|e| format!("{} -> {}", e.src.index() + 1, e.dst.index() + 1))
                .collect();
            out.push_str(&format!("0: Remaining Graph: {}\n", edges.join(", ")));
        }
        out
    }

    /// Returns the multiset of covered + remaining edges; equals the input
    /// ACG edge set for any valid decomposition (tested property).
    pub fn all_edges(&self, library: &CommLibrary) -> Vec<Edge> {
        let mut edges: Vec<Edge> = self
            .matchings
            .iter()
            .flat_map(|m| m.covered_edges(library))
            .chain(self.remainder.edges())
            .collect();
        edges.sort();
        edges
    }
}

/// Wall-clock attribution of the search to its hot phases, collected when
/// [`DecomposerConfig::profile_phases`] is set. Workers time each phase on
/// thread-local counters and flush once at exit, so profiling adds only a
/// pair of `Instant` reads per phase entry and nothing when disabled.
///
/// The phases partition the *accounted* time; the (small) remainder of
/// [`SearchStats::elapsed`] is loop overhead and thread coordination.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// VF2 match enumeration, including cache probes and the canonical-cut
    /// existence probes.
    pub match_enum: Duration,
    /// Matching-cost evaluation and lower-bound recomputation.
    pub bound: Duration,
    /// Frontier operations: pops, child staging and commits, and graph
    /// materialization from edge masks.
    pub frontier: Duration,
    /// Leaf evaluation: remainder cost, constraint checks, incumbent
    /// installs.
    pub leaf: Duration,
}

/// Search statistics for the runtime figures (Figures 4a/4b).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Search-tree nodes expanded.
    pub nodes_visited: u64,
    /// Leaves (complete decompositions) evaluated.
    pub leaves_evaluated: u64,
    /// Branches cut by the lower bound.
    pub branches_pruned: u64,
    /// Leaves rejected by the Section 4.2 constraints.
    pub constraint_rejections: u64,
    /// VF2 enumerations answered from the match cache.
    pub cache_hits: u64,
    /// VF2 enumerations that had to run (cache enabled but cold).
    pub cache_misses: u64,
    /// `true` if the search hit the configured timeout.
    pub timed_out: bool,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Per-phase wall-clock attribution; present iff
    /// [`DecomposerConfig::profile_phases`] was set.
    pub phases: Option<PhaseBreakdown>,
}

/// Outcome of a decomposition run.
#[derive(Debug, Clone)]
pub struct DecompositionOutcome {
    /// The minimum-cost legal decomposition, if any leaf was reached.
    pub best: Option<Decomposition>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Expansion order of the explicit-frontier engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchOrder {
    /// Classic depth-first branch-and-bound — reproduces the recursive
    /// search (and the paper's printed decompositions) exactly.
    #[default]
    DepthFirst,
    /// Pop the open node with the smallest optimistic completion bound
    /// first. Reaches strong incumbents sooner on irregular graphs; the
    /// proven optimum is identical to depth-first.
    BestFirst,
}

/// Tuning knobs for the branch-and-bound.
#[derive(Debug, Clone)]
pub struct DecomposerConfig {
    /// Abort the search after this wall-clock budget, keeping the best
    /// decomposition found so far (the paper's suggested time-out for
    /// graphs with no library match, Section 5.1).
    pub timeout: Option<Duration>,
    /// Consider at most this many distinct images per primitive per node
    /// (`None` = all).
    ///
    /// The default is `Some(1)`, which is what the paper's Figure 3
    /// pseudo-code does: each tree node branches once per *library graph*
    /// ("if **a** subgraph S in I is isomorphic to G"), subtracting the
    /// first isomorphism found — see the three-way branching of Figure 2.
    /// `None` explores every distinct image (an exhaustive extension;
    /// slower but can find cheaper covers on irregular graphs).
    pub max_matches_per_level: Option<usize>,
    /// Cap on raw VF2 enumerations per call, bounding worst-case matcher
    /// work before image deduplication.
    pub max_raw_matches: usize,
    /// Enable the admissible lower bound of Figure 3 (disable to measure
    /// its effect — see the `ablation_bounding` bench).
    pub use_lower_bound: bool,
    /// Reject leaves violating link-bandwidth or bisection constraints
    /// (Section 4.2) using the cost model's technology profile.
    pub check_constraints: bool,
    /// Enumerate matchings in canonical (primitive, image) order only,
    /// collapsing the `k!` permutations of each matching set (an exact
    /// reduction — see the module docs). Disable only to verify exactness
    /// or measure the blowup (the match cache then absorbs most of it).
    pub use_canonical_ordering: bool,
    /// Expansion order of the explicit frontier.
    pub order: SearchOrder,
    /// Worker threads for the top-level fan-out: `1` = sequential
    /// (default, fully deterministic including tie-breaks), `0` = one per
    /// hardware thread, `n` = exactly `n`. Parallel runs return the same
    /// best *cost* as sequential runs; among equal-cost optima the winner
    /// may differ.
    pub threads: usize,
    /// Memoize VF2 match enumerations per remaining graph (see
    /// [`SearchStats::cache_hits`]).
    pub use_match_cache: bool,
    /// Maximum match-cache entries kept (bounds memory on huge searches).
    pub match_cache_capacity: usize,
    /// Collect the per-phase wall-clock breakdown
    /// ([`SearchStats::phases`]). Off by default: profiling reads the
    /// clock around every phase entry, which is measurable on tiny
    /// searches.
    pub profile_phases: bool,
    /// A [`SharedMatchCache`] reused *across* runs (exploration campaigns
    /// hand one cache to every scenario). Only honored while
    /// `use_match_cache` is `true`. Cache keys are size-tagged (vertex
    /// count + edge bitset), so a single cache soundly serves searches
    /// over any mix of graph sizes. [`SearchStats`] hit/miss counts stay
    /// per-run either way.
    pub shared_cache: Option<SharedMatchCache>,
}

impl Default for DecomposerConfig {
    fn default() -> Self {
        DecomposerConfig {
            timeout: None,
            max_matches_per_level: Some(1),
            max_raw_matches: 100_000,
            use_lower_bound: true,
            check_constraints: false,
            use_canonical_ordering: true,
            order: SearchOrder::DepthFirst,
            threads: 1,
            use_match_cache: true,
            match_cache_capacity: 1 << 16,
            profile_phases: false,
            shared_cache: None,
        }
    }
}

/// The branch-and-bound decomposition engine; see the
/// [crate example](crate).
#[derive(Debug)]
pub struct Decomposer<'a> {
    acg: &'a Acg,
    library: &'a CommLibrary,
    cost_model: CostModel,
    config: DecomposerConfig,
}

impl<'a> Decomposer<'a> {
    /// Creates a decomposer with the default configuration.
    pub fn new(acg: &'a Acg, library: &'a CommLibrary, cost_model: CostModel) -> Self {
        Decomposer {
            acg,
            library,
            cost_model,
            config: DecomposerConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn config(mut self, config: DecomposerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a search timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.config.timeout = Some(timeout);
        self
    }

    /// Runs the search and returns the best legal decomposition plus
    /// statistics.
    pub fn run(&self) -> DecompositionOutcome {
        let start = Instant::now();
        let telemetry = noc_telemetry::active();
        // An active trace forces phase timing on internally (it only adds
        // clock reads — results stay bit-identical); `stats.phases` is
        // still gated on the config so callers see what they asked for.
        let profile = self.config.profile_phases || telemetry.is_some();
        let deadline = self.config.timeout.map(|t| start + t);
        // Best link-compression ratio in the library, for the Links bound.
        let best_ratio = self
            .library
            .iter()
            .map(|(_, p)| {
                let links: std::collections::BTreeSet<(usize, usize)> = p
                    .implementation()
                    .edges()
                    .map(|e| {
                        let (a, b) = (e.src.index(), e.dst.index());
                        (a.min(b), a.max(b))
                    })
                    .collect();
                p.representation().edge_count() as f64 / links.len().max(1) as f64
            })
            .fold(1.0_f64, f64::max);

        let cache = self.config.use_match_cache.then(|| {
            // Size-tagged keys make a shared cache sound for any graph
            // size; without one the run gets a private per-run cache.
            match &self.config.shared_cache {
                Some(shared) => shared.inner(),
                None => Arc::new(MatchCache::new(self.config.match_cache_capacity)),
            }
        });
        let vertex_count = self.acg.graph().node_count();
        let stride = (vertex_count * vertex_count).div_ceil(64);
        let needs_bound =
            self.config.use_lower_bound || self.config.order == SearchOrder::BestFirst;
        // The Links bound needs only the popcount; the energy term is
        // rescanned per child from this table.
        let bound_table = if needs_bound && !matches!(self.cost_model.objective(), Objective::Links)
        {
            self.cost_model.edge_bound_table(self.acg)
        } else {
            Vec::new()
        };
        let mut ctx = EngineCtx {
            acg: self.acg,
            library: self.library,
            cost_model: &self.cost_model,
            config: &self.config,
            deadline,
            best_ratio,
            vertex_count,
            stride,
            bound_table,
            cache,
            root_images: Vec::new(),
            // Counted here, not derived from the cache's cumulative
            // counters: a shared cache may serve other concurrently
            // running decomposers, whose traffic must not leak into this
            // run's stats.
            run_cache_hits: AtomicU64::new(0),
            run_cache_misses: AtomicU64::new(0),
            profile,
        };
        let shared = SharedSearch::new();
        let root_mask = {
            let mut words = self.acg.graph().edge_bitset().words().to_vec();
            words.resize(stride, 0);
            words
        };
        // Enumerate every primitive once on the root graph; complete lists
        // power the subset filter (see [`RootImages`]), truncated ones fall
        // back to per-node enumeration. Root enumerations go through the
        // cache like any other, so warm shared-cache runs still hit.
        ctx.root_images = {
            let root_graph = self.acg.graph();
            let root_key = ctx
                .cache
                .as_ref()
                .map(|_| BitSetKey::from_words(root_mask.clone()));
            let mut phases = PhaseAcc::new(ctx.profile);
            let mut table = Vec::new();
            for (id, primitive) in self.library.iter() {
                let pattern = primitive.representation();
                if pattern.edge_count() > root_graph.edge_count()
                    || pattern.node_count() > vertex_count
                {
                    table.push(None);
                    continue;
                }
                let t = phases.start();
                let (images, complete) =
                    ctx.enumerate(root_graph, root_key.as_ref(), id, primitive);
                phases.match_enum(t);
                if !complete {
                    table.push(None);
                    continue;
                }
                let mut masks = vec![0u64; images.len() * stride];
                for (i, (_, covered)) in images.iter().enumerate() {
                    let row = &mut masks[i * stride..(i + 1) * stride];
                    for e in covered {
                        let bit = e.src.index() * vertex_count + e.dst.index();
                        row[bit / 64] |= 1 << (bit % 64);
                    }
                }
                table.push(Some(RootImages { images, masks }));
            }
            phases.flush(&shared);
            table
        };
        let ctx = ctx;
        let root = PoppedNode::root(root_mask, self.acg.graph().edge_count() as u32);
        let threads = match self.config.threads {
            0 => rayon::current_num_threads(),
            t => t,
        };
        if threads > 1 {
            parallel::run(&ctx, &shared, root, threads);
        } else {
            let mut open = Frontier::new(self.config.order, stride);
            open.push_node(root);
            run_frontier(&ctx, &shared, &mut open);
        }

        let mut stats = shared.snapshot();
        stats.cache_hits = ctx.run_cache_hits.load(Ordering::Relaxed);
        stats.cache_misses = ctx.run_cache_misses.load(Ordering::Relaxed);
        stats.elapsed = start.elapsed();
        if self.config.profile_phases {
            stats.phases = Some(shared.phase_breakdown());
        }
        if let Some(tel) = telemetry {
            tel.add("decompose.runs", 1);
            tel.add("decompose.nodes_visited", stats.nodes_visited);
            tel.add("decompose.leaves_evaluated", stats.leaves_evaluated);
            tel.add("decompose.branches_pruned", stats.branches_pruned);
            tel.add(
                "decompose.constraint_rejections",
                stats.constraint_rejections,
            );
            tel.add("decompose.cache_hits", stats.cache_hits);
            tel.add("decompose.cache_misses", stats.cache_misses);
            if stats.timed_out {
                tel.add("decompose.timeouts", 1);
            }
            tel.record("decompose.run_us", stats.elapsed.as_micros() as u64);
            let phases = shared.phase_breakdown();
            tel.span_event("decompose.phase.match_enum", phases.match_enum, &[]);
            tel.span_event("decompose.phase.bound", phases.bound, &[]);
            tel.span_event("decompose.phase.frontier", phases.frontier, &[]);
            tel.span_event("decompose.phase.leaf", phases.leaf, &[]);
            tel.span_event(
                "decompose.run",
                stats.elapsed,
                &[
                    ("vertices", vertex_count.into()),
                    ("threads", (threads as u64).into()),
                    ("timed_out", stats.timed_out.into()),
                ],
            );
        }
        DecompositionOutcome {
            best: shared.take_best(),
            stats,
        }
    }
}

/// Immutable per-run context shared by every worker.
pub(crate) struct EngineCtx<'a> {
    pub(crate) acg: &'a Acg,
    pub(crate) library: &'a CommLibrary,
    pub(crate) cost_model: &'a CostModel,
    pub(crate) config: &'a DecomposerConfig,
    pub(crate) deadline: Option<Instant>,
    pub(crate) best_ratio: f64,
    /// Vertex count of this search's graph — the size tag on every cache
    /// key (the remaining graph's vertex *set* is constant within a run).
    pub(crate) vertex_count: usize,
    /// Words per edge mask: `(vertex_count²).div_ceil(64)`.
    pub(crate) stride: usize,
    /// Per-edge energy lower-bound terms indexed by edge bit (empty when
    /// the objective needs none — see [`CostModel::lower_bound_masked`]).
    bound_table: Vec<Energy>,
    pub(crate) cache: Option<Arc<MatchCache>>,
    /// Per-primitive root enumerations for the subset filter (indexed by
    /// [`PrimitiveId::index`]; `None` = fall back to per-node VF2).
    root_images: Vec<Option<RootImages>>,
    /// This run's cache traffic (the cache's own counters are cumulative
    /// across every run sharing it).
    run_cache_hits: AtomicU64,
    run_cache_misses: AtomicU64,
    /// Phase timing on? `config.profile_phases`, or forced by an active
    /// telemetry trace (see [`Decomposer::run`]).
    pub(crate) profile: bool,
}

/// A primitive's complete image list on the *root* graph, with each
/// image's covered-edge bitmask precomputed.
///
/// Matching is monomorphic and the vertex set never changes, so the images
/// of a primitive in any remaining graph are exactly the root images whose
/// covered edges all survive — an enumeration anywhere in the tree is a
/// subset *filter* of this list, not a fresh VF2 run. Filtering preserves
/// the enumeration order (VF2 visits mappings in a fixed lexicographic
/// order and deduplication keeps first occurrences, so a subset keeps its
/// relative order), which keeps capped searches bit-identical to per-node
/// enumeration. Only complete root enumerations are stored: a cap- or
/// deadline-truncated list could hide images a deeper node still has.
struct RootImages {
    images: ImageList,
    /// Flat covered-edge masks, `stride` words per image, parallel to
    /// `images`.
    masks: Vec<u64>,
}

impl EngineCtx<'_> {
    /// Builds the remaining graph a node's edge mask describes (bit
    /// `src * n + dst`, matching [`DiGraph::edge_bitset`]).
    pub(crate) fn materialize(&self, mask: &[u64]) -> DiGraph {
        let n = self.vertex_count;
        let mut g = DiGraph::new(n);
        for (w, &word) in mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let idx = w * 64 + b;
                g.add_edge(NodeId(idx / n), NodeId(idx % n));
                bits &= bits - 1;
            }
        }
        g
    }

    /// The admissible completion bound of a child's edge mask.
    fn masked_bound(&self, mask: &[u64], edges: u32) -> Cost {
        self.cost_model
            .lower_bound_masked(mask, edges as usize, &self.bound_table, self.best_ratio)
    }

    /// Distinct images of `primitive`'s representation in `remaining`,
    /// served from the match cache when possible. The flag reports whether
    /// the enumeration is complete (cache entries always are; a fresh run
    /// may be truncated by the raw-match cap or the deadline).
    fn enumerate(
        &self,
        remaining: &DiGraph,
        key: Option<&BitSetKey>,
        id: PrimitiveId,
        primitive: &Primitive,
    ) -> (ImageList, bool) {
        let pattern = primitive.representation();
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), key) {
            // The arity argument guards against an in-process cache
            // shared across different libraries binding this id to
            // another pattern — a mismatched entry is rejected inside
            // the cache and counted as a miss, never consumed.
            if let Some(hit) = cache.get(self.vertex_count, key, id, pattern.node_count()) {
                self.run_cache_hits.fetch_add(1, Ordering::Relaxed);
                return (hit, true);
            }
            self.run_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut matcher = Vf2::new(pattern, remaining).max_matches(self.config.max_raw_matches);
        if let Some(d) = self.deadline {
            matcher = matcher.deadline(d);
        }
        let outcome = matcher.distinct_images();
        let complete = outcome.complete;
        let images: ImageList = Arc::new(
            outcome
                .matches
                .into_iter()
                .map(|m| {
                    let covered = m.image_edges(pattern);
                    (m, covered)
                })
                .collect(),
        );
        // Only complete enumerations are safe to reuse: a deadline- or
        // cap-truncated list could hide matchings from a later reach of
        // the same graph.
        if complete {
            if let (Some(cache), Some(key)) = (self.cache.as_ref(), key) {
                cache.insert(
                    self.vertex_count,
                    key.clone(),
                    id,
                    pattern.node_count(),
                    images.clone(),
                );
            }
        }
        (images, complete)
    }
}

/// Mutable cross-thread search state: the incumbent best and the counters.
pub(crate) struct SharedSearch {
    /// Bit pattern of the incumbent's total cost (non-negative floats
    /// order identically to their bits), readable without the lock so
    /// pruning never blocks on an in-flight install.
    best_bits: AtomicU64,
    best: Mutex<Option<Decomposition>>,
    nodes_visited: AtomicU64,
    leaves_evaluated: AtomicU64,
    branches_pruned: AtomicU64,
    constraint_rejections: AtomicU64,
    timed_out: AtomicBool,
    /// Phase nanoseconds, summed across workers at flush time (zero unless
    /// profiling is on).
    phase_ns: [AtomicU64; 4],
}

impl SharedSearch {
    pub(crate) fn new() -> Self {
        SharedSearch {
            best_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            best: Mutex::new(None),
            nodes_visited: AtomicU64::new(0),
            leaves_evaluated: AtomicU64::new(0),
            branches_pruned: AtomicU64::new(0),
            constraint_rejections: AtomicU64::new(0),
            timed_out: AtomicBool::new(false),
            phase_ns: [const { AtomicU64::new(0) }; 4],
        }
    }

    /// The aggregated phase breakdown (meaningful only when profiling ran).
    fn phase_breakdown(&self) -> PhaseBreakdown {
        let ns = |i: usize| Duration::from_nanos(self.phase_ns[i].load(Ordering::Relaxed));
        PhaseBreakdown {
            match_enum: ns(0),
            bound: ns(1),
            frontier: ns(2),
            leaf: ns(3),
        }
    }

    /// The incumbent's total cost (∞ before the first leaf lands).
    pub(crate) fn best_cost(&self) -> f64 {
        f64::from_bits(self.best_bits.load(Ordering::Relaxed))
    }

    /// Installs `candidate` if it beats the incumbent (checked again under
    /// the lock, so racing winners cannot regress the best).
    fn try_install(&self, candidate: Decomposition) {
        let mut best = self.best.lock().expect("incumbent lock");
        let current = best
            .as_ref()
            .map_or(f64::INFINITY, |d| d.total_cost.value());
        if candidate.total_cost.value() < current {
            self.best_bits
                .store(candidate.total_cost.value().to_bits(), Ordering::Relaxed);
            *best = Some(candidate);
        }
    }

    /// Returns `true` once the deadline has passed (sticky across
    /// workers: the first observer stops everyone).
    pub(crate) fn out_of_time(&self, deadline: Option<Instant>) -> bool {
        if self.timed_out.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                self.timed_out.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn snapshot(&self) -> SearchStats {
        SearchStats {
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            leaves_evaluated: self.leaves_evaluated.load(Ordering::Relaxed),
            branches_pruned: self.branches_pruned.load(Ordering::Relaxed),
            constraint_rejections: self.constraint_rejections.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            timed_out: self.timed_out.load(Ordering::Relaxed),
            elapsed: Duration::default(),
            phases: None,
        }
    }

    fn take_best(&self) -> Option<Decomposition> {
        self.best.lock().expect("incumbent lock").take()
    }
}

/// Per-worker phase timers: nanoseconds accumulate thread-locally and
/// flush to [`SharedSearch`] once at worker exit. When disabled, every
/// call is a no-op on a `None` (no clock reads).
pub(crate) struct PhaseAcc {
    enabled: bool,
    /// match_enum, bound, frontier, leaf — indexed like
    /// [`SharedSearch::phase_ns`].
    ns: [u64; 4],
}

impl PhaseAcc {
    pub(crate) fn new(enabled: bool) -> Self {
        PhaseAcc {
            enabled,
            ns: [0; 4],
        }
    }

    /// Starts a phase interval (reads the clock only when profiling).
    #[inline]
    pub(crate) fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    #[inline]
    fn add(&mut self, i: usize, t: Option<Instant>) {
        if let Some(t) = t {
            self.ns[i] += t.elapsed().as_nanos() as u64;
        }
    }

    #[inline]
    pub(crate) fn match_enum(&mut self, t: Option<Instant>) {
        self.add(0, t);
    }

    #[inline]
    pub(crate) fn bound(&mut self, t: Option<Instant>) {
        self.add(1, t);
    }

    #[inline]
    pub(crate) fn frontier(&mut self, t: Option<Instant>) {
        self.add(2, t);
    }

    #[inline]
    pub(crate) fn leaf(&mut self, t: Option<Instant>) {
        self.add(3, t);
    }

    /// Adds this worker's counters to the shared totals.
    pub(crate) fn flush(&self, shared: &SharedSearch) {
        if !self.enabled {
            return;
        }
        for (i, &ns) in self.ns.iter().enumerate() {
            shared.phase_ns[i].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Reusable per-worker mask buffers for [`expand`].
pub(crate) struct ExpandScratch {
    /// The candidate image's covered edges.
    covered: Vec<u64>,
    /// The child's remaining edges (`parent & !covered`).
    child: Vec<u64>,
}

impl ExpandScratch {
    pub(crate) fn new(stride: usize) -> Self {
        ExpandScratch {
            covered: vec![0; stride],
            child: vec![0; stride],
        }
    }
}

/// Runs the iterative engine until `open` drains (or the deadline fires,
/// salvaging the current path as a leaf). Used directly for sequential
/// runs; the parallel driver runs its own per-packet variant of this loop.
pub(crate) fn run_frontier(ctx: &EngineCtx<'_>, shared: &SharedSearch, open: &mut Frontier) {
    let mut phases = PhaseAcc::new(ctx.profile);
    let mut node = PoppedNode::empty(ctx.stride);
    let mut scratch = ExpandScratch::new(ctx.stride);
    loop {
        let t = phases.start();
        let popped = open.pop_into(&mut node);
        phases.frontier(t);
        if !popped {
            break;
        }
        // Re-test the bound at pop time: the incumbent may have improved
        // since this node was generated.
        if ctx.config.use_lower_bound && node.bound >= shared.best_cost() {
            shared.branches_pruned.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        shared.nodes_visited.fetch_add(1, Ordering::Relaxed);
        let t = phases.start();
        let remaining = ctx.materialize(&node.mask);
        phases.frontier(t);
        if shared.out_of_time(ctx.deadline) {
            // Salvage: evaluate the current path as if it were a leaf so a
            // timed-out search still returns something useful.
            let t = phases.start();
            consider_leaf(ctx, shared, &remaining, node.cost, &node.path);
            phases.leaf(t);
            break;
        }
        let found_match = expand(
            ctx,
            shared,
            &node,
            &remaining,
            open,
            &mut scratch,
            &mut phases,
        );
        if !found_match {
            let t = phases.start();
            consider_leaf(ctx, shared, &remaining, node.cost, &node.path);
            phases.leaf(t);
        }
    }
    phases.flush(shared);
}

/// Expands a node — staging its children onto `open` and committing them
/// as one batch — and returns whether *any* primitive matches the
/// remaining graph (Figure 3's leaf test — primitives below the canonical
/// ordering cut count toward leaf detection but produce no children).
/// `remaining` must be the graph `node.mask` describes.
pub(crate) fn expand(
    ctx: &EngineCtx<'_>,
    shared: &SharedSearch,
    node: &PoppedNode,
    remaining: &DiGraph,
    open: &mut Frontier,
    scratch: &mut ExpandScratch,
    phases: &mut PhaseAcc,
) -> bool {
    let n = ctx.vertex_count;
    let stride = ctx.stride;
    let ExpandScratch { covered, child } = scratch;
    // Only primitives without a complete root enumeration hit the cache,
    // so the per-node key is built lazily.
    let mut key: Option<BitSetKey> = None;
    let mut found_match = false;
    for (id, primitive) in ctx.library.iter() {
        let pattern = primitive.representation();
        if pattern.edge_count() > node.edges as usize || pattern.node_count() > n {
            continue;
        }
        let below_cut = node.min_prim.is_some_and(|min_id| id < min_id);
        let root_set = ctx.root_images[id.index()].as_ref();
        if below_cut {
            // Existence only: a root image surviving in `node.mask` (or,
            // on the fallback path, a cached enumeration or a first-match
            // probe — cheaper than enumerating, so it is not cached).
            if !found_match {
                let t = phases.start();
                found_match = match root_set {
                    Some(set) => set
                        .masks
                        .chunks_exact(stride)
                        .any(|m| mask_subset(m, &node.mask)),
                    None => {
                        if ctx.cache.is_some() && key.is_none() {
                            key = Some(BitSetKey::from_words(node.mask.clone()));
                        }
                        let cached =
                            ctx.cache
                                .as_ref()
                                .zip(key.as_ref())
                                .and_then(|(cache, key)| {
                                    cache.peek(ctx.vertex_count, key, id, pattern.node_count())
                                });
                        match cached {
                            Some(images) => !images.is_empty(),
                            None => {
                                let mut probe = Vf2::new(pattern, remaining);
                                if let Some(d) = ctx.deadline {
                                    probe = probe.deadline(d);
                                }
                                probe.exists()
                            }
                        }
                    }
                };
                phases.match_enum(t);
            }
            continue;
        }
        // Filter by the canonical key first, then apply the per-level
        // cap, so capped searches still advance past the parent's image.
        let mut considered = 0usize;
        if let Some(set) = root_set {
            // Fast path: the node's images are the root images whose
            // covered edges all survive, in root-enumeration order.
            let mut t = phases.start();
            for (i, (mapping, covered)) in set.images.iter().enumerate() {
                let covered_mask = &set.masks[i * stride..(i + 1) * stride];
                if !mask_subset(covered_mask, &node.mask) {
                    continue;
                }
                found_match = true;
                if node.min_prim == Some(id) && mask_le(covered_mask, &node.min_mask) {
                    continue;
                }
                if ctx
                    .config
                    .max_matches_per_level
                    .is_some_and(|cap| considered >= cap)
                {
                    break;
                }
                considered += 1;
                phases.match_enum(t);
                stage_image(
                    ctx,
                    shared,
                    node,
                    open,
                    phases,
                    id,
                    primitive,
                    mapping,
                    covered_mask,
                    covered.len() as u32,
                    child,
                );
                t = phases.start();
            }
            phases.match_enum(t);
            continue;
        }
        // Fallback: the root enumeration was truncated (raw-match cap or
        // deadline), so this primitive enumerates per node.
        if ctx.cache.is_some() && key.is_none() {
            key = Some(BitSetKey::from_words(node.mask.clone()));
        }
        let t = phases.start();
        let (images, _) = ctx.enumerate(remaining, key.as_ref(), id, primitive);
        phases.match_enum(t);
        if !images.is_empty() {
            found_match = true;
        }
        for (mapping, covered_edges) in images.iter() {
            covered.fill(0);
            for e in covered_edges {
                let bit = e.src.index() * n + e.dst.index();
                covered[bit / 64] |= 1u64 << (bit % 64);
            }
            if node.min_prim == Some(id) && mask_le(covered, &node.min_mask) {
                continue;
            }
            if ctx
                .config
                .max_matches_per_level
                .is_some_and(|cap| considered >= cap)
            {
                break;
            }
            considered += 1;
            stage_image(
                ctx,
                shared,
                node,
                open,
                phases,
                id,
                primitive,
                mapping,
                covered,
                covered_edges.len() as u32,
                child,
            );
        }
    }
    let t = phases.start();
    open.commit_staged();
    phases.frontier(t);
    found_match
}

/// Stages one matched image as a child of `node`: matching cost, child
/// mask, completion bound, prune against the incumbent, path link.
#[allow(clippy::too_many_arguments)]
fn stage_image(
    ctx: &EngineCtx<'_>,
    shared: &SharedSearch,
    node: &PoppedNode,
    open: &mut Frontier,
    phases: &mut PhaseAcc,
    id: PrimitiveId,
    primitive: &Primitive,
    mapping: &Mapping,
    covered_mask: &[u64],
    covered_count: u32,
    child: &mut [u64],
) {
    let t = phases.start();
    let m_cost = ctx.cost_model.matching_cost(primitive, mapping, ctx.acg);
    for (c, (&parent, &cov)) in child.iter_mut().zip(node.mask.iter().zip(covered_mask)) {
        *c = parent & !cov;
    }
    let child_edges = node.edges - covered_count;
    let new_cost = node.cost.saturating_add(m_cost);
    let bound = if ctx.config.use_lower_bound || ctx.config.order == SearchOrder::BestFirst {
        new_cost
            .saturating_add(ctx.masked_bound(child, child_edges))
            .value()
    } else {
        new_cost.value()
    };
    phases.bound(t);
    if ctx.config.use_lower_bound && bound >= shared.best_cost() {
        shared.branches_pruned.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let link = Arc::new(PathLink {
        matching: Matching {
            primitive: id,
            label: primitive.label().to_string(),
            mapping: mapping.clone(),
            cost: m_cost,
        },
        parent: node.path.clone(),
    });
    let min_key = ctx
        .config
        .use_canonical_ordering
        .then_some((id, covered_mask));
    let t = phases.start();
    open.stage(child, min_key, new_cost, bound, child_edges, Some(link));
    phases.frontier(t);
}

/// Evaluates a completed path (no primitive matches, or the deadline
/// salvage) against the incumbent.
pub(crate) fn consider_leaf(
    ctx: &EngineCtx<'_>,
    shared: &SharedSearch,
    remaining: &DiGraph,
    current: Cost,
    path: &Option<Arc<PathLink>>,
) {
    shared.leaves_evaluated.fetch_add(1, Ordering::Relaxed);
    let remainder_cost = ctx.cost_model.remainder_cost(remaining, ctx.acg);
    let total = current.saturating_add(remainder_cost);
    if total.value() >= shared.best_cost() {
        return;
    }
    let candidate = Decomposition {
        matchings: path_to_vec(path),
        remainder: remaining.clone(),
        remainder_cost,
        total_cost: total,
    };
    if ctx.config.check_constraints {
        let arch = Architecture::synthesize(
            ctx.acg,
            ctx.library,
            &candidate,
            ctx.cost_model.placement().clone(),
        );
        let report = constraints::check(&arch, ctx.acg, ctx.cost_model.energy_model().profile());
        if !report.is_satisfied() {
            shared.constraint_rejections.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    shared.try_install(candidate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use noc_energy::{EnergyModel, TechnologyProfile};
    use noc_floorplan::Placement;
    use noc_graph::{EdgeDemand, NodeId};
    use noc_workloads::pajek;

    fn cost_model(objective: Objective, n: usize) -> CostModel {
        let side = (n as f64).sqrt().ceil() as usize;
        CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            Placement::grid(side, side.max(1), 2.0, 2.0),
            objective,
        )
    }

    fn decompose(acg: &Acg, lib: &CommLibrary, objective: Objective) -> DecompositionOutcome {
        let cm = cost_model(objective, acg.core_count());
        Decomposer::new(acg, lib, cm).run()
    }

    #[test]
    fn pure_gossip_acg_is_one_mgg4() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "MGG4");
        assert!(best.remainder.is_edgeless());
        assert_eq!(best.total_cost.value(), 4.0); // 4 physical links
        assert!(!out.stats.timed_out);
    }

    #[test]
    fn loop_acg_decomposes_to_l4() {
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "L4");
        assert!(best.remainder.is_edgeless());
    }

    #[test]
    fn broadcast_acg_decomposes_to_g123() {
        let acg = Acg::from_graph_uniform(DiGraph::out_star(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "G123");
    }

    #[test]
    fn unmatched_graph_is_all_remainder() {
        // Two antiparallel edges: no standard primitive matches.
        let acg = Acg::builder(4).volume(0, 1, 1.0).volume(1, 0, 1.0).build();
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert!(best.matchings.is_empty());
        assert_eq!(best.remainder.edge_count(), 2);
        assert_eq!(best.total_cost.value(), 2.0); // two dedicated directed links
    }

    #[test]
    fn edges_are_conserved() {
        // Gossip + a stray edge.
        let mut g = DiGraph::complete(4);
        let mut big = DiGraph::new(6);
        for e in g.edges() {
            big.add_edge(e.src, e.dst);
        }
        big.add_edge(NodeId(4), NodeId(5));
        g = big;
        let acg = Acg::from_graph_uniform(g.clone(), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.all_edges(&lib), g.edge_vec());
    }

    #[test]
    fn cost_totals_are_consistent() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        for objective in [Objective::Links, Objective::Energy] {
            let out = decompose(&acg, &lib, objective);
            let best = out.best.unwrap();
            let sum: f64 = best.matchings.iter().map(|m| m.cost.value()).sum::<f64>()
                + best.remainder_cost.value();
            assert!((best.total_cost.value() - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn bound_prunes_without_changing_result() {
        let mut g = DiGraph::complete(4);
        // Add a loop on the other 4 vertices.
        let mut big = DiGraph::new(8);
        for e in g.edges() {
            big.add_edge(e.src, e.dst);
        }
        for i in 4..8 {
            big.add_edge(NodeId(i), NodeId(4 + (i + 1) % 4));
        }
        g = big;
        let acg = Acg::from_graph_uniform(g, EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::standard();
        let cm = cost_model(Objective::Links, 8);

        let with = Decomposer::new(&acg, &lib, cm.clone()).run();
        let without = Decomposer::new(&acg, &lib, cm)
            .config(DecomposerConfig {
                use_lower_bound: false,
                ..DecomposerConfig::default()
            })
            .run();
        let (b1, b2) = (with.best.unwrap(), without.best.unwrap());
        assert_eq!(b1.total_cost.value(), b2.total_cost.value());
        assert!(with.stats.nodes_visited <= without.stats.nodes_visited);
        assert!(with.stats.branches_pruned > 0);
    }

    #[test]
    fn timeout_returns_partial_result() {
        // A dense graph with an immediate timeout still yields a (possibly
        // all-remainder) decomposition.
        let acg = Acg::from_graph_uniform(DiGraph::complete(8), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::extended();
        let cm = cost_model(Objective::Links, 8);
        let out = Decomposer::new(&acg, &lib, cm)
            .timeout(Duration::from_millis(0))
            .run();
        assert!(out.stats.timed_out);
        assert!(out.best.is_some());
    }

    #[test]
    fn match_cap_limits_branching() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(5), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::standard();
        let cm = cost_model(Objective::Links, 5);
        let capped = Decomposer::new(&acg, &lib, cm.clone()).run(); // default cap = 1
        let full = Decomposer::new(&acg, &lib, cm)
            .config(DecomposerConfig {
                max_matches_per_level: None,
                ..DecomposerConfig::default()
            })
            .run();
        assert!(capped.stats.nodes_visited <= full.stats.nodes_visited);
        assert!(capped.best.is_some());
    }

    #[test]
    fn paper_report_format() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let report = out.best.unwrap().paper_report();
        assert!(report.starts_with("COST: 4\n"));
        assert!(report.contains("1: MGG4,\tMapping: (1 1), (2 2), (3 3), (4 4)"));
        assert!(report.contains("0: Remaining Graph: (empty)"));
    }

    #[test]
    fn deterministic_across_runs() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let a = decompose(&acg, &lib, Objective::Links).best.unwrap();
        let b = decompose(&acg, &lib, Objective::Links).best.unwrap();
        assert_eq!(a.paper_report(), b.paper_report());
    }

    #[test]
    fn energy_objective_prefers_short_links() {
        // A 4-cycle placed on a line: the L4 loop must route the wrap-around
        // edge across the whole chip, while the remainder solution uses the
        // same direct links. Under Energy the costs tie, so the decomposition
        // with L4 still wins no extra cost... verify the search simply
        // completes and produces a finite cost.
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Energy);
        let best = out.best.unwrap();
        assert!(best.total_cost.value().is_finite());
        assert!(best.total_cost.value() > 0.0);
    }

    // ---- explicit-frontier engine features --------------------------------

    fn fig5() -> Acg {
        pajek::fig5_benchmark()
    }

    fn run_with(acg: &Acg, config: DecomposerConfig) -> DecompositionOutcome {
        let lib = CommLibrary::standard();
        let cm = cost_model(Objective::Links, acg.core_count());
        Decomposer::new(acg, &lib, cm).config(config).run()
    }

    #[test]
    fn best_first_matches_dfs_optimum() {
        let acg = fig5();
        let dfs = run_with(&acg, DecomposerConfig::default());
        let best_first = run_with(
            &acg,
            DecomposerConfig {
                order: SearchOrder::BestFirst,
                ..DecomposerConfig::default()
            },
        );
        assert_eq!(
            dfs.best.unwrap().total_cost.value(),
            best_first.best.unwrap().total_cost.value()
        );
    }

    #[test]
    fn parallel_matches_sequential_optimum() {
        let acg = fig5();
        let seq = run_with(&acg, DecomposerConfig::default());
        for threads in [2usize, 4, 0] {
            let par = run_with(
                &acg,
                DecomposerConfig {
                    threads,
                    ..DecomposerConfig::default()
                },
            );
            assert_eq!(
                seq.best.as_ref().unwrap().total_cost.value(),
                par.best.unwrap().total_cost.value(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn reconverging_paths_do_not_re_enumerate() {
        // With canonical sibling ordering off, permutations of the same
        // matching set reach identical remaining graphs along different
        // paths. The root-image subset filter absorbs the blowup: VF2
        // runs once per primitive on the root graph, so the permutation
        // explosion multiplies node visits but not enumerations.
        let acg = fig5();
        let canonical = run_with(&acg, DecomposerConfig::default());
        let out = run_with(
            &acg,
            DecomposerConfig {
                use_canonical_ordering: false,
                ..DecomposerConfig::default()
            },
        );
        assert!(out.best.is_some());
        assert!(
            out.stats.nodes_visited > canonical.stats.nodes_visited,
            "expected a permutation blowup: {:?} vs {:?}",
            out.stats,
            canonical.stats
        );
        assert_eq!(
            out.stats.cache_misses, canonical.stats.cache_misses,
            "enumeration count must not scale with the blowup"
        );
    }

    #[test]
    fn disabling_cache_changes_nothing_but_stats() {
        let acg = fig5();
        let cached = run_with(&acg, DecomposerConfig::default());
        let uncached = run_with(
            &acg,
            DecomposerConfig {
                use_match_cache: false,
                ..DecomposerConfig::default()
            },
        );
        assert_eq!(
            cached.best.unwrap().paper_report(),
            uncached.best.unwrap().paper_report()
        );
        assert_eq!(uncached.stats.cache_hits, 0);
        assert_eq!(uncached.stats.cache_misses, 0);
    }

    #[test]
    fn parallel_conserves_edges_and_cost_additivity() {
        let acg = fig5();
        let lib = CommLibrary::standard();
        let out = run_with(
            &acg,
            DecomposerConfig {
                threads: 4,
                ..DecomposerConfig::default()
            },
        );
        let best = out.best.unwrap();
        assert_eq!(best.all_edges(&lib), acg.graph().edge_vec());
        let sum: f64 = best.matchings.iter().map(|m| m.cost.value()).sum::<f64>()
            + best.remainder_cost.value();
        assert!((best.total_cost.value() - sum).abs() < 1e-12);
    }

    #[test]
    fn parallel_timeout_still_returns_result() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(8), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::extended();
        let cm = cost_model(Objective::Links, 8);
        let out = Decomposer::new(&acg, &lib, cm)
            .config(DecomposerConfig {
                threads: 4,
                ..DecomposerConfig::default()
            })
            .timeout(Duration::from_millis(0))
            .run();
        assert!(out.stats.timed_out);
        assert!(out.best.is_some());
    }

    #[test]
    fn shared_cache_carries_enumerations_across_runs() {
        let acg = pajek::fig5_benchmark();
        let lib = CommLibrary::standard();
        let shared = SharedMatchCache::new(1 << 12);
        let config = DecomposerConfig {
            shared_cache: Some(shared.clone()),
            ..DecomposerConfig::default()
        };
        let cold = Decomposer::new(&acg, &lib, cost_model(Objective::Links, acg.core_count()))
            .config(config.clone())
            .run();
        // Second run on the same workload under a different objective: the
        // enumerations are cost-independent, so the search starts warm.
        let warm = Decomposer::new(&acg, &lib, cost_model(Objective::Energy, acg.core_count()))
            .config(config)
            .run();
        assert_eq!(cold.stats.cache_hits, 0);
        assert!(
            warm.stats.cache_misses < cold.stats.cache_misses,
            "warm run should re-enumerate less: {:?} vs {:?}",
            warm.stats,
            cold.stats
        );
        assert!(warm.stats.cache_hits > 0);
        // Per-run stats are deltas, not the shared cumulative counters.
        assert_eq!(shared.hits(), cold.stats.cache_hits + warm.stats.cache_hits);
    }

    #[test]
    fn shared_cache_serves_multiple_vertex_counts() {
        let lib = CommLibrary::standard();
        let shared = SharedMatchCache::new(1 << 12);
        let config = DecomposerConfig {
            shared_cache: Some(shared.clone()),
            ..DecomposerConfig::default()
        };
        let small = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let big = Acg::from_graph_uniform(DiGraph::cycle(6), EdgeDemand::from_volume(8.0));
        for acg in [&small, &big] {
            // Two runs per size (different objectives): the second starts
            // warm from the size-tagged shared entries.
            let n = acg.core_count();
            let cold = Decomposer::new(acg, &lib, cost_model(Objective::Links, n))
                .config(config.clone())
                .run();
            let warm = Decomposer::new(acg, &lib, cost_model(Objective::Energy, n))
                .config(config.clone())
                .run();
            assert!(cold.best.is_some() && warm.best.is_some());
            assert!(warm.stats.cache_hits > 0, "size {n} never warmed up");
        }
        // One cache, two sizes, nonzero hits attributed to each.
        let stats = shared.size_stats();
        let sizes: Vec<usize> = stats.iter().map(|s| s.vertex_count).collect();
        assert_eq!(sizes, vec![4, 6]);
        assert!(stats.iter().all(|s| s.hits > 0 && s.graphs > 0));
        assert_eq!(shared.hits(), stats.iter().map(|s| s.hits).sum::<u64>());
    }

    #[test]
    fn persisted_cache_warms_a_fresh_process_first_decomposition() {
        // A cache saved by one "process" and loaded by another must serve
        // the very first decomposition of the restart — with the served
        // hits attributed to the warm start — and must not perturb the
        // search result.
        let acg = pajek::fig5_benchmark();
        let lib = CommLibrary::standard();
        let n = acg.core_count();
        let original = SharedMatchCache::new(1 << 12);
        let cold = Decomposer::new(&acg, &lib, cost_model(Objective::Links, n))
            .config(DecomposerConfig {
                shared_cache: Some(original.clone()),
                ..DecomposerConfig::default()
            })
            .run();
        let json = original.to_persist_json();

        // "Restart": a fresh cache built only from the persisted bytes.
        let restored = SharedMatchCache::from_persist_json(&json, 1 << 12).expect("load");
        assert_eq!(restored.graph_count(), original.graph_count());
        let warmed = Decomposer::new(&acg, &lib, cost_model(Objective::Links, n))
            .config(DecomposerConfig {
                shared_cache: Some(restored.clone()),
                ..DecomposerConfig::default()
            })
            .run();
        assert_eq!(
            warmed.best.as_ref().map(|d| d.total_cost.value()),
            cold.best.as_ref().map(|d| d.total_cost.value()),
            "a warmed cache perturbed the optimum"
        );
        assert!(
            warmed.stats.cache_hits > 0,
            "first decomposition after the restart never hit the loaded entries"
        );
        let stats = restored.size_stats();
        let row = stats.iter().find(|s| s.vertex_count == n).expect("row");
        assert!(
            row.warm_hits > 0,
            "hits were not attributed to the warm start: {row:?}"
        );
        assert!(row.warm_hits <= row.hits);

        // The cold original never reports warm hits.
        assert!(original.size_stats().iter().all(|s| s.warm_hits == 0));
    }

    #[test]
    fn identical_bitsets_at_different_sizes_do_not_collide() {
        // A 4-vertex complete graph and a 6-vertex graph can in principle
        // produce overlapping edge-bit indices; the size tag keeps their
        // searches correct *and* their entries separate. Equivalence with
        // a private-cache run is the correctness oracle.
        let lib = CommLibrary::standard();
        let shared = SharedMatchCache::new(1 << 12);
        let config = DecomposerConfig {
            shared_cache: Some(shared.clone()),
            ..DecomposerConfig::default()
        };
        for n in [4usize, 6] {
            let acg = Acg::from_graph_uniform(DiGraph::complete(n), EdgeDemand::from_volume(8.0));
            let with_shared = Decomposer::new(&acg, &lib, cost_model(Objective::Links, n))
                .config(config.clone())
                .run();
            let private = Decomposer::new(&acg, &lib, cost_model(Objective::Links, n)).run();
            assert_eq!(
                with_shared.best.map(|d| d.total_cost.value()),
                private.best.map(|d| d.total_cost.value()),
                "shared cache perturbed the {n}-vertex optimum"
            );
        }
    }
}
