//! Persistence for the VF2 match cache: a hand-rolled JSON format that
//! survives process restarts and machine hops.
//!
//! A [`SharedMatchCache`](super::SharedMatchCache) amortizes VF2
//! enumeration within one process; across processes (restarted campaigns,
//! sharded fleets) every worker used to rebuild it from cold. The cached
//! payload is pure data — per (vertex count, remaining-graph edge key,
//! primitive), the complete distinct-image list, each image a vertex
//! mapping plus its covered edge set — so it serializes losslessly.
//!
//! # Format
//!
//! One JSON document (`schema_version` 1), written with a stable key
//! order and canonical entry order (ascending vertex count, then edge-key
//! words, then primitive id), so `save → load → save` reproduces the file
//! byte for byte:
//!
//! ```json
//! {
//!   "cache": "noc_match_cache",
//!   "schema_version": 1,
//!   "library": "<fingerprint of this build's standard primitive library>",
//!   "sizes": [
//!     {"vertex_count": 8, "graphs": [
//!       {"key": ["1002"], "primitives": [
//!         {"id": 0, "arity": 3, "images": [[[0, 1, 4], [0, 1, 1, 4]]]}
//!       ]}
//!     ]}
//!   ]
//! }
//! ```
//!
//! * `key` — the remaining graph's edge-bitset words
//!   ([`BitSetKey::words`]), least-significant first, as **hex strings**:
//!   the words are full 64-bit patterns, and JSON numbers routed through
//!   `f64` (as the workspace's report readers do) lose bits above 2⁵³.
//! * each image is a two-element array `[mapping, edges]`: the mapping's
//!   image vertices in pattern order, then the covered edge list
//!   flattened as `src, dst` pairs.
//!
//! The reader is strict — structural *and* semantic validation (vertex
//! ids in range, injective mappings matching the entry's declared
//! `arity`, covered edges present in the keyed graph), because entries
//! feed the decomposition search unchecked. Two layers cover the
//! primitive-binding hazard (entries are keyed by [`PrimitiveId`], which
//! is only meaningful relative to a library): the file's `library`
//! fingerprint pins the **standard** library across builds, and every
//! lookup passes the consumer pattern's arity, which is compared against
//! the entry's recorded arity — so even an empty "no matches" entry
//! recorded under one binding is a miss under another.
//! Callers who want a bad file to degrade to a cold start use
//! [`SharedMatchCache::warm_start`](super::SharedMatchCache::warm_start),
//! which wraps the strict reader. Loaded entries are marked **warm** so
//! campaign reports can attribute hits to the persisted file (see
//! [`SizeCacheStats::warm_hits`](super::SizeCacheStats::warm_hits)).

use std::sync::Arc;

use noc_graph::{iso::Mapping, BitSetKey, Edge, NodeId};
use noc_primitives::{CommLibrary, PrimitiveId};

use super::cache::MatchCache;

/// Format version written by [`write`]; newer files are rejected.
pub(crate) const CACHE_SCHEMA_VERSION: u64 = 1;

/// FNV-1a fingerprint of a primitive library: per primitive, its id,
/// label and representation graph (vertex count + edge list). Cache
/// entries are keyed by [`PrimitiveId`], so a file written under one
/// library must never be consumed under another that binds those ids to
/// different patterns. The writer always stamps the [standard
/// library](CommLibrary::standard)'s fingerprint — the library every
/// campaign path uses — and the reader rejects a mismatch, degrading
/// warm starts to cold across library-changing upgrades. Persisting a
/// cache populated under a *custom* library is unsupported (the stamp
/// would not describe it); the per-entry recorded arity still rejects
/// mismatched entries at lookup, but same-arity pattern collisions
/// cannot be detected, so keep custom-library caches in-process.
pub(crate) fn library_fingerprint(library: &CommLibrary) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for (id, primitive) in library.iter() {
        eat(&(id.index() as u64).to_le_bytes());
        eat(primitive.label().as_bytes());
        let representation = primitive.representation();
        eat(&(representation.node_count() as u64).to_le_bytes());
        for e in representation.edges() {
            eat(&(e.src.index() as u64).to_le_bytes());
            eat(&(e.dst.index() as u64).to_le_bytes());
        }
    }
    format!("{hash:016x}")
}

/// Serializes every entry of `cache` in canonical order.
pub(crate) fn write(cache: &MatchCache) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"cache\": \"noc_match_cache\",\n");
    out.push_str(&format!(
        "  \"schema_version\": {CACHE_SCHEMA_VERSION},\n  \"library\": \"{}\",\n  \"sizes\": [",
        library_fingerprint(&CommLibrary::standard()),
    ));
    let entries = cache.snapshot();
    let mut first_size = true;
    let mut at = 0;
    while at < entries.len() {
        let n = entries[at].0;
        let size_end = entries[at..].partition_point(|e| e.0 == n) + at;
        if !first_size {
            out.push(',');
        }
        first_size = false;
        out.push_str(&format!("\n    {{\"vertex_count\": {n}, \"graphs\": ["));
        let mut first_graph = true;
        while at < size_end {
            let key = &entries[at].1;
            let graph_end = entries[at..size_end].partition_point(|e| &e.1 == key) + at;
            let words: Vec<String> = key.words().iter().map(|w| format!("\"{w:x}\"")).collect();
            if !first_graph {
                out.push(',');
            }
            first_graph = false;
            out.push_str(&format!(
                "\n      {{\"key\": [{}], \"primitives\": [",
                words.join(", ")
            ));
            let mut first_primitive = true;
            for (_, _, primitive, entry) in &entries[at..graph_end] {
                let images: Vec<String> = entry
                    .images
                    .iter()
                    .map(|(mapping, edges)| {
                        let map: Vec<String> = mapping
                            .images()
                            .iter()
                            .map(|v| v.index().to_string())
                            .collect();
                        let flat: Vec<String> = edges
                            .iter()
                            .flat_map(|e| [e.src.index().to_string(), e.dst.index().to_string()])
                            .collect();
                        format!("[[{}], [{}]]", map.join(", "), flat.join(", "))
                    })
                    .collect();
                if !first_primitive {
                    out.push(',');
                }
                first_primitive = false;
                out.push_str(&format!(
                    "\n        {{\"id\": {}, \"arity\": {}, \"images\": [{}]}}",
                    primitive.index(),
                    entry.arity,
                    images.join(", ")
                ));
            }
            out.push_str("\n      ]}");
            at = graph_end;
        }
        out.push_str("\n    ]}");
    }
    out.push_str(if entries.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

/// Parses a document written by [`write`] and inserts every entry into
/// `cache` as a **warm** (loaded) entry. Strict: structural errors,
/// unknown markers, newer schema versions and semantically invalid
/// entries (out-of-range vertices, non-injective mappings) all fail.
pub(crate) fn read(text: &str, cache: &MatchCache) -> Result<(), String> {
    let mut p = Reader {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.ws();
    p.expect(b'{')?;
    p.key("cache")?;
    let marker = p.string()?;
    if marker != "noc_match_cache" {
        return Err(format!("not a match-cache file (marker '{marker}')"));
    }
    p.comma()?;
    p.key("schema_version")?;
    let version = p.integer()?;
    if version > CACHE_SCHEMA_VERSION {
        return Err(format!(
            "cache schema v{version} is newer than this reader understands (v{CACHE_SCHEMA_VERSION})"
        ));
    }
    p.comma()?;
    p.key("library")?;
    let fingerprint = p.string()?;
    let expected = library_fingerprint(&CommLibrary::standard());
    if fingerprint != expected {
        return Err(format!(
            "cache was written under a different primitive library \
             (fingerprint {fingerprint}, this build has {expected}) — \
             its PrimitiveId-keyed entries would bind to the wrong patterns"
        ));
    }
    p.comma()?;
    p.key("sizes")?;
    p.array(|p| {
        p.expect(b'{')?;
        p.key("vertex_count")?;
        let n = p.integer()? as usize;
        if n == 0 {
            return Err("vertex_count must be positive".to_string());
        }
        p.comma()?;
        p.key("graphs")?;
        p.array(|p| {
            p.expect(b'{')?;
            p.key("key")?;
            let mut words = Vec::new();
            p.array(|p| {
                let hex = p.string()?;
                words.push(
                    u64::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad edge-key word '{hex}'"))?,
                );
                Ok(())
            })?;
            let key = BitSetKey::from_words(words);
            p.comma()?;
            p.key("primitives")?;
            p.array(|p| {
                p.expect(b'{')?;
                p.key("id")?;
                let primitive = PrimitiveId(p.integer()? as usize);
                p.comma()?;
                p.key("arity")?;
                let arity = p.integer()? as usize;
                if arity == 0 || arity > n {
                    return Err(format!(
                        "arity {arity} out of range for an {n}-vertex graph"
                    ));
                }
                p.comma()?;
                p.key("images")?;
                let mut images: Vec<(Mapping, Vec<Edge>)> = Vec::new();
                p.array(|p| {
                    p.expect(b'[')?;
                    p.ws();
                    let map = p.vertex_list(n)?;
                    if !injective(&map) {
                        return Err("mapping repeats a target vertex".to_string());
                    }
                    // One enumeration = one pattern: every mapping must
                    // have the entry's declared arity.
                    if map.len() != arity {
                        return Err(format!(
                            "mapping arity {} does not match the entry's declared arity {arity}",
                            map.len()
                        ));
                    }
                    p.comma()?;
                    let flat = p.vertex_list(n)?;
                    if flat.len() % 2 != 0 {
                        return Err("edge list must hold src,dst pairs".to_string());
                    }
                    let edges: Vec<Edge> = flat.chunks(2).map(|p| Edge::new(p[0], p[1])).collect();
                    // A covered edge must exist in the remaining graph the
                    // key denotes (edge bit = src*n + dst) — the search
                    // subtracts these edges unchecked and would panic on a
                    // fabricated one.
                    for e in &edges {
                        let bit = e.src.index() * n + e.dst.index();
                        let present = key
                            .words()
                            .get(bit / 64)
                            .is_some_and(|w| w & (1 << (bit % 64)) != 0);
                        if !present {
                            return Err(format!(
                                "covered edge ({}, {}) is not an edge of the keyed graph",
                                e.src.index(),
                                e.dst.index()
                            ));
                        }
                    }
                    images.push((Mapping::new(map), edges));
                    p.ws();
                    p.expect(b']')?;
                    Ok(())
                })?;
                cache.insert_loaded(n, key.clone(), primitive, arity, Arc::new(images));
                p.ws();
                p.expect(b'}')?;
                Ok(())
            })?;
            p.ws();
            p.expect(b'}')?;
            Ok(())
        })?;
        p.ws();
        p.expect(b'}')?;
        Ok(())
    })?;
    p.ws();
    p.expect(b'}')?;
    p.ws();
    if p.at != p.bytes.len() {
        return Err(p.fail("trailing characters after cache document"));
    }
    Ok(())
}

fn injective(images: &[NodeId]) -> bool {
    let mut sorted: Vec<usize> = images.iter().map(|v| v.index()).collect();
    sorted.sort_unstable();
    sorted.windows(2).all(|w| w[0] != w[1])
}

/// A tiny strict reader for exactly the grammar [`write`] emits: objects
/// with known keys, arrays, unescaped strings and unsigned integers. Not
/// a general JSON parser — the report-side reader in `noc-explore` parses
/// numbers through `f64`, which cannot carry 64-bit edge-key words.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn fail(&self, message: &str) -> String {
        format!("{message} at byte {}", self.at)
    }

    fn ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.ws();
        if self.bytes.get(self.at) == Some(&byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", byte as char)))
        }
    }

    fn comma(&mut self) -> Result<(), String> {
        self.expect(b',')
    }

    /// Consumes `"name":` (the writer never emits unknown or reordered
    /// keys, so a fixed expectation is both simpler and stricter).
    fn key(&mut self, name: &str) -> Result<(), String> {
        let found = self.string()?;
        if found != name {
            return Err(self.fail(&format!("expected key '{name}', found '{found}'")));
        }
        self.expect(b':')
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.at;
        loop {
            match self.bytes.get(self.at) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => return Err(self.fail("escapes are not used in cache files")),
                Some(_) => self.at += 1,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.fail("invalid UTF-8 in string"))?
            .to_string();
        self.at += 1;
        Ok(s)
    }

    fn integer(&mut self) -> Result<u64, String> {
        self.ws();
        let start = self.at;
        while matches!(self.bytes.get(self.at), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if start == self.at {
            return Err(self.fail("expected an unsigned integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .expect("ASCII digits")
            .parse::<u64>()
            .map_err(|_| self.fail("integer out of range"))
    }

    /// `[v, v, ...]` with every vertex id checked against `n`.
    fn vertex_list(&mut self, n: usize) -> Result<Vec<NodeId>, String> {
        let mut out = Vec::new();
        self.array(|p| {
            let v = p.integer()? as usize;
            if v >= n {
                return Err(format!("vertex {v} out of range for {n}-vertex graph"));
            }
            out.push(NodeId(v));
            Ok(())
        })?;
        Ok(out)
    }

    /// `[` item `,` item ... `]` with `item` consuming one element.
    fn array(
        &mut self,
        mut item: impl FnMut(&mut Reader<'a>) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            item(self)?;
            self.ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::SharedMatchCache;
    use super::*;

    fn populated() -> SharedMatchCache {
        let cache = SharedMatchCache::new(64);
        let images: super::super::cache::ImageList = Arc::new(vec![
            (
                Mapping::new(vec![NodeId(0), NodeId(1), NodeId(4)]),
                vec![
                    Edge::new(NodeId(0), NodeId(1)),
                    Edge::new(NodeId(1), NodeId(4)),
                ],
            ),
            (
                Mapping::new(vec![NodeId(2), NodeId(3), NodeId(5)]),
                vec![Edge::new(NodeId(2), NodeId(3))],
            ),
        ]);
        // Keys must contain every covered edge's bit (src*n + dst): at
        // n=8 the edges above are bits 1, 12 and 19; at n=10 they are
        // bits 1, 14 and 23, plus an unrelated bit-65 edge so the n=10
        // key exercises the multi-word path.
        let key8 = BitSetKey::from_words(vec![(1 << 1) | (1 << 12) | (1 << 19)]);
        let key10 = BitSetKey::from_words(vec![(1 << 1) | (1 << 14) | (1 << 23), 0x2]);
        cache
            .inner()
            .insert(8, key8.clone(), PrimitiveId(0), 3, images.clone());
        cache
            .inner()
            .insert(8, key8, PrimitiveId(2), 4, Arc::new(Vec::new()));
        cache.inner().insert(10, key10, PrimitiveId(1), 3, images);
        cache
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let original = populated();
        let json = original.to_persist_json();
        let loaded = SharedMatchCache::from_persist_json(&json, 64).expect("parse own output");
        assert_eq!(loaded.to_persist_json(), json);
        assert_eq!(loaded.graph_count(), original.graph_count());
    }

    #[test]
    fn loaded_entries_answer_and_count_warm_hits() {
        let json = populated().to_persist_json();
        let warmed = SharedMatchCache::from_persist_json(&json, 64).unwrap();
        let key = BitSetKey::from_words(vec![(1 << 1) | (1 << 12) | (1 << 19)]);
        let images = warmed
            .inner()
            .get(8, &key, PrimitiveId(0), 3)
            .expect("warm entry");
        assert_eq!(images.len(), 2);
        assert_eq!(images[0].0.images(), &[NodeId(0), NodeId(1), NodeId(4)]);
        let stats = warmed.size_stats();
        assert_eq!(stats[0].vertex_count, 8);
        assert_eq!((stats[0].hits, stats[0].warm_hits), (1, 1));

        // A cold cache never reports warm hits.
        let cold = populated();
        cold.inner().get(8, &key, PrimitiveId(0), 3);
        assert_eq!(cold.size_stats()[0].warm_hits, 0);
    }

    #[test]
    fn empty_cache_round_trips() {
        let empty = SharedMatchCache::new(4);
        let json = empty.to_persist_json();
        assert!(json.contains("\"sizes\": []"), "{json}");
        let loaded = SharedMatchCache::from_persist_json(&json, 4).unwrap();
        assert_eq!(loaded.graph_count(), 0);
        assert_eq!(loaded.to_persist_json(), json);
    }

    #[test]
    fn reader_rejects_corruption() {
        let json = populated().to_persist_json();
        // Truncation anywhere is an error (the strict path).
        for cut in [10, json.len() / 2, json.len() - 3] {
            assert!(
                SharedMatchCache::from_persist_json(&json[..cut], 64).is_err(),
                "accepted truncation at {cut}"
            );
        }
        // Foreign marker, future version, out-of-range vertex, broken map.
        let foreign = json.replace("noc_match_cache", "something_else");
        assert!(SharedMatchCache::from_persist_json(&foreign, 64).is_err());
        let future = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = SharedMatchCache::from_persist_json(&future, 64).unwrap_err();
        assert!(err.contains("v99"), "{err}");
        let out_of_range = json.replace("[[0, 1, 4]", "[[0, 1, 9]");
        assert!(SharedMatchCache::from_persist_json(&out_of_range, 64).is_err());
        let repeated = json.replace("[[0, 1, 4]", "[[0, 1, 1]");
        let err = SharedMatchCache::from_persist_json(&repeated, 64).unwrap_err();
        assert!(err.contains("repeats"), "{err}");
        // Covered edges must be edges of the keyed graph: (3, 4) is bit
        // 28 at n=8 / bit 34 at n=10, set in neither key — the search
        // would panic subtracting it.
        let fabricated = json.replace("[0, 1, 1, 4]", "[0, 1, 3, 4]");
        let err = SharedMatchCache::from_persist_json(&fabricated, 64).unwrap_err();
        assert!(err.contains("not an edge"), "{err}");
        // Every image of one enumeration maps the entry's declared
        // pattern arity; a shortened mapping is a corruption.
        let mixed = json.replace("[[2, 3, 5], [2, 3]]", "[[2, 3], [2, 3]]");
        let err = SharedMatchCache::from_persist_json(&mixed, 64).unwrap_err();
        assert!(err.contains("declared arity"), "{err}");
        // A cache from a build with a different primitive library must be
        // refused: its PrimitiveId-keyed entries bind to other patterns.
        let fp = library_fingerprint(&CommLibrary::standard());
        let foreign_lib = json.replace(&fp, "0123456789abcdef");
        let err = SharedMatchCache::from_persist_json(&foreign_lib, 64).unwrap_err();
        assert!(err.contains("different primitive library"), "{err}");
        assert!(SharedMatchCache::from_persist_json(&format!("{json} x"), 64).is_err());
    }

    #[test]
    fn warm_start_degrades_to_cold_on_bad_files() {
        let dir = std::env::temp_dir().join("noc_persist_test_warm_start");
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file: plain cold start, not degraded.
        let missing = SharedMatchCache::warm_start(dir.join("absent.json"), 16);
        assert_eq!(missing.loaded_graphs, 0);
        assert!(missing.degraded.is_none());

        // Corrupt file: cold start with the reason captured.
        let bad = dir.join("corrupt.json");
        std::fs::write(&bad, &populated().to_persist_json()[..40]).unwrap();
        let degraded = SharedMatchCache::warm_start(&bad, 16);
        assert_eq!(degraded.loaded_graphs, 0);
        assert_eq!(degraded.cache.graph_count(), 0);
        assert!(degraded.degraded.is_some());

        // Good file: warm, with the graph count reported.
        let good = dir.join("good.json");
        populated().save_to(&good).unwrap();
        let warm = SharedMatchCache::warm_start(&good, 16);
        assert_eq!(warm.loaded_graphs, 2);
        assert!(warm.degraded.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absorb_unions_entries_without_clobbering() {
        let a = SharedMatchCache::new(16);
        let b = populated();
        a.absorb(&b);
        assert_eq!(a.graph_count(), b.graph_count());
        assert_eq!(a.to_persist_json(), b.to_persist_json());
        // Absorbing again changes nothing.
        a.absorb(&b);
        assert_eq!(a.graph_count(), 2);

        // Existing entries win over absorbed ones.
        let key = BitSetKey::from_words(vec![(1 << 1) | (1 << 12) | (1 << 19)]);
        let c = SharedMatchCache::new(16);
        c.inner()
            .insert(8, key.clone(), PrimitiveId(0), 3, Arc::new(Vec::new()));
        c.absorb(&b);
        assert_eq!(
            c.inner().peek(8, &key, PrimitiveId(0), 3).unwrap().len(),
            0,
            "absorb must not replace an existing enumeration"
        );
    }
}
