//! The VF2 match-enumeration cache.
//!
//! Every search-tree node enumerates, per library primitive, the distinct
//! subgraph images of the primitive's representation graph in the node's
//! *remaining graph*. Different paths through the tree frequently reach the
//! same remaining graph (most obviously: permutations of the same matching
//! set when canonical sibling ordering is disabled), and re-running VF2
//! there is pure waste — enumeration depends only on (remaining graph,
//! primitive).
//!
//! The cache keys entries by a **size-tagged** graph identity: the
//! remaining graph's vertex count plus its edge
//! [`BitSetKey`](noc_graph::BitSetKey) (edge bit `i` encodes
//! `(i / n, i % n)`, so the bitset only identifies a graph *given* `n`;
//! tagging the key with `n` makes entries from different graph sizes
//! collision-free in one map), nested with one slot per primitive. It
//! stores the *complete* distinct-image list with each image's covered
//! edge set precomputed. Incomplete enumerations — deadline expired or the
//! raw-match cap hit — are never cached, so a cached entry is always safe
//! to reuse.
//!
//! Because keys are size-tagged, one [`SharedMatchCache`] can serve a whole
//! size sweep: searches over 8-vertex and 16-vertex applications share the
//! map without any binding handshake (the pre-size-tag design bound a
//! shared cache to the first vertex count it saw and silently fell back to
//! a private cache on mismatch).
//!
//! The cache is shared across worker threads in parallel searches; a plain
//! mutex-guarded map suffices because VF2 enumeration dominates the lock by
//! orders of magnitude.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use noc_graph::{iso::Mapping, BitSetKey, Edge};
use noc_primitives::PrimitiveId;

use super::persist;

/// A match cache shared *across* decomposer runs.
///
/// The per-run cache already amortizes VF2 work within one search; a shared
/// cache extends that across searches — most profitably over the **same
/// application graph** (different placements, technologies, objectives or
/// engine knobs), where identical remaining graphs recur and the
/// enumeration is placement- and cost-independent. Exploration campaigns
/// (`noc-explore`) hand one of these to every scenario point.
///
/// Keys are size-tagged (vertex count, edge-bitset key), so a single cache
/// is sound for searches over *any* mix of graph sizes; use
/// [`size_stats`](Self::size_stats) to see which sizes it served.
#[derive(Debug, Clone)]
pub struct SharedMatchCache {
    inner: Arc<MatchCache>,
}

impl SharedMatchCache {
    /// An empty shared cache holding at most `capacity` distinct
    /// size-tagged remaining graphs.
    pub fn new(capacity: usize) -> Self {
        SharedMatchCache {
            inner: Arc::new(MatchCache::new(capacity)),
        }
    }

    /// Cumulative hits across every run that used this cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Cumulative misses across every run that used this cache.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Cumulative per-vertex-count traffic, ascending by vertex count —
    /// one entry per graph size this cache has served.
    pub fn size_stats(&self) -> Vec<SizeCacheStats> {
        self.inner.size_stats()
    }

    /// Number of distinct size-tagged remaining graphs currently cached
    /// (what [`new`](Self::new)'s `capacity` bounds).
    pub fn graph_count(&self) -> usize {
        self.inner.graph_count()
    }

    /// Serializes every cached enumeration as the persistence JSON (one
    /// versioned document; see the `persist` module source for the full
    /// format spec). The output is
    /// canonical — sizes, graphs and primitives in sorted order — so
    /// `save → load → save` is byte-identical.
    pub fn to_persist_json(&self) -> String {
        persist::write(&self.inner)
    }

    /// Writes [`to_persist_json`](Self::to_persist_json) to `path` via a
    /// temp-file rename, so a kill mid-save (or a concurrent reader)
    /// observes either the old file or the new one, never a torn write.
    pub fn save_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_persist_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Parses a cache back from [`to_persist_json`](Self::to_persist_json)
    /// output. Loaded entries are marked **warm**: hits they answer are
    /// additionally counted in [`SizeCacheStats::warm_hits`], which is how
    /// a campaign report proves a persisted cache actually served a
    /// restarted run. Strict — any malformed or semantically invalid
    /// document is an error (use [`warm_start`](Self::warm_start) where a
    /// bad file should degrade to a cold cache instead).
    pub fn from_persist_json(text: &str, capacity: usize) -> Result<SharedMatchCache, String> {
        let cache = SharedMatchCache::new(capacity);
        persist::read(text, &cache.inner)?;
        Ok(cache)
    }

    /// Reads a cache file previously written by [`save_to`](Self::save_to).
    /// Strict, like [`from_persist_json`](Self::from_persist_json).
    pub fn load_from(path: impl AsRef<Path>, capacity: usize) -> Result<SharedMatchCache, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read cache file {}: {e}", path.display()))?;
        Self::from_persist_json(&text, capacity)
    }

    /// The forgiving loader a long-running fleet wants: a missing file is
    /// a normal cold start, and a corrupt or truncated file **degrades to
    /// a cold start** (with the parse failure reported in
    /// [`WarmStart::degraded`]) instead of failing the run — a warm-start
    /// cache is an optimization, never a correctness input.
    pub fn warm_start(path: impl AsRef<Path>, capacity: usize) -> WarmStart {
        let path = path.as_ref();
        if !path.exists() {
            return WarmStart {
                cache: SharedMatchCache::new(capacity),
                loaded_graphs: 0,
                degraded: None,
            };
        }
        match Self::load_from(path, capacity) {
            Ok(cache) => WarmStart {
                loaded_graphs: cache.graph_count(),
                cache,
                degraded: None,
            },
            Err(reason) => WarmStart {
                cache: SharedMatchCache::new(capacity),
                loaded_graphs: 0,
                degraded: Some(reason),
            },
        }
    }

    /// Copies every enumeration cached in `other` that `self` does not
    /// already hold (existing entries win; `self`'s capacity still
    /// bounds inserts). A coordinator uses this to fold the caches its
    /// workers saved into one persistent file, and the warm/cold marking
    /// of `self`'s existing entries is untouched.
    pub fn absorb(&self, other: &SharedMatchCache) {
        self.inner.absorb(&other.inner);
    }

    /// The underlying cache handle.
    pub(crate) fn inner(&self) -> Arc<MatchCache> {
        Arc::clone(&self.inner)
    }
}

/// Outcome of [`SharedMatchCache::warm_start`]: the cache (possibly cold),
/// how many size-tagged graphs were loaded, and — when a present-but-bad
/// file forced a cold start — why.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// The ready-to-use cache.
    pub cache: SharedMatchCache,
    /// Distinct size-tagged remaining graphs loaded from the file
    /// (`0` on a cold start).
    pub loaded_graphs: usize,
    /// `Some(reason)` when the file existed but could not be used and the
    /// cache cold-started instead.
    pub degraded: Option<String>,
}

/// Cache traffic attributed to one graph size (vertex count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeCacheStats {
    /// Vertex count of the searches this row aggregates.
    pub vertex_count: usize,
    /// Enumerations answered from the cache.
    pub hits: u64,
    /// Enumerations that had to run.
    pub misses: u64,
    /// The subset of [`hits`](Self::hits) answered by entries loaded from
    /// a persisted cache file ([`SharedMatchCache::load_from`]) rather
    /// than computed this process — the warm-start payoff.
    pub warm_hits: u64,
    /// Distinct remaining graphs currently cached at this size.
    pub graphs: usize,
}

/// One primitive's complete distinct-image enumeration on one remaining
/// graph: each mapping paired with its covered (image) edge set, sorted.
pub(crate) type ImageList = Arc<Vec<(Mapping, Vec<Edge>)>>;

/// One cached enumeration plus its provenance: `arity` is the pattern
/// vertex count the enumeration was computed for (recorded explicitly so
/// even an *empty* "no matches" entry is rejected when looked up under a
/// different pattern binding for the same id — sharing one cache across
/// two primitive libraries fails closed, not open), and `warm` marks
/// entries loaded from a persisted cache file rather than computed by a
/// search in this process (hits on them count as warm hits).
#[derive(Debug, Clone)]
pub(crate) struct CachedImages {
    pub(crate) images: ImageList,
    pub(crate) arity: usize,
    pub(crate) warm: bool,
}

/// Per-size slot: the memo map for one vertex count plus its traffic
/// counters (kept per size so campaigns can report which sizes a shared
/// cache actually served).
#[derive(Debug, Default)]
struct SizeSlot {
    map: HashMap<BitSetKey, HashMap<PrimitiveId, CachedImages>>,
    hits: u64,
    misses: u64,
    warm_hits: u64,
}

/// Guarded cache state: size slots plus the total distinct-graph count
/// (what `capacity` bounds, across all sizes).
#[derive(Debug, Default)]
struct CacheState {
    sizes: HashMap<usize, SizeSlot>,
    graphs: usize,
}

/// Thread-safe memo of VF2 enumerations, keyed by (vertex count, edge key,
/// primitive) — nested so lookups borrow the edge key instead of cloning
/// it (the lookup sits on the per-node hot path).
#[derive(Debug)]
pub(crate) struct MatchCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl MatchCache {
    /// An empty cache holding at most `capacity` entries (inserts beyond
    /// that are dropped; lookups keep working).
    pub(crate) fn new(capacity: usize) -> Self {
        MatchCache {
            state: Mutex::new(CacheState::default()),
            capacity,
        }
    }

    /// Looks up an enumeration for an `n`-vertex remaining graph, counting
    /// a hit or miss against that size. `arity` is the caller's pattern
    /// vertex count: an entry recorded under a different arity was
    /// produced under a different primitive binding for this id (e.g. two
    /// libraries sharing one cache) and is rejected — counted as a miss,
    /// so hit statistics never credit entries the search could not use.
    pub(crate) fn get(
        &self,
        n: usize,
        key: &BitSetKey,
        primitive: PrimitiveId,
        arity: usize,
    ) -> Option<ImageList> {
        let mut state = self.state.lock().expect("match cache lock");
        let slot = state.sizes.entry(n).or_default();
        let found = slot
            .map
            .get(key)
            .and_then(|per_primitive| per_primitive.get(&primitive))
            .filter(|entry| entry.arity == arity)
            .cloned();
        match &found {
            Some(entry) => {
                slot.hits += 1;
                if entry.warm {
                    slot.warm_hits += 1;
                }
            }
            None => slot.misses += 1,
        }
        found.map(|entry| entry.images)
    }

    /// Peeks without counting (used by leaf-detection existence probes, so
    /// a probe does not inflate the miss statistics). Applies the same
    /// arity rejection as [`get`](Self::get).
    pub(crate) fn peek(
        &self,
        n: usize,
        key: &BitSetKey,
        primitive: PrimitiveId,
        arity: usize,
    ) -> Option<ImageList> {
        self.state
            .lock()
            .expect("match cache lock")
            .sizes
            .get(&n)
            .and_then(|slot| slot.map.get(key))
            .and_then(|per_primitive| per_primitive.get(&primitive))
            .filter(|entry| entry.arity == arity)
            .map(|entry| entry.images.clone())
    }

    /// Stores a complete enumeration, unless the cache is full (capacity
    /// counts distinct size-tagged remaining graphs; primitives nest under
    /// each).
    pub(crate) fn insert(
        &self,
        n: usize,
        key: BitSetKey,
        primitive: PrimitiveId,
        arity: usize,
        images: ImageList,
    ) {
        self.insert_entry(n, key, primitive, arity, images, false);
    }

    /// [`insert`](Self::insert) for entries restored from a persisted
    /// cache file: they are marked warm, so hits on them are attributed to
    /// the warm start. An already-present (cold) entry is not replaced —
    /// a computed enumeration is at least as trustworthy as a loaded one.
    pub(crate) fn insert_loaded(
        &self,
        n: usize,
        key: BitSetKey,
        primitive: PrimitiveId,
        arity: usize,
        images: ImageList,
    ) {
        self.insert_entry(n, key, primitive, arity, images, true);
    }

    fn insert_entry(
        &self,
        n: usize,
        key: BitSetKey,
        primitive: PrimitiveId,
        arity: usize,
        images: ImageList,
        warm: bool,
    ) {
        let mut state = self.state.lock().expect("match cache lock");
        let full = state.graphs >= self.capacity;
        let slot = state.sizes.entry(n).or_default();
        let known = slot.map.contains_key(&key);
        if !known && full {
            return;
        }
        let per_primitive = slot.map.entry(key).or_default();
        if !(warm && per_primitive.contains_key(&primitive)) {
            per_primitive.insert(
                primitive,
                CachedImages {
                    images,
                    arity,
                    warm,
                },
            );
        }
        if !known {
            state.graphs += 1;
        }
    }

    /// Copies every entry of `other` that `self` lacks (see
    /// [`SharedMatchCache::absorb`]): existing entries always win, and
    /// warm marking carries over for the rest, so absorbing a freshly
    /// loaded cache keeps its entries warm.
    pub(crate) fn absorb(&self, other: &MatchCache) {
        for (n, key, primitive, entry) in other.snapshot() {
            if !self.contains(n, &key, primitive) {
                self.insert_entry(n, key, primitive, entry.arity, entry.images, entry.warm);
            }
        }
    }

    /// Presence check without stats or arity filtering (absorb wants to
    /// know whether *any* entry occupies the slot).
    fn contains(&self, n: usize, key: &BitSetKey, primitive: PrimitiveId) -> bool {
        self.state
            .lock()
            .expect("match cache lock")
            .sizes
            .get(&n)
            .and_then(|slot| slot.map.get(key))
            .is_some_and(|per_primitive| per_primitive.contains_key(&primitive))
    }

    /// Every cached entry in canonical order: ascending vertex count, then
    /// edge-key words (length-first, then lexicographic), then primitive
    /// id. The persistence writer serializes exactly this sequence, which
    /// is what makes `save → load → save` byte-identical.
    pub(crate) fn snapshot(&self) -> Vec<(usize, BitSetKey, PrimitiveId, CachedImages)> {
        let state = self.state.lock().expect("match cache lock");
        let mut entries: Vec<(usize, BitSetKey, PrimitiveId, CachedImages)> = Vec::new();
        for (&n, slot) in &state.sizes {
            for (key, per_primitive) in &slot.map {
                for (&primitive, entry) in per_primitive {
                    entries.push((n, key.clone(), primitive, entry.clone()));
                }
            }
        }
        entries.sort_by(|a, b| {
            (a.0, a.1.words().len(), a.1.words(), a.2).cmp(&(
                b.0,
                b.1.words().len(),
                b.1.words(),
                b.2,
            ))
        });
        entries
    }

    /// Distinct size-tagged remaining graphs currently cached.
    pub(crate) fn graph_count(&self) -> usize {
        self.state.lock().expect("match cache lock").graphs
    }

    /// Hit count so far, summed over every size.
    pub(crate) fn hits(&self) -> u64 {
        let state = self.state.lock().expect("match cache lock");
        state.sizes.values().map(|s| s.hits).sum()
    }

    /// Miss count so far, summed over every size.
    pub(crate) fn misses(&self) -> u64 {
        let state = self.state.lock().expect("match cache lock");
        state.sizes.values().map(|s| s.misses).sum()
    }

    /// Per-size traffic, ascending by vertex count.
    pub(crate) fn size_stats(&self) -> Vec<SizeCacheStats> {
        let state = self.state.lock().expect("match cache lock");
        let mut stats: Vec<SizeCacheStats> = state
            .sizes
            .iter()
            .map(|(&vertex_count, slot)| SizeCacheStats {
                vertex_count,
                hits: slot.hits,
                misses: slot.misses,
                warm_hits: slot.warm_hits,
                graphs: slot.map.len(),
            })
            .collect();
        stats.sort_by_key(|s| s.vertex_count);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{DiGraph, NodeId};

    fn key_of(g: &DiGraph) -> (usize, BitSetKey) {
        (g.node_count(), g.edge_key())
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let cache = MatchCache::new(16);
        let g = DiGraph::cycle(4);
        let (n, key) = key_of(&g);
        let id = PrimitiveId(0);
        assert!(cache.get(n, &key, id, 2).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let images: ImageList = Arc::new(vec![(
            Mapping::new(vec![NodeId(0), NodeId(1)]),
            vec![Edge::new(NodeId(0), NodeId(1))],
        )]);
        cache.insert(n, key.clone(), id, 2, images);
        assert!(cache.get(n, &key, id, 2).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different primitive on the same graph is a distinct entry.
        assert!(cache.get(n, &key, PrimitiveId(1), 2).is_none());
    }

    #[test]
    fn arity_mismatch_is_a_miss_not_a_hit() {
        // An entry whose mappings have the wrong arity (a cache shared
        // across different primitive libraries) must be rejected AND
        // counted as a miss — warm-hit statistics never credit entries
        // the search could not consume.
        let cache = MatchCache::new(16);
        let g = DiGraph::cycle(4);
        let (n, key) = key_of(&g);
        let images: ImageList = Arc::new(vec![(
            Mapping::new(vec![NodeId(0), NodeId(1)]),
            vec![Edge::new(NodeId(0), NodeId(1))],
        )]);
        cache.insert_loaded(n, key.clone(), PrimitiveId(0), 2, images);
        assert!(cache.get(n, &key, PrimitiveId(0), 3).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(cache.size_stats().iter().all(|s| s.warm_hits == 0));
        assert!(cache.peek(n, &key, PrimitiveId(0), 3).is_none());
        // The matching arity still answers (and counts the warm hit).
        assert!(cache.get(n, &key, PrimitiveId(0), 2).is_some());
        assert_eq!(cache.size_stats()[0].warm_hits, 1);
    }

    #[test]
    fn peek_does_not_count() {
        let cache = MatchCache::new(16);
        let g = DiGraph::complete(3);
        let (n, key) = key_of(&g);
        assert!(cache.peek(n, &key, PrimitiveId(0), 2).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn capacity_bounds_inserts_across_sizes() {
        let cache = MatchCache::new(1);
        let a = DiGraph::cycle(3);
        let b = DiGraph::cycle(4);
        let (na, ka) = key_of(&a);
        let (nb, kb) = key_of(&b);
        let empty: ImageList = Arc::new(Vec::new());
        cache.insert(na, ka.clone(), PrimitiveId(0), 2, empty.clone());
        // A second primitive on an already-cached graph still lands.
        cache.insert(na, ka.clone(), PrimitiveId(1), 2, empty.clone());
        // A new graph — even at a different size — is over capacity.
        cache.insert(nb, kb.clone(), PrimitiveId(0), 2, empty);
        assert!(cache.peek(na, &ka, PrimitiveId(0), 2).is_some());
        assert!(cache.peek(na, &ka, PrimitiveId(1), 2).is_some());
        assert!(cache.peek(nb, &kb, PrimitiveId(0), 2).is_none());
    }

    #[test]
    fn sizes_do_not_collide() {
        // The same edge bitset under two vertex counts names two different
        // graphs; size tagging keeps the entries apart.
        let cache = MatchCache::new(16);
        let small = DiGraph::cycle(3);
        let (n, key) = key_of(&small);
        let images: ImageList = Arc::new(Vec::new());
        cache.insert(n, key.clone(), PrimitiveId(0), 2, images);
        assert!(cache.peek(n, &key, PrimitiveId(0), 2).is_some());
        assert!(cache.peek(n + 1, &key, PrimitiveId(0), 2).is_none());
    }

    #[test]
    fn size_stats_track_per_size_traffic() {
        let cache = MatchCache::new(16);
        let a = DiGraph::cycle(3);
        let b = DiGraph::cycle(5);
        let (na, ka) = key_of(&a);
        let (nb, kb) = key_of(&b);
        let empty: ImageList = Arc::new(Vec::new());
        assert!(cache.get(na, &ka, PrimitiveId(0), 2).is_none()); // miss @3
        cache.insert(na, ka.clone(), PrimitiveId(0), 2, empty.clone());
        assert!(cache.get(na, &ka, PrimitiveId(0), 2).is_some()); // hit @3
        assert!(cache.get(nb, &kb, PrimitiveId(0), 2).is_none()); // miss @5
        cache.insert(nb, kb, PrimitiveId(0), 2, empty);

        let stats = cache.size_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].vertex_count, 3);
        assert_eq!((stats[0].hits, stats[0].misses, stats[0].graphs), (1, 1, 1));
        assert_eq!(stats[1].vertex_count, 5);
        assert_eq!((stats[1].hits, stats[1].misses, stats[1].graphs), (0, 1, 1));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }
}
