//! The VF2 match-enumeration cache.
//!
//! Every search-tree node enumerates, per library primitive, the distinct
//! subgraph images of the primitive's representation graph in the node's
//! *remaining graph*. Different paths through the tree frequently reach the
//! same remaining graph (most obviously: permutations of the same matching
//! set when canonical sibling ordering is disabled), and re-running VF2
//! there is pure waste — enumeration depends only on (remaining graph,
//! primitive).
//!
//! The cache keys entries by the remaining graph's edge
//! [`BitSetKey`](noc_graph::BitSetKey) (the vertex set is fixed for a whole
//! search, so the edge set identifies the graph) plus the primitive index,
//! and stores the *complete* distinct-image list with each image's covered
//! edge set precomputed. Incomplete enumerations — deadline expired or the
//! raw-match cap hit — are never cached, so a cached entry is always safe
//! to reuse.
//!
//! The cache is shared across worker threads in parallel searches; a plain
//! mutex-guarded map suffices because VF2 enumeration dominates the lock by
//! orders of magnitude.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use noc_graph::{iso::Mapping, BitSetKey, Edge};
use noc_primitives::PrimitiveId;

/// A match cache shared *across* decomposer runs.
///
/// The per-run cache already amortizes VF2 work within one search; a shared
/// cache extends that across searches of the **same application graph**
/// (different placements, technologies, objectives or engine knobs), where
/// identical remaining graphs recur and the enumeration is placement- and
/// cost-independent. Exploration campaigns (`noc-explore`) hand one of
/// these to every scenario point that runs the same workload.
///
/// Edge keys only identify a graph *given its vertex count* (the bitset is
/// indexed `src * n + dst`), so a shared cache binds to the vertex count of
/// the first search that uses it; a decomposer handed a cache bound to a
/// different count silently falls back to a private per-run cache rather
/// than risk key collisions.
#[derive(Debug, Clone)]
pub struct SharedMatchCache {
    inner: Arc<MatchCache>,
}

impl SharedMatchCache {
    /// An empty shared cache holding at most `capacity` distinct remaining
    /// graphs.
    pub fn new(capacity: usize) -> Self {
        SharedMatchCache {
            inner: Arc::new(MatchCache::new(capacity)),
        }
    }

    /// Cumulative hits across every run that used this cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Cumulative misses across every run that used this cache.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Binds the cache to `vertex_count` (first caller wins) and reports
    /// whether a search over that many vertices may use it.
    pub(crate) fn bind(&self, vertex_count: usize) -> bool {
        self.inner.bind(vertex_count)
    }

    /// The underlying cache handle.
    pub(crate) fn inner(&self) -> Arc<MatchCache> {
        Arc::clone(&self.inner)
    }
}

/// One primitive's complete distinct-image enumeration on one remaining
/// graph: each mapping paired with its covered (image) edge set, sorted.
pub(crate) type ImageList = Arc<Vec<(Mapping, Vec<Edge>)>>;

/// Thread-safe memo of VF2 enumerations, keyed by the remaining graph's
/// edge key with one slot per primitive (nested so lookups borrow the key
/// instead of cloning it — the lookup sits on the per-node hot path).
#[derive(Debug)]
pub(crate) struct MatchCache {
    map: Mutex<HashMap<BitSetKey, HashMap<PrimitiveId, ImageList>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Vertex count the keys are valid for; `0` until the first bind.
    vertex_count: AtomicUsize,
}

impl MatchCache {
    /// An empty cache holding at most `capacity` entries (inserts beyond
    /// that are dropped; lookups keep working).
    pub(crate) fn new(capacity: usize) -> Self {
        MatchCache {
            map: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            vertex_count: AtomicUsize::new(0),
        }
    }

    /// Binds the cache to `vertex_count` on first use; returns whether the
    /// cache is usable for graphs of that vertex count.
    pub(crate) fn bind(&self, vertex_count: usize) -> bool {
        match self.vertex_count.compare_exchange(
            0,
            vertex_count,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => true,
            Err(bound) => bound == vertex_count,
        }
    }

    /// Looks up an enumeration, counting a hit or miss.
    pub(crate) fn get(&self, key: &BitSetKey, primitive: PrimitiveId) -> Option<ImageList> {
        let found = self
            .map
            .lock()
            .expect("match cache lock")
            .get(key)
            .and_then(|per_primitive| per_primitive.get(&primitive))
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Peeks without counting (used by leaf-detection existence probes, so
    /// a probe does not inflate the miss statistics).
    pub(crate) fn peek(&self, key: &BitSetKey, primitive: PrimitiveId) -> Option<ImageList> {
        self.map
            .lock()
            .expect("match cache lock")
            .get(key)
            .and_then(|per_primitive| per_primitive.get(&primitive))
            .cloned()
    }

    /// Stores a complete enumeration, unless the cache is full (capacity
    /// counts distinct remaining graphs; primitives nest under each).
    pub(crate) fn insert(&self, key: BitSetKey, primitive: PrimitiveId, images: ImageList) {
        let mut map = self.map.lock().expect("match cache lock");
        if map.len() < self.capacity || map.contains_key(&key) {
            map.entry(key).or_default().insert(primitive, images);
        }
    }

    /// Hit count so far.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Miss count so far.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{DiGraph, NodeId};

    fn key_of(g: &DiGraph) -> BitSetKey {
        g.edge_key()
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let cache = MatchCache::new(16);
        let g = DiGraph::cycle(4);
        let id = PrimitiveId(0);
        assert!(cache.get(&key_of(&g), id).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let images: ImageList = Arc::new(vec![(
            Mapping::new(vec![NodeId(0), NodeId(1)]),
            vec![Edge::new(NodeId(0), NodeId(1))],
        )]);
        cache.insert(key_of(&g), id, images);
        assert!(cache.get(&key_of(&g), id).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different primitive on the same graph is a distinct entry.
        assert!(cache.get(&key_of(&g), PrimitiveId(1)).is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let cache = MatchCache::new(16);
        let g = DiGraph::complete(3);
        assert!(cache.peek(&key_of(&g), PrimitiveId(0)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn capacity_bounds_inserts() {
        let cache = MatchCache::new(1);
        let a = DiGraph::cycle(3);
        let b = DiGraph::cycle(4);
        let empty: ImageList = Arc::new(Vec::new());
        cache.insert(key_of(&a), PrimitiveId(0), empty.clone());
        cache.insert(key_of(&b), PrimitiveId(0), empty);
        assert!(cache.peek(&key_of(&a), PrimitiveId(0)).is_some());
        assert!(cache.peek(&key_of(&b), PrimitiveId(0)).is_none());
    }
}
