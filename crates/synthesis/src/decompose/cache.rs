//! The VF2 match-enumeration cache.
//!
//! Every search-tree node enumerates, per library primitive, the distinct
//! subgraph images of the primitive's representation graph in the node's
//! *remaining graph*. Different paths through the tree frequently reach the
//! same remaining graph (most obviously: permutations of the same matching
//! set when canonical sibling ordering is disabled), and re-running VF2
//! there is pure waste — enumeration depends only on (remaining graph,
//! primitive).
//!
//! The cache keys entries by a **size-tagged** graph identity: the
//! remaining graph's vertex count plus its edge
//! [`BitSetKey`](noc_graph::BitSetKey) (edge bit `i` encodes
//! `(i / n, i % n)`, so the bitset only identifies a graph *given* `n`;
//! tagging the key with `n` makes entries from different graph sizes
//! collision-free in one map), nested with one slot per primitive. It
//! stores the *complete* distinct-image list with each image's covered
//! edge set precomputed. Incomplete enumerations — deadline expired or the
//! raw-match cap hit — are never cached, so a cached entry is always safe
//! to reuse.
//!
//! Because keys are size-tagged, one [`SharedMatchCache`] can serve a whole
//! size sweep: searches over 8-vertex and 16-vertex applications share the
//! map without any binding handshake (the pre-size-tag design bound a
//! shared cache to the first vertex count it saw and silently fell back to
//! a private cache on mismatch).
//!
//! The cache is shared across worker threads in parallel searches; a plain
//! mutex-guarded map suffices because VF2 enumeration dominates the lock by
//! orders of magnitude.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use noc_graph::{iso::Mapping, BitSetKey, Edge};
use noc_primitives::PrimitiveId;

/// A match cache shared *across* decomposer runs.
///
/// The per-run cache already amortizes VF2 work within one search; a shared
/// cache extends that across searches — most profitably over the **same
/// application graph** (different placements, technologies, objectives or
/// engine knobs), where identical remaining graphs recur and the
/// enumeration is placement- and cost-independent. Exploration campaigns
/// (`noc-explore`) hand one of these to every scenario point.
///
/// Keys are size-tagged (vertex count, edge-bitset key), so a single cache
/// is sound for searches over *any* mix of graph sizes; use
/// [`size_stats`](Self::size_stats) to see which sizes it served.
#[derive(Debug, Clone)]
pub struct SharedMatchCache {
    inner: Arc<MatchCache>,
}

impl SharedMatchCache {
    /// An empty shared cache holding at most `capacity` distinct
    /// size-tagged remaining graphs.
    pub fn new(capacity: usize) -> Self {
        SharedMatchCache {
            inner: Arc::new(MatchCache::new(capacity)),
        }
    }

    /// Cumulative hits across every run that used this cache.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Cumulative misses across every run that used this cache.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Cumulative per-vertex-count traffic, ascending by vertex count —
    /// one entry per graph size this cache has served.
    pub fn size_stats(&self) -> Vec<SizeCacheStats> {
        self.inner.size_stats()
    }

    /// The underlying cache handle.
    pub(crate) fn inner(&self) -> Arc<MatchCache> {
        Arc::clone(&self.inner)
    }
}

/// Cache traffic attributed to one graph size (vertex count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeCacheStats {
    /// Vertex count of the searches this row aggregates.
    pub vertex_count: usize,
    /// Enumerations answered from the cache.
    pub hits: u64,
    /// Enumerations that had to run.
    pub misses: u64,
    /// Distinct remaining graphs currently cached at this size.
    pub graphs: usize,
}

/// One primitive's complete distinct-image enumeration on one remaining
/// graph: each mapping paired with its covered (image) edge set, sorted.
pub(crate) type ImageList = Arc<Vec<(Mapping, Vec<Edge>)>>;

/// Per-size slot: the memo map for one vertex count plus its traffic
/// counters (kept per size so campaigns can report which sizes a shared
/// cache actually served).
#[derive(Debug, Default)]
struct SizeSlot {
    map: HashMap<BitSetKey, HashMap<PrimitiveId, ImageList>>,
    hits: u64,
    misses: u64,
}

/// Guarded cache state: size slots plus the total distinct-graph count
/// (what `capacity` bounds, across all sizes).
#[derive(Debug, Default)]
struct CacheState {
    sizes: HashMap<usize, SizeSlot>,
    graphs: usize,
}

/// Thread-safe memo of VF2 enumerations, keyed by (vertex count, edge key,
/// primitive) — nested so lookups borrow the edge key instead of cloning
/// it (the lookup sits on the per-node hot path).
#[derive(Debug)]
pub(crate) struct MatchCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl MatchCache {
    /// An empty cache holding at most `capacity` entries (inserts beyond
    /// that are dropped; lookups keep working).
    pub(crate) fn new(capacity: usize) -> Self {
        MatchCache {
            state: Mutex::new(CacheState::default()),
            capacity,
        }
    }

    /// Looks up an enumeration for an `n`-vertex remaining graph, counting
    /// a hit or miss against that size.
    pub(crate) fn get(
        &self,
        n: usize,
        key: &BitSetKey,
        primitive: PrimitiveId,
    ) -> Option<ImageList> {
        let mut state = self.state.lock().expect("match cache lock");
        let slot = state.sizes.entry(n).or_default();
        let found = slot
            .map
            .get(key)
            .and_then(|per_primitive| per_primitive.get(&primitive))
            .cloned();
        match &found {
            Some(_) => slot.hits += 1,
            None => slot.misses += 1,
        }
        found
    }

    /// Peeks without counting (used by leaf-detection existence probes, so
    /// a probe does not inflate the miss statistics).
    pub(crate) fn peek(
        &self,
        n: usize,
        key: &BitSetKey,
        primitive: PrimitiveId,
    ) -> Option<ImageList> {
        self.state
            .lock()
            .expect("match cache lock")
            .sizes
            .get(&n)
            .and_then(|slot| slot.map.get(key))
            .and_then(|per_primitive| per_primitive.get(&primitive))
            .cloned()
    }

    /// Stores a complete enumeration, unless the cache is full (capacity
    /// counts distinct size-tagged remaining graphs; primitives nest under
    /// each).
    pub(crate) fn insert(
        &self,
        n: usize,
        key: BitSetKey,
        primitive: PrimitiveId,
        images: ImageList,
    ) {
        let mut state = self.state.lock().expect("match cache lock");
        let full = state.graphs >= self.capacity;
        let slot = state.sizes.entry(n).or_default();
        let known = slot.map.contains_key(&key);
        if known {
            slot.map.entry(key).or_default().insert(primitive, images);
        } else if !full {
            slot.map.entry(key).or_default().insert(primitive, images);
            state.graphs += 1;
        }
    }

    /// Hit count so far, summed over every size.
    pub(crate) fn hits(&self) -> u64 {
        let state = self.state.lock().expect("match cache lock");
        state.sizes.values().map(|s| s.hits).sum()
    }

    /// Miss count so far, summed over every size.
    pub(crate) fn misses(&self) -> u64 {
        let state = self.state.lock().expect("match cache lock");
        state.sizes.values().map(|s| s.misses).sum()
    }

    /// Per-size traffic, ascending by vertex count.
    pub(crate) fn size_stats(&self) -> Vec<SizeCacheStats> {
        let state = self.state.lock().expect("match cache lock");
        let mut stats: Vec<SizeCacheStats> = state
            .sizes
            .iter()
            .map(|(&vertex_count, slot)| SizeCacheStats {
                vertex_count,
                hits: slot.hits,
                misses: slot.misses,
                graphs: slot.map.len(),
            })
            .collect();
        stats.sort_by_key(|s| s.vertex_count);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{DiGraph, NodeId};

    fn key_of(g: &DiGraph) -> (usize, BitSetKey) {
        (g.node_count(), g.edge_key())
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let cache = MatchCache::new(16);
        let g = DiGraph::cycle(4);
        let (n, key) = key_of(&g);
        let id = PrimitiveId(0);
        assert!(cache.get(n, &key, id).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let images: ImageList = Arc::new(vec![(
            Mapping::new(vec![NodeId(0), NodeId(1)]),
            vec![Edge::new(NodeId(0), NodeId(1))],
        )]);
        cache.insert(n, key.clone(), id, images);
        assert!(cache.get(n, &key, id).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different primitive on the same graph is a distinct entry.
        assert!(cache.get(n, &key, PrimitiveId(1)).is_none());
    }

    #[test]
    fn peek_does_not_count() {
        let cache = MatchCache::new(16);
        let g = DiGraph::complete(3);
        let (n, key) = key_of(&g);
        assert!(cache.peek(n, &key, PrimitiveId(0)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn capacity_bounds_inserts_across_sizes() {
        let cache = MatchCache::new(1);
        let a = DiGraph::cycle(3);
        let b = DiGraph::cycle(4);
        let (na, ka) = key_of(&a);
        let (nb, kb) = key_of(&b);
        let empty: ImageList = Arc::new(Vec::new());
        cache.insert(na, ka.clone(), PrimitiveId(0), empty.clone());
        // A second primitive on an already-cached graph still lands.
        cache.insert(na, ka.clone(), PrimitiveId(1), empty.clone());
        // A new graph — even at a different size — is over capacity.
        cache.insert(nb, kb.clone(), PrimitiveId(0), empty);
        assert!(cache.peek(na, &ka, PrimitiveId(0)).is_some());
        assert!(cache.peek(na, &ka, PrimitiveId(1)).is_some());
        assert!(cache.peek(nb, &kb, PrimitiveId(0)).is_none());
    }

    #[test]
    fn sizes_do_not_collide() {
        // The same edge bitset under two vertex counts names two different
        // graphs; size tagging keeps the entries apart.
        let cache = MatchCache::new(16);
        let small = DiGraph::cycle(3);
        let (n, key) = key_of(&small);
        let images: ImageList = Arc::new(Vec::new());
        cache.insert(n, key.clone(), PrimitiveId(0), images);
        assert!(cache.peek(n, &key, PrimitiveId(0)).is_some());
        assert!(cache.peek(n + 1, &key, PrimitiveId(0)).is_none());
    }

    #[test]
    fn size_stats_track_per_size_traffic() {
        let cache = MatchCache::new(16);
        let a = DiGraph::cycle(3);
        let b = DiGraph::cycle(5);
        let (na, ka) = key_of(&a);
        let (nb, kb) = key_of(&b);
        let empty: ImageList = Arc::new(Vec::new());
        assert!(cache.get(na, &ka, PrimitiveId(0)).is_none()); // miss @3
        cache.insert(na, ka.clone(), PrimitiveId(0), empty.clone());
        assert!(cache.get(na, &ka, PrimitiveId(0)).is_some()); // hit @3
        assert!(cache.get(nb, &kb, PrimitiveId(0)).is_none()); // miss @5
        cache.insert(nb, kb, PrimitiveId(0), empty);

        let stats = cache.size_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].vertex_count, 3);
        assert_eq!((stats[0].hits, stats[0].misses, stats[0].graphs), (1, 1, 1));
        assert_eq!(stats[1].vertex_count, 5);
        assert_eq!((stats[1].hits, stats[1].misses, stats[1].graphs), (0, 1, 1));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }
}
