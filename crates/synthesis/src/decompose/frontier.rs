//! The explicit search frontier: open search-tree nodes plus the pluggable
//! expansion order.
//!
//! The engine is an *iterative* tree search — nodes live on an explicit
//! frontier instead of the call stack, which is what makes the expansion
//! order pluggable ([`SearchOrder::DepthFirst`] reproduces the classic
//! recursive branch-and-bound exactly, [`SearchOrder::BestFirst`] pops the
//! node with the smallest optimistic bound first) and what lets the
//! parallel driver hand whole subtrees to worker threads.
//!
//! Paths are shared structurally: each node holds an `Arc` link to its
//! parent's matching, so sibling subtrees share their common prefix
//! instead of cloning the whole matching list per node.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use noc_graph::{DiGraph, Edge};
use noc_primitives::PrimitiveId;

use super::{Matching, SearchOrder};
use crate::cost::Cost;

/// One matching on the path from the root, linked toward the root.
#[derive(Debug)]
pub(crate) struct PathLink {
    pub(crate) matching: Matching,
    pub(crate) parent: Option<Arc<PathLink>>,
}

/// Materializes a path link chain into root-to-leaf order.
pub(crate) fn path_to_vec(path: &Option<Arc<PathLink>>) -> Vec<Matching> {
    let mut out = Vec::new();
    let mut cursor = path;
    while let Some(link) = cursor {
        out.push(link.matching.clone());
        cursor = &link.parent;
    }
    out.reverse();
    out
}

/// An open node of the decomposition search tree.
#[derive(Debug)]
pub(crate) struct SearchNode {
    /// Uncovered edges (full vertex set).
    pub(crate) remaining: DiGraph,
    /// Cost accumulated along the path (Σ matching costs).
    pub(crate) cost: Cost,
    /// Matchings subtracted so far, shared with sibling subtrees.
    pub(crate) path: Option<Arc<PathLink>>,
    /// Canonical sibling-ordering key: children may only use matchings
    /// whose `(primitive, image)` exceeds this.
    pub(crate) min_key: Option<(PrimitiveId, Vec<Edge>)>,
    /// Optimistic completion bound (`cost` plus the admissible remaining
    /// bound); doubles as the best-first priority.
    pub(crate) bound: f64,
    /// Monotone insertion index, assigned by the [`Frontier`] on push —
    /// the deterministic oldest-first tie-break for equal bounds.
    pub(crate) seq: u64,
}

impl SearchNode {
    /// The search root: the whole application graph, nothing matched.
    pub(crate) fn root(remaining: DiGraph) -> Self {
        SearchNode {
            remaining,
            cost: Cost(0.0),
            path: None,
            min_key: None,
            bound: 0.0,
            seq: 0,
        }
    }
}

/// The open list, in one of the pluggable expansion orders. Owns the
/// monotone insertion counter stamped onto every pushed node, so seqs are
/// unique and strictly increasing in push order.
#[derive(Debug)]
pub(crate) struct Frontier {
    open: OpenList,
    next_seq: u64,
}

#[derive(Debug)]
enum OpenList {
    /// LIFO stack — children are pushed in reverse so the first child pops
    /// first, reproducing recursive DFS preorder exactly.
    Dfs(Vec<SearchNode>),
    /// Min-heap on `(bound, seq)` — smallest optimistic bound first.
    Best(BinaryHeap<Reverse<HeapEntry>>),
}

impl Frontier {
    /// An empty frontier with the given expansion order.
    pub(crate) fn new(order: SearchOrder) -> Self {
        Frontier {
            open: match order {
                SearchOrder::DepthFirst => OpenList::Dfs(Vec::new()),
                SearchOrder::BestFirst => OpenList::Best(BinaryHeap::new()),
            },
            next_seq: 0,
        }
    }

    /// Adds a single node, stamping its insertion index.
    pub(crate) fn push(&mut self, mut node: SearchNode) {
        node.seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.open {
            OpenList::Dfs(stack) => stack.push(node),
            OpenList::Best(heap) => heap.push(Reverse(HeapEntry(node))),
        }
    }

    /// Adds a node's children, preserving the order's semantics: for DFS
    /// the drained children pop in their generated (canonical) order, and
    /// seqs increase in generated order (earlier child = older).
    pub(crate) fn extend(&mut self, children: &mut Vec<SearchNode>) {
        for node in children.iter_mut() {
            node.seq = self.next_seq;
            self.next_seq += 1;
        }
        match &mut self.open {
            OpenList::Dfs(stack) => stack.extend(children.drain(..).rev()),
            OpenList::Best(heap) => heap.extend(children.drain(..).map(|n| Reverse(HeapEntry(n)))),
        }
    }

    /// Removes the next node to expand.
    pub(crate) fn pop(&mut self) -> Option<SearchNode> {
        match &mut self.open {
            OpenList::Dfs(stack) => stack.pop(),
            OpenList::Best(heap) => heap.pop().map(|Reverse(HeapEntry(n))| n),
        }
    }

    /// Number of open nodes.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        match &self.open {
            OpenList::Dfs(stack) => stack.len(),
            OpenList::Best(heap) => heap.len(),
        }
    }
}

/// Heap adapter ordering nodes by `(bound, seq)` ascending. Bounds are
/// non-negative finite floats, so their IEEE-754 bit patterns order
/// identically to their values.
#[derive(Debug)]
pub(crate) struct HeapEntry(pub(crate) SearchNode);

impl HeapEntry {
    fn rank(&self) -> (u64, u64) {
        (self.0.bound.to_bits(), self.0.seq)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(bound: f64, seq: u64) -> SearchNode {
        SearchNode {
            remaining: DiGraph::new(1),
            cost: Cost(0.0),
            path: None,
            min_key: None,
            bound,
            seq,
        }
    }

    #[test]
    fn dfs_pops_children_in_generated_order() {
        let mut f = Frontier::new(SearchOrder::DepthFirst);
        let mut children = vec![node(0.0, 0), node(1.0, 0), node(2.0, 0)];
        f.extend(&mut children);
        // Stamped seqs are 0, 1, 2 in generated order; DFS pops generated
        // order first.
        assert_eq!(f.pop().unwrap().bound, 0.0);
        assert_eq!(f.pop().unwrap().bound, 1.0);
        assert_eq!(f.pop().unwrap().bound, 2.0);
        assert!(f.pop().is_none());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn best_first_pops_lowest_bound_then_oldest() {
        let mut f = Frontier::new(SearchOrder::BestFirst);
        f.push(node(5.0, 0)); // seq 0
        f.push(node(2.0, 0)); // seq 1
        f.push(node(2.0, 0)); // seq 2
        f.push(node(9.0, 0)); // seq 3
        assert_eq!(f.len(), 4);
        assert_eq!(f.pop().unwrap().seq, 1); // bound 2, oldest
        assert_eq!(f.pop().unwrap().seq, 2); // bound 2, newer
        assert_eq!(f.pop().unwrap().seq, 0); // bound 5
        assert_eq!(f.pop().unwrap().seq, 3); // bound 9
    }

    #[test]
    fn seqs_are_unique_and_monotone_across_pushes() {
        let mut f = Frontier::new(SearchOrder::BestFirst);
        f.push(node(1.0, 0));
        let mut batch = vec![node(1.0, 0), node(1.0, 0)];
        f.extend(&mut batch);
        let mut seqs: Vec<u64> = (0..3).map(|_| f.pop().unwrap().seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn path_to_vec_is_root_to_leaf() {
        use noc_graph::iso::Mapping;
        use noc_graph::NodeId;
        let m = |label: &str| Matching {
            primitive: PrimitiveId(0),
            label: label.to_string(),
            mapping: Mapping::new(vec![NodeId(0)]),
            cost: Cost(1.0),
        };
        let root = Arc::new(PathLink {
            matching: m("a"),
            parent: None,
        });
        let leaf = Some(Arc::new(PathLink {
            matching: m("b"),
            parent: Some(root),
        }));
        let labels: Vec<String> = path_to_vec(&leaf).into_iter().map(|m| m.label).collect();
        assert_eq!(labels, vec!["a", "b"]);
        assert!(path_to_vec(&None).is_empty());
    }
}
