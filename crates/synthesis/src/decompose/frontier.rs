//! The explicit search frontier: an arena of open search-tree nodes plus
//! the pluggable expansion order.
//!
//! The engine is an *iterative* tree search — nodes live on an explicit
//! frontier instead of the call stack, which is what makes the expansion
//! order pluggable ([`SearchOrder::DepthFirst`] reproduces the classic
//! recursive branch-and-bound exactly, [`SearchOrder::BestFirst`] pops the
//! node with the smallest optimistic bound first) and what lets the
//! parallel driver hand whole subtrees to worker threads.
//!
//! # Arena layout
//!
//! A node is *not* a materialized graph: it is an edge bitmask (bit
//! `src * n + dst`, the same layout as [`noc_graph::DiGraph::edge_bitset`]
//! and the match-cache keys) plus scalar metadata. The frontier owns a
//! struct-of-arrays slab: all masks live in one flat `Vec<u64>` indexed by
//! `slot * stride`, the canonical-ordering min-keys in a second, and the
//! scalars (cost, bound, edge count, path link) in a parallel `Vec`. Freed
//! slots are recycled through a free list, so a depth-first search reuses a
//! working set of O(depth × branching) slots with zero steady-state
//! allocation. Children are *staged* into the slab while a node expands and
//! committed in one batch, which is also where insertion order is stamped.
//!
//! Popping copies the node out into a caller-owned [`PoppedNode`] (the slab
//! slot is recycled immediately); the engine materializes a [`DiGraph`]
//! from the mask once per expansion instead of cloning graphs per child.
//!
//! Paths are shared structurally: each node holds an `Arc` link to its
//! parent's matching, so sibling subtrees share their common prefix
//! instead of cloning the whole matching list per node.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use noc_primitives::PrimitiveId;

use super::{Matching, SearchOrder};
use crate::cost::Cost;

/// One matching on the path from the root, linked toward the root.
#[derive(Debug)]
pub(crate) struct PathLink {
    pub(crate) matching: Matching,
    pub(crate) parent: Option<Arc<PathLink>>,
}

/// Materializes a path link chain into root-to-leaf order.
pub(crate) fn path_to_vec(path: &Option<Arc<PathLink>>) -> Vec<Matching> {
    let mut out = Vec::new();
    let mut cursor = path;
    while let Some(link) = cursor {
        out.push(link.matching.clone());
        cursor = &link.parent;
    }
    out.reverse();
    out
}

/// A search-tree node copied out of the arena: the unit the engine expands
/// and the packet the parallel driver ships between workers.
#[derive(Debug, Clone)]
pub(crate) struct PoppedNode {
    /// Uncovered edges as a bitmask (bit `src * n + dst`).
    pub(crate) mask: Vec<u64>,
    /// Image mask of the canonical-ordering cut (valid iff `min_prim` is
    /// set): children may only use images of `min_prim` exceeding this, or
    /// later primitives.
    pub(crate) min_mask: Vec<u64>,
    /// Cost accumulated along the path (Σ matching costs).
    pub(crate) cost: Cost,
    /// Optimistic completion bound (`cost` plus the admissible remaining
    /// bound); doubles as the best-first priority.
    pub(crate) bound: f64,
    /// Popcount of `mask`.
    pub(crate) edges: u32,
    /// Primitive of the canonical-ordering cut, if any.
    pub(crate) min_prim: Option<PrimitiveId>,
    /// Matchings subtracted so far, shared with sibling subtrees.
    pub(crate) path: Option<Arc<PathLink>>,
}

impl PoppedNode {
    /// An all-zero node with `stride`-word masks, ready for `pop_into`.
    pub(crate) fn empty(stride: usize) -> Self {
        PoppedNode {
            mask: vec![0; stride],
            min_mask: vec![0; stride],
            cost: Cost(0.0),
            bound: 0.0,
            edges: 0,
            min_prim: None,
            path: None,
        }
    }

    /// The search root over `mask` (nothing matched yet).
    pub(crate) fn root(mask: Vec<u64>, edges: u32) -> Self {
        let stride = mask.len();
        PoppedNode {
            mask,
            min_mask: vec![0; stride],
            cost: Cost(0.0),
            bound: 0.0,
            edges,
            min_prim: None,
            path: None,
        }
    }
}

/// `a <= b` on equal-cardinality edge masks, equivalent to `<=` on their
/// sorted `Vec<Edge>` forms: scanning words from low to high, the lowest
/// differing bit decides — if it belongs to `a`, then `a`'s edge list has
/// the smaller edge at the first differing position.
///
/// The equivalence needs equal popcounts (with unequal counts a strict
/// subset could order either way); the engine only compares images of the
/// *same* primitive, which always cover the same number of edges.
pub(crate) fn mask_le(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(
        a.iter().map(|w| w.count_ones()).sum::<u32>(),
        b.iter().map(|w| w.count_ones()).sum::<u32>(),
        "mask_le compares equal-cardinality edge sets only"
    );
    for (&x, &y) in a.iter().zip(b) {
        let d = x ^ y;
        if d != 0 {
            let low = d & d.wrapping_neg();
            return x & low != 0;
        }
    }
    true
}

/// Is every bit of `sub` also set in `sup`? (Edge-set inclusion; the
/// root-image filter's test for "this image survives in the remaining
/// graph".)
pub(crate) fn mask_subset(sub: &[u64], sup: &[u64]) -> bool {
    sub.iter().zip(sup).all(|(&a, &b)| a & !b == 0)
}

/// Scalar metadata of an arena slot (the masks live in the flat rows).
#[derive(Debug, Default)]
struct NodeMeta {
    cost: Cost,
    bound: f64,
    edges: u32,
    /// Monotone insertion index stamped on commit — the deterministic
    /// oldest-first tie-break for equal bounds.
    seq: u64,
    min_prim: Option<PrimitiveId>,
    path: Option<Arc<PathLink>>,
}

/// The arena slab plus the open list in one of the pluggable expansion
/// orders. Owns the monotone insertion counter, so seqs are unique and
/// strictly increasing in commit order.
#[derive(Debug)]
pub(crate) struct Frontier {
    /// Words per mask row: `(n * n).div_ceil(64)`.
    stride: usize,
    /// Edge masks, `stride` words per slot.
    masks: Vec<u64>,
    /// Canonical-cut image masks, `stride` words per slot.
    min_masks: Vec<u64>,
    meta: Vec<NodeMeta>,
    /// Recycled slots.
    free: Vec<u32>,
    /// Children staged by the current expansion, in generated order.
    staged: Vec<u32>,
    open: OpenList,
    next_seq: u64,
}

#[derive(Debug)]
enum OpenList {
    /// LIFO stack — staged children enter in reverse so the first child
    /// pops first, reproducing recursive DFS preorder exactly.
    Dfs(Vec<u32>),
    /// Min-heap on `(bound, seq)` — smallest optimistic bound first.
    Best(BinaryHeap<Reverse<HeapEntry>>),
}

impl Frontier {
    /// An empty frontier for masks of `stride` words.
    pub(crate) fn new(order: SearchOrder, stride: usize) -> Self {
        Frontier {
            stride,
            masks: Vec::new(),
            min_masks: Vec::new(),
            meta: Vec::new(),
            free: Vec::new(),
            staged: Vec::new(),
            open: match order {
                SearchOrder::DepthFirst => OpenList::Dfs(Vec::new()),
                SearchOrder::BestFirst => OpenList::Best(BinaryHeap::new()),
            },
            next_seq: 0,
        }
    }

    /// Number of open (committed, unpopped) nodes.
    pub(crate) fn len(&self) -> usize {
        match &self.open {
            OpenList::Dfs(stack) => stack.len(),
            OpenList::Best(heap) => heap.len(),
        }
    }

    /// Grabs a slot off the free list or grows the slab by one row.
    fn alloc(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        let slot = u32::try_from(self.meta.len()).expect("frontier slab exceeds u32 slots");
        self.masks.resize(self.masks.len() + self.stride, 0);
        self.min_masks.resize(self.min_masks.len() + self.stride, 0);
        self.meta.push(NodeMeta::default());
        slot
    }

    /// Adds an owned node (the root, or a packet from another worker)
    /// directly to the open list, stamping its insertion index.
    pub(crate) fn push_node(&mut self, node: PoppedNode) {
        debug_assert_eq!(node.mask.len(), self.stride);
        let slot = self.alloc();
        let base = slot as usize * self.stride;
        self.masks[base..base + self.stride].copy_from_slice(&node.mask);
        self.min_masks[base..base + self.stride].copy_from_slice(&node.min_mask);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.meta[slot as usize] = NodeMeta {
            cost: node.cost,
            bound: node.bound,
            edges: node.edges,
            seq,
            min_prim: node.min_prim,
            path: node.path,
        };
        match &mut self.open {
            OpenList::Dfs(stack) => stack.push(slot),
            OpenList::Best(heap) => heap.push(Reverse(HeapEntry {
                bound_bits: node.bound.to_bits(),
                seq,
                slot,
            })),
        }
    }

    /// Stages a child of the node being expanded; staged children enter
    /// the open list together on [`Frontier::commit_staged`].
    pub(crate) fn stage(
        &mut self,
        mask: &[u64],
        min_key: Option<(PrimitiveId, &[u64])>,
        cost: Cost,
        bound: f64,
        edges: u32,
        path: Option<Arc<PathLink>>,
    ) {
        debug_assert_eq!(mask.len(), self.stride);
        let slot = self.alloc();
        let base = slot as usize * self.stride;
        self.masks[base..base + self.stride].copy_from_slice(mask);
        let min_prim = match min_key {
            Some((id, min_mask)) => {
                self.min_masks[base..base + self.stride].copy_from_slice(min_mask);
                Some(id)
            }
            None => {
                self.min_masks[base..base + self.stride].fill(0);
                None
            }
        };
        self.meta[slot as usize] = NodeMeta {
            cost,
            bound,
            edges,
            seq: 0, // stamped on commit
            min_prim,
            path,
        };
        self.staged.push(slot);
    }

    /// Commits the staged children, preserving the order's semantics: for
    /// DFS the batch pops in its generated (canonical) order, and seqs
    /// increase in generated order (earlier child = older).
    pub(crate) fn commit_staged(&mut self) {
        for &slot in &self.staged {
            self.meta[slot as usize].seq = self.next_seq;
            self.next_seq += 1;
        }
        match &mut self.open {
            OpenList::Dfs(stack) => stack.extend(self.staged.drain(..).rev()),
            OpenList::Best(heap) => {
                for slot in self.staged.drain(..) {
                    let m = &self.meta[slot as usize];
                    heap.push(Reverse(HeapEntry {
                        bound_bits: m.bound.to_bits(),
                        seq: m.seq,
                        slot,
                    }));
                }
            }
        }
    }

    /// Pops the next node into `out` (recycling its slot); returns whether
    /// a node was available.
    pub(crate) fn pop_into(&mut self, out: &mut PoppedNode) -> bool {
        let slot = match &mut self.open {
            OpenList::Dfs(stack) => match stack.pop() {
                Some(slot) => slot,
                None => return false,
            },
            OpenList::Best(heap) => match heap.pop() {
                Some(Reverse(entry)) => entry.slot,
                None => return false,
            },
        };
        self.read_and_release(slot, out);
        true
    }

    /// Removes up to `k` open nodes for donation to another worker: DFS
    /// gives away the *bottom* of its stack (the shallowest, largest
    /// subtrees), best-first gives its current best entries.
    pub(crate) fn steal(&mut self, k: usize) -> Vec<PoppedNode> {
        let slots: Vec<u32> = match &mut self.open {
            OpenList::Dfs(stack) => {
                let take = k.min(stack.len());
                stack.drain(..take).collect()
            }
            OpenList::Best(heap) => {
                let mut taken = Vec::new();
                while taken.len() < k {
                    match heap.pop() {
                        Some(Reverse(entry)) => taken.push(entry.slot),
                        None => break,
                    }
                }
                taken
            }
        };
        slots
            .into_iter()
            .map(|slot| {
                let mut node = PoppedNode::empty(self.stride);
                self.read_and_release(slot, &mut node);
                node
            })
            .collect()
    }

    /// Copies a slot into `out` and recycles it (dropping its path Arc).
    fn read_and_release(&mut self, slot: u32, out: &mut PoppedNode) {
        let base = slot as usize * self.stride;
        out.mask.clear();
        out.mask
            .extend_from_slice(&self.masks[base..base + self.stride]);
        out.min_mask.clear();
        out.min_mask
            .extend_from_slice(&self.min_masks[base..base + self.stride]);
        let meta = &mut self.meta[slot as usize];
        out.cost = meta.cost;
        out.bound = meta.bound;
        out.edges = meta.edges;
        out.min_prim = meta.min_prim;
        out.path = meta.path.take();
        self.free.push(slot);
    }
}

/// Heap adapter ordering slots by `(bound, seq)` ascending. Bounds are
/// non-negative finite floats, so their IEEE-754 bit patterns order
/// identically to their values.
#[derive(Debug, PartialEq, Eq)]
struct HeapEntry {
    bound_bits: u64,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    fn rank(&self) -> (u64, u64) {
        (self.bound_bits, self.seq)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{DiGraph, Edge, NodeId};

    const STRIDE: usize = 1;

    fn node(bound: f64, edges: u32) -> PoppedNode {
        PoppedNode {
            mask: vec![edges as u64; STRIDE],
            min_mask: vec![0; STRIDE],
            cost: Cost(0.0),
            bound,
            edges,
            min_prim: None,
            path: None,
        }
    }

    fn stage(f: &mut Frontier, bound: f64, edges: u32) {
        let mask = vec![edges as u64; STRIDE];
        f.stage(&mask, None, Cost(0.0), bound, edges, None);
    }

    fn pop(f: &mut Frontier) -> Option<PoppedNode> {
        let mut out = PoppedNode::empty(STRIDE);
        f.pop_into(&mut out).then_some(out)
    }

    #[test]
    fn dfs_pops_children_in_generated_order() {
        let mut f = Frontier::new(SearchOrder::DepthFirst, STRIDE);
        stage(&mut f, 0.0, 10);
        stage(&mut f, 1.0, 11);
        stage(&mut f, 2.0, 12);
        assert_eq!(f.len(), 0, "staged nodes are not open until commit");
        f.commit_staged();
        assert_eq!(f.len(), 3);
        assert_eq!(pop(&mut f).unwrap().bound, 0.0);
        assert_eq!(pop(&mut f).unwrap().bound, 1.0);
        assert_eq!(pop(&mut f).unwrap().bound, 2.0);
        assert!(pop(&mut f).is_none());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn best_first_pops_lowest_bound_then_oldest() {
        let mut f = Frontier::new(SearchOrder::BestFirst, STRIDE);
        f.push_node(node(5.0, 0)); // seq 0
        f.push_node(node(2.0, 1)); // seq 1
        f.push_node(node(2.0, 2)); // seq 2
        f.push_node(node(9.0, 3)); // seq 3
        assert_eq!(f.len(), 4);
        // Equal bounds break ties oldest-first; `edges` identifies pushes.
        assert_eq!(pop(&mut f).unwrap().edges, 1); // bound 2, oldest
        assert_eq!(pop(&mut f).unwrap().edges, 2); // bound 2, newer
        assert_eq!(pop(&mut f).unwrap().edges, 0); // bound 5
        assert_eq!(pop(&mut f).unwrap().edges, 3); // bound 9
    }

    #[test]
    fn slots_are_recycled_and_contents_survive_reuse() {
        let mut f = Frontier::new(SearchOrder::DepthFirst, STRIDE);
        f.push_node(node(1.0, 7));
        let a = pop(&mut f).unwrap();
        assert_eq!(a.mask, vec![7u64]);
        // The slab should not grow: the freed slot is reused.
        f.push_node(node(2.0, 9));
        assert_eq!(f.meta.len(), 1);
        let b = pop(&mut f).unwrap();
        assert_eq!(b.mask, vec![9u64]);
        assert_eq!(b.bound, 2.0);
    }

    #[test]
    fn dfs_steals_from_the_stack_bottom() {
        let mut f = Frontier::new(SearchOrder::DepthFirst, STRIDE);
        for i in 0..4 {
            f.push_node(node(i as f64, i));
        }
        // Bottom of the stack = oldest pushes = shallowest subtrees.
        let stolen = f.steal(2);
        assert_eq!(
            stolen.iter().map(|n| n.edges).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(f.len(), 2);
        // Remaining pops are unaffected LIFO.
        assert_eq!(pop(&mut f).unwrap().edges, 3);
        assert_eq!(pop(&mut f).unwrap().edges, 2);
    }

    #[test]
    fn min_key_round_trips_through_the_slab() {
        let mut f = Frontier::new(SearchOrder::DepthFirst, STRIDE);
        let mask = vec![0b1100u64];
        let min_mask = vec![0b0011u64];
        f.stage(
            &mask,
            Some((PrimitiveId(3), &min_mask[..])),
            Cost(1.5),
            2.5,
            2,
            None,
        );
        f.commit_staged();
        let n = pop(&mut f).unwrap();
        assert_eq!(n.min_prim, Some(PrimitiveId(3)));
        assert_eq!(n.min_mask, min_mask);
        assert_eq!(n.mask, mask);
        assert_eq!(n.cost, Cost(1.5));
        assert_eq!(n.edges, 2);
    }

    /// Exhaustively checks `mask_le` against the `Vec<Edge>` comparison it
    /// replaces, over every pair of equal-cardinality edge sets of a
    /// 4-vertex graph (the decomposer compares same-primitive images, which
    /// always have equal edge counts).
    #[test]
    fn mask_le_matches_edge_vec_ordering() {
        let n = 4usize;
        let valid: Vec<usize> = (0..n * n).filter(|i| i / n != i % n).collect();
        // All 3-edge subsets of the 12 valid edge slots.
        let mut sets: Vec<(u64, Vec<Edge>)> = Vec::new();
        for a in 0..valid.len() {
            for b in (a + 1)..valid.len() {
                for c in (b + 1)..valid.len() {
                    let bits = [valid[a], valid[b], valid[c]];
                    let mask = bits.iter().fold(0u64, |m, &i| m | (1 << i));
                    let mut g = DiGraph::new(n);
                    for &i in &bits {
                        g.add_edge(NodeId(i / n), NodeId(i % n));
                    }
                    sets.push((mask, g.edge_vec()));
                }
            }
        }
        for (ma, ea) in &sets {
            for (mb, eb) in &sets {
                assert_eq!(
                    mask_le(&[*ma], &[*mb]),
                    ea <= eb,
                    "mask_le diverged on {ea:?} vs {eb:?}"
                );
            }
        }
    }

    #[test]
    fn path_to_vec_is_root_to_leaf() {
        use noc_graph::iso::Mapping;
        let m = |label: &str| Matching {
            primitive: PrimitiveId(0),
            label: label.to_string(),
            mapping: Mapping::new(vec![NodeId(0)]),
            cost: Cost(1.0),
        };
        let root = Arc::new(PathLink {
            matching: m("a"),
            parent: None,
        });
        let leaf = Some(Arc::new(PathLink {
            matching: m("b"),
            parent: Some(root),
        }));
        let labels: Vec<String> = path_to_vec(&leaf).into_iter().map(|m| m.label).collect();
        assert_eq!(labels, vec!["a", "b"]);
        assert!(path_to_vec(&None).is_empty());
    }
}
