//! Parallel driver: workers claim whole subtrees and expand them locally.
//!
//! The old design kept one mutex-guarded frontier that every worker hit on
//! every pop and push, plus a 5 ms condvar-timeout poll to detect
//! termination — so at small thread counts the lock and the wakeup churn
//! cost more than the parallelism won. This driver inverts it:
//!
//! * **Packets, not nodes.** The shared state is an *injector* — a short
//!   deque of [`PoppedNode`] packets. A worker claims one packet and
//!   expands the whole subtree under it on a *private* [`Frontier`],
//!   touching no shared structure on the hot path.
//! * **Donate only to the starving.** Every `SHARE_INTERVAL` pops a worker
//!   checks an idle counter; only if peers are actually parked does it
//!   donate a few nodes from the *bottom* of its DFS stack (the
//!   shallowest, largest subtrees) as new packets. A saturated pool never
//!   pays for balancing.
//! * **Exact termination, no polling.** `outstanding` counts unfinished
//!   packets (queued or claimed; a packet's descendants are covered by the
//!   claim until donated, which increments the count before the packet is
//!   visible). Idle workers park on the condvar with *no timeout*; the
//!   worker that retires the last packet takes the injector lock and
//!   notifies everyone. The count-then-lock-then-notify order makes the
//!   zero transition race-free against a worker between its empty-check
//!   and its park.
//!
//! All workers share the **incumbent** best cost through an atomic
//! ([`SharedSearch::best_cost`](super::SharedSearch)) — global pruning is
//! what keeps the parallel search work-efficient — plus the statistics
//! counters and the **match cache**. The admissible bound and strict
//! (`>=`) pruning guarantee every optimal leaf survives regardless of
//! interleaving, so sequential and parallel searches return identical best
//! costs; among *equal-cost* optima the first installer wins, which is the
//! only scheduling-dependent outcome.
//!
//! On timeout, the active worker salvages its current path as a leaf,
//! retires its packet and abandons its local frontier; parked peers are
//! woken by the retirement cascade and observe the sticky timeout flag.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use super::{consider_leaf, expand, EngineCtx, ExpandScratch, PhaseAcc, SharedSearch};
use crate::decompose::frontier::{Frontier, PoppedNode};

/// Pops between idle-counter checks: long enough that a healthy pool never
/// touches shared state, short enough to refill a starving one quickly.
const SHARE_INTERVAL: u64 = 16;
/// Packets donated per offload.
const MAX_OFFLOAD: usize = 4;
/// Nodes the calling thread expands *before any worker is spawned*: a
/// search that drains within the warmup never pays a single thread-spawn,
/// park, or wake — `threads > 1` on a trivial instance costs nothing.
const SPAWN_WARMUP_POPS: u64 = 64;
/// Minimum private frontier size before a worker donates. A thinner stack
/// means a narrow subtree: donating from it just bounces ownership (and,
/// oversubscribed, a context switch) for a few nodes of work.
const MIN_SHARE_STACK: usize = 8;

/// The shared injector plus signaling and termination bookkeeping.
struct WorkQueue {
    injector: Mutex<VecDeque<PoppedNode>>,
    /// Parked workers wait here; signaled when packets land and — under
    /// the injector lock — when the last packet retires.
    work_ready: Condvar,
    /// Unfinished packets: queued in the injector or claimed by a worker.
    outstanding: AtomicUsize,
    /// Workers currently parked — the donate-only-to-the-starving hint.
    idle: AtomicUsize,
}

/// Runs the search over `threads` workers (callers ensure `threads > 1`).
///
/// The calling thread first drains up to [`SPAWN_WARMUP_POPS`] nodes
/// sequentially; only a search that survives the warmup converts its
/// frontier into packets and spawns the worker pool.
pub(crate) fn run(ctx: &EngineCtx<'_>, shared: &SharedSearch, root: PoppedNode, threads: usize) {
    let mut local = Frontier::new(ctx.config.order, ctx.stride);
    local.push_node(root);
    let mut node = PoppedNode::empty(ctx.stride);
    let mut scratch = ExpandScratch::new(ctx.stride);
    let mut phases = PhaseAcc::new(ctx.profile);
    let mut pops = 0u64;
    while pops < SPAWN_WARMUP_POPS {
        if !local.pop_into(&mut node) {
            phases.flush(shared);
            return; // Drained within the warmup — no thread ever spawned.
        }
        if ctx.config.use_lower_bound && node.bound >= shared.best_cost() {
            shared.branches_pruned.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        shared.nodes_visited.fetch_add(1, Ordering::Relaxed);
        let remaining = ctx.materialize(&node.mask);
        if shared.out_of_time(ctx.deadline) {
            consider_leaf(ctx, shared, &remaining, node.cost, &node.path);
            phases.flush(shared);
            return;
        }
        let found_match = expand(
            ctx,
            shared,
            &node,
            &remaining,
            &mut local,
            &mut scratch,
            &mut phases,
        );
        if !found_match {
            consider_leaf(ctx, shared, &remaining, node.cost, &node.path);
        }
        pops += 1;
    }
    phases.flush(shared);
    let packets = local.steal(local.len());
    if packets.is_empty() {
        return;
    }
    let queue = WorkQueue {
        outstanding: AtomicUsize::new(packets.len()),
        injector: Mutex::new(VecDeque::from(packets)),
        work_ready: Condvar::new(),
        idle: AtomicUsize::new(0),
    };
    // `threads` is a cap, not a mandate: a CPU-bound search gains nothing
    // from more workers than hardware threads — oversubscription only buys
    // context switches and cache refills — so the pool is clamped. A
    // single-worker pool runs on the calling thread, spawn-free.
    let workers = threads.min(rayon::current_num_threads()).max(1);
    if workers == 1 {
        worker(ctx, shared, &queue);
    } else {
        rayon::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| worker(ctx, shared, &queue));
            }
        });
    }
}

fn worker(ctx: &EngineCtx<'_>, shared: &SharedSearch, queue: &WorkQueue) {
    let mut local = Frontier::new(ctx.config.order, ctx.stride);
    let mut node = PoppedNode::empty(ctx.stride);
    let mut scratch = ExpandScratch::new(ctx.stride);
    let mut phases = PhaseAcc::new(ctx.profile);
    while let Some(packet) = next_packet(ctx, shared, queue) {
        local.push_node(packet);
        let mut pops_since_share = 0u64;
        // Drain the claimed subtree on the private frontier.
        loop {
            let t = phases.start();
            let popped = local.pop_into(&mut node);
            phases.frontier(t);
            if !popped {
                break;
            }
            // Re-test the bound at pop time: the incumbent may have
            // improved since this node was generated.
            if ctx.config.use_lower_bound && node.bound >= shared.best_cost() {
                shared.branches_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            shared.nodes_visited.fetch_add(1, Ordering::Relaxed);
            let t = phases.start();
            let remaining = ctx.materialize(&node.mask);
            phases.frontier(t);
            if shared.out_of_time(ctx.deadline) {
                // Salvage this worker's current path and abandon the rest
                // of its subtree; peers observe the sticky timeout flag.
                let t = phases.start();
                consider_leaf(ctx, shared, &remaining, node.cost, &node.path);
                phases.leaf(t);
                finish_packet(queue);
                phases.flush(shared);
                return;
            }
            let found_match = expand(
                ctx,
                shared,
                &node,
                &remaining,
                &mut local,
                &mut scratch,
                &mut phases,
            );
            if !found_match {
                let t = phases.start();
                consider_leaf(ctx, shared, &remaining, node.cost, &node.path);
                phases.leaf(t);
            }
            pops_since_share += 1;
            if pops_since_share >= SHARE_INTERVAL {
                pops_since_share = 0;
                // Donate only from a fat stack, and only to the starving.
                if local.len() >= MIN_SHARE_STACK && queue.idle.load(Ordering::Relaxed) > 0 {
                    offload(queue, &mut local);
                }
            }
        }
        finish_packet(queue);
    }
    phases.flush(shared);
}

/// Claims the next packet, parking (without timeout) while work is still
/// in flight elsewhere. Returns `None` on termination or timeout.
fn next_packet(
    ctx: &EngineCtx<'_>,
    shared: &SharedSearch,
    queue: &WorkQueue,
) -> Option<PoppedNode> {
    let mut injector = queue.injector.lock().expect("injector lock");
    loop {
        if let Some(packet) = injector.pop_front() {
            return Some(packet);
        }
        if queue.outstanding.load(Ordering::Acquire) == 0 || shared.out_of_time(ctx.deadline) {
            // Cascade the wakeup so every parked peer observes it too.
            queue.work_ready.notify_all();
            return None;
        }
        queue.idle.fetch_add(1, Ordering::Relaxed);
        injector = queue.work_ready.wait(injector).expect("injector lock");
        queue.idle.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Moves a few shallow nodes from `local` into the injector as packets.
fn offload(queue: &WorkQueue, local: &mut Frontier) {
    let donated = local.steal(MAX_OFFLOAD.min(local.len() - 1));
    if donated.is_empty() {
        return;
    }
    // Count the packets before they become visible, so `outstanding` never
    // transiently reads zero while work remains.
    queue.outstanding.fetch_add(donated.len(), Ordering::AcqRel);
    let mut injector = queue.injector.lock().expect("injector lock");
    injector.extend(donated);
    drop(injector);
    queue.work_ready.notify_all();
}

/// Retires a claimed packet. The last retirement notifies under the
/// injector lock: a worker that saw `outstanding > 0` either has not yet
/// parked (it holds the lock until `wait`, so the notify waits for it) or
/// is already parked and receives it — no lost-wakeup window.
fn finish_packet(queue: &WorkQueue) {
    if queue.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _injector = queue.injector.lock().expect("injector lock");
        queue.work_ready.notify_all();
    }
}
