//! Parallel driver: worker threads over one shared frontier.
//!
//! The open list is a single mutex-guarded [`Frontier`] (so the configured
//! expansion order — DFS stack or best-first heap — applies globally).
//! `rayon`-scoped workers pop a node, expand it, and push the children
//! back, which balances work at node granularity: no worker can starve
//! while another grinds a dominant subtree, because every generated child
//! is immediately stealable. The mutex is cheap relative to the VF2
//! enumeration each expansion performs; workers finding the frontier
//! empty park on a condvar (signaled whenever children land or the last
//! in-flight node completes) instead of spinning.
//!
//! All workers share:
//!
//! * the **incumbent** best cost through an atomic
//!   ([`SharedSearch::best_cost`](super::SharedSearch)), so a leaf found in
//!   one subtree immediately tightens pruning everywhere — global pruning
//!   is what keeps the parallel search work-efficient;
//! * the **statistics** counters (atomics);
//! * the **match cache**, so a remaining graph enumerated by one worker is
//!   a cache hit for all.
//!
//! Termination uses an outstanding-node count: a popped node stays counted
//! until its children are on the frontier, so a momentarily empty frontier
//! with work still in flight keeps idle workers parked instead of exiting.
//! The admissible bound and strict (`>=`) pruning guarantee every optimal
//! leaf survives regardless of interleaving, so sequential and parallel
//! searches return identical best costs; among *equal-cost* optima the
//! first installer wins, which is the only scheduling-dependent outcome.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use super::{consider_leaf, expand, EngineCtx, SharedSearch};
use crate::decompose::frontier::{Frontier, SearchNode};

/// The shared open list plus the signaling and termination bookkeeping.
struct WorkQueue {
    frontier: Mutex<Frontier>,
    /// Signaled when children land on the frontier or the search winds
    /// down, so parked workers re-check instead of spinning.
    work_ready: Condvar,
    /// Nodes popped but not yet fully expanded, plus nodes on the frontier.
    outstanding: AtomicUsize,
}

/// Runs the search over `threads` workers (callers ensure `threads > 1`).
pub(crate) fn run(ctx: &EngineCtx<'_>, shared: &SharedSearch, root: SearchNode, threads: usize) {
    let queue = WorkQueue {
        frontier: Mutex::new(Frontier::new(ctx.config.order)),
        work_ready: Condvar::new(),
        outstanding: AtomicUsize::new(1),
    };
    queue.frontier.lock().expect("frontier lock").push(root);
    rayon::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| worker(ctx, shared, &queue));
        }
    });
}

fn worker(ctx: &EngineCtx<'_>, shared: &SharedSearch, queue: &WorkQueue) {
    let mut children: Vec<SearchNode> = Vec::new();
    loop {
        let next = {
            let mut frontier = queue.frontier.lock().expect("frontier lock");
            loop {
                if let Some(node) = frontier.pop() {
                    break Some(node);
                }
                if queue.outstanding.load(Ordering::Acquire) == 0
                    || shared.out_of_time(ctx.deadline)
                {
                    break None;
                }
                // In-flight nodes elsewhere may still produce children.
                // The short timeout bounds deadline-detection latency if
                // the final signal races this park.
                frontier = queue
                    .work_ready
                    .wait_timeout(frontier, Duration::from_millis(5))
                    .expect("frontier lock")
                    .0;
            }
        };
        let Some(node) = next else {
            // Termination or timeout: wake any parked peers to observe it.
            queue.work_ready.notify_all();
            return;
        };
        // Re-test the bound at pop time: the incumbent may have improved
        // since this node was generated.
        if ctx.config.use_lower_bound && node.bound >= shared.best_cost() {
            shared.branches_pruned.fetch_add(1, Ordering::Relaxed);
            finish_node(queue);
            continue;
        }
        shared.nodes_visited.fetch_add(1, Ordering::Relaxed);
        if shared.out_of_time(ctx.deadline) {
            // Salvage this worker's current path; peers observe the sticky
            // timeout flag and drain out on their next pop.
            consider_leaf(ctx, shared, &node.remaining, node.cost, &node.path);
            finish_node(queue);
            queue.work_ready.notify_all();
            return;
        }
        children.clear();
        let found_match = expand(ctx, shared, &node, &mut children);
        if !found_match {
            consider_leaf(ctx, shared, &node.remaining, node.cost, &node.path);
        }
        if !children.is_empty() {
            // Count the children before releasing this node so the total
            // never transiently reads zero while work remains.
            queue
                .outstanding
                .fetch_add(children.len(), Ordering::AcqRel);
            queue
                .frontier
                .lock()
                .expect("frontier lock")
                .extend(&mut children);
            queue.work_ready.notify_all();
        }
        finish_node(queue);
    }
}

/// Releases a popped node from the outstanding count, waking parked
/// workers when it was the last one so they can terminate.
fn finish_node(queue: &WorkQueue) {
    if queue.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
        queue.work_ready.notify_all();
    }
}
