//! Cost assignment for matchings and remainder graphs (Section 4.3).
//!
//! The paper's cost function is the communication energy of Equation 1/5:
//! each ACG pair covered by a matching is routed over the primitive's
//! implementation graph along the schedule-derived route, and pays
//! `v(e) * E_bit(route)`. Remainder edges become dedicated point-to-point
//! links and pay the direct-route energy.
//!
//! The COST values printed by the paper's tool (e.g. `COST: 28` for the AES
//! decomposition) correspond to unit volumes and unit link energies — i.e.
//! counting physical links. [`Objective::Links`] reproduces that metric
//! exactly; [`Objective::Energy`] is the physical model the text describes;
//! [`Objective::Hybrid`] adds a per-link energy-equivalent wiring penalty to
//! the energy objective so that wiring pressure influences the search even
//! before the hard constraints bite.

use std::collections::BTreeSet;

use noc_energy::{Energy, EnergyModel};
use noc_floorplan::Placement;
use noc_graph::{iso::Mapping, Acg, DiGraph, NodeId};
use noc_primitives::Primitive;

/// A scalar decomposition cost.
///
/// Under [`Objective::Links`] the unit is *physical links*; under the other
/// objectives it is *joules*. Costs are plain non-negative floats with a
/// helper for pretty printing.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cost(pub f64);

impl Cost {
    /// Positive infinity — the initial "min cost" of the branch-and-bound.
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Cost addition.
    pub fn saturating_add(self, other: Cost) -> Cost {
        Cost(self.0 + other.0)
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == f64::INFINITY {
            write!(f, "inf")
        } else if self.0.fract() == 0.0 && self.0 < 1e15 {
            write!(f, "{}", self.0 as i64)
        } else {
            write!(f, "{:.4e}", self.0)
        }
    }
}

/// What the decomposition minimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Objective {
    /// Total communication energy per application iteration (Equation 5).
    Energy,
    /// Number of physical links in the synthesized architecture — the
    /// unit-volume metric behind the paper's printed COST values.
    Links,
    /// Energy plus `link_equivalent` joules per physical link (an
    /// area/leakage proxy that rewards link sharing).
    Hybrid {
        /// Energy-equivalent charge per physical link.
        link_equivalent: Energy,
    },
}

/// Evaluates matching, remainder and lower-bound costs against a floorplan
/// and technology (Section 4.3: "the positions of the cores are determined
/// by an initial floorplanning stage, \[so\] accurate Ebit values can be
/// imported from the library").
#[derive(Debug, Clone)]
pub struct CostModel {
    energy: EnergyModel,
    placement: Placement,
    objective: Objective,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(energy: EnergyModel, placement: Placement, objective: Objective) -> Self {
        CostModel {
            energy,
            placement,
            objective,
        }
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The floorplan in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The active objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Physical links a matching instantiates: implementation edges mapped
    /// to core pairs, counted once per unordered pair (one bidirectional
    /// link serves both directions).
    pub fn matching_links(&self, primitive: &Primitive, mapping: &Mapping) -> usize {
        let mut links: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for e in primitive.implementation().edges() {
            let a = mapping.target_of(e.src);
            let b = mapping.target_of(e.dst);
            links.insert((a.min(b), a.max(b)));
        }
        links.len()
    }

    /// The energy of a matching per Equation 5: for every covered pair the
    /// schedule route's `E_bit` times the ACG volume.
    pub fn matching_energy(&self, primitive: &Primitive, mapping: &Mapping, acg: &Acg) -> Energy {
        let mut total = Energy::ZERO;
        for ((src, dst), route) in primitive.routes() {
            let a = mapping.target_of(src);
            let b = mapping.target_of(dst);
            let volume = acg.volume(a, b);
            if volume == 0.0 {
                continue;
            }
            let lengths: Vec<f64> = route
                .windows(2)
                .map(|w| {
                    self.placement
                        .distance_mm(mapping.target_of(w[0]), mapping.target_of(w[1]))
                })
                .collect();
            total += self.energy.transfer_energy(volume, &lengths);
        }
        total
    }

    /// The cost of a matching under the active objective.
    pub fn matching_cost(&self, primitive: &Primitive, mapping: &Mapping, acg: &Acg) -> Cost {
        match self.objective {
            Objective::Links => Cost(self.matching_links(primitive, mapping) as f64),
            Objective::Energy => Cost(self.matching_energy(primitive, mapping, acg).joules()),
            Objective::Hybrid { link_equivalent } => Cost(
                self.matching_energy(primitive, mapping, acg).joules()
                    + link_equivalent.joules() * self.matching_links(primitive, mapping) as f64,
            ),
        }
    }

    /// The cost of leaving `remainder` uncovered: every remaining *directed*
    /// edge becomes a dedicated unidirectional point-to-point link
    /// (2 switches + the direct floorplan distance), or simply one link per
    /// directed edge under [`Objective::Links`].
    ///
    /// Counting remainder links per directed edge (while matchings share
    /// bidirectional links) reproduces the paper's printed COST values
    /// exactly: the AES decomposition's `4 * MGG4 + 2 * L4 + 4 remainder
    /// edges` yields `16 + 8 + 4 = 28`.
    pub fn remainder_cost(&self, remainder: &DiGraph, acg: &Acg) -> Cost {
        match self.objective {
            Objective::Links => Cost(remainder.edge_count() as f64),
            Objective::Energy => Cost(self.remainder_energy(remainder, acg).joules()),
            Objective::Hybrid { link_equivalent } => Cost(
                self.remainder_energy(remainder, acg).joules()
                    + link_equivalent.joules() * remainder.edge_count() as f64,
            ),
        }
    }

    fn remainder_energy(&self, remainder: &DiGraph, acg: &Acg) -> Energy {
        remainder
            .edges()
            .map(|e| {
                let d = self.placement.distance_mm(e.src, e.dst);
                self.energy.transfer_energy(acg.volume(e.src, e.dst), &[d])
            })
            .sum()
    }

    /// Admissible lower bound on the cost of decomposing `remaining`
    /// (the "minimum remaining cost" of Figure 3):
    ///
    /// * **Energy**: every edge must travel at least the direct floorplan
    ///   distance through at least two switches, so the direct-link energy
    ///   is a lower bound on any cover (triangle inequality).
    /// * **Links**: every library primitive covers at most
    ///   `pattern_edges / implementation_links` pattern edges per link
    ///   (e.g. 12/4 = 3 for MGG4), so at least
    ///   `⌈edges / best_ratio⌉` links are needed.
    pub fn lower_bound(&self, remaining: &DiGraph, acg: &Acg, best_link_ratio: f64) -> Cost {
        match self.objective {
            Objective::Links => {
                Cost((remaining.edge_count() as f64 / best_link_ratio.max(1.0)).ceil())
            }
            Objective::Energy => Cost(self.energy_lower_bound(remaining, acg).joules()),
            Objective::Hybrid { link_equivalent } => {
                let links = (remaining.edge_count() as f64 / best_link_ratio.max(1.0)).ceil();
                Cost(
                    self.energy_lower_bound(remaining, acg).joules()
                        + link_equivalent.joules() * links,
                )
            }
        }
    }

    fn energy_lower_bound(&self, remaining: &DiGraph, acg: &Acg) -> Energy {
        remaining
            .edges()
            .map(|e| {
                let d = self.placement.distance_mm(e.src, e.dst);
                self.energy
                    .direct_transfer_lower_bound(acg.volume(e.src, e.dst), d)
            })
            .sum()
    }

    /// Precomputes the per-edge term of the energy lower bound, indexed by
    /// edge bit (`src * n + dst`), so the engine can re-bound a shrinking
    /// remaining graph from its edge mask without re-deriving distances and
    /// volumes. Entries for absent edges stay zero.
    pub(crate) fn edge_bound_table(&self, acg: &Acg) -> Vec<Energy> {
        let n = acg.graph().node_count();
        let mut table = vec![Energy::ZERO; n * n];
        for e in acg.graph().edges() {
            let d = self.placement.distance_mm(e.src, e.dst);
            table[e.src.index() * n + e.dst.index()] = self
                .energy
                .direct_transfer_lower_bound(acg.volume(e.src, e.dst), d);
        }
        table
    }

    /// [`CostModel::lower_bound`] evaluated from an edge *mask* (bit
    /// `src * n + dst`) and its popcount instead of a materialized graph.
    /// Summation walks set bits ascending — the same order as
    /// [`DiGraph::edges`] — with the same fold, so the result is bitwise
    /// identical to the graph-based bound.
    pub(crate) fn lower_bound_masked(
        &self,
        mask: &[u64],
        edge_count: usize,
        table: &[Energy],
        best_link_ratio: f64,
    ) -> Cost {
        match self.objective {
            Objective::Links => Cost((edge_count as f64 / best_link_ratio.max(1.0)).ceil()),
            Objective::Energy => Cost(masked_energy(mask, table).joules()),
            Objective::Hybrid { link_equivalent } => {
                let links = (edge_count as f64 / best_link_ratio.max(1.0)).ceil();
                Cost(masked_energy(mask, table).joules() + link_equivalent.joules() * links)
            }
        }
    }
}

/// Sums `table` over the set bits of `mask`, lowest bit first.
fn masked_energy(mask: &[u64], table: &[Energy]) -> Energy {
    let mut total = Energy::ZERO;
    for (w, &word) in mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            total += table[w * 64 + b];
            bits &= bits - 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_energy::TechnologyProfile;
    use noc_graph::iso::Vf2;
    use noc_graph::EdgeDemand;

    fn model(objective: Objective) -> CostModel {
        CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            Placement::grid(2, 2, 2.0, 2.0),
            objective,
        )
    }

    fn gossip_acg() -> Acg {
        Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0))
    }

    fn identity_mapping(n: usize) -> Mapping {
        Mapping::new((0..n).map(NodeId).collect())
    }

    #[test]
    fn mgg4_has_four_links() {
        let m = model(Objective::Links);
        let p = Primitive::gossip(4);
        let cost = m.matching_cost(&p, &identity_mapping(4), &gossip_acg());
        assert_eq!(cost.value(), 4.0); // the paper's per-MGG4 link count
    }

    #[test]
    fn loop_has_four_links_and_star_three() {
        let m = model(Objective::Links);
        assert_eq!(
            m.matching_links(&Primitive::ring(4), &identity_mapping(4)),
            4
        );
        assert_eq!(
            m.matching_links(&Primitive::broadcast(3), &identity_mapping(4)),
            3
        );
    }

    #[test]
    fn matching_energy_matches_hand_computation() {
        let m = model(Objective::Energy);
        let p = Primitive::gossip(4);
        let acg = gossip_acg();
        // Pairs: 8 single-hop routes + 4 two-hop routes (through the MGG4
        // cycle). Volume 8 bits each. Grid 2x2 with 2 mm pitch.
        let e = m.matching_energy(&p, &identity_mapping(4), &acg);
        // Recompute directly from the routes.
        let mut expect = Energy::ZERO;
        for ((s, d), route) in p.routes() {
            let lengths: Vec<f64> = route
                .windows(2)
                .map(|w| m.placement().distance_mm(w[0], w[1]))
                .collect();
            let _ = (s, d);
            expect += m.energy_model().transfer_energy(8.0, &lengths);
        }
        assert!((e.joules() - expect.joules()).abs() < 1e-20);
        assert!(e > Energy::ZERO);
    }

    #[test]
    fn mapped_matching_uses_mapped_distances() {
        // Place 4 cores on a line; map the gossip onto cores (0, 1, 2, 3)
        // vs (0, 1, 3, 2): costs differ because link lengths differ.
        let placement = Placement::new(
            vec![(0.5, 0.5), (1.5, 0.5), (2.5, 0.5), (5.5, 0.5)],
            6.0,
            1.0,
        );
        let cm = CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            placement,
            Objective::Energy,
        );
        let acg = gossip_acg();
        let p = Primitive::gossip(4);
        let a = cm.matching_cost(&p, &identity_mapping(4), &acg);
        let b = cm.matching_cost(
            &p,
            &Mapping::new(vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]),
            &acg,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn remainder_cost_counts_directed_links() {
        let m = model(Objective::Links);
        let acg = gossip_acg();
        // A 2-cycle: 2 directed edges = 2 dedicated unidirectional links
        // (matching the paper's remainder accounting).
        let rem = DiGraph::from_edges(4, [(0, 1), (1, 0)]).unwrap();
        assert_eq!(m.remainder_cost(&rem, &acg).value(), 2.0);
        // Two independent edges: also 2 links.
        let rem2 = DiGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(m.remainder_cost(&rem2, &acg).value(), 2.0);
    }

    #[test]
    fn remainder_energy_is_direct_links() {
        let m = model(Objective::Energy);
        let acg = gossip_acg();
        let rem = DiGraph::from_edges(4, [(0, 3)]).unwrap();
        let d = m.placement().distance_mm(NodeId(0), NodeId(3));
        let expect = m.energy_model().transfer_energy(8.0, &[d]);
        assert!((m.remainder_cost(&rem, &acg).value() - expect.joules()).abs() < 1e-20);
    }

    #[test]
    fn energy_lower_bound_is_admissible() {
        // LB of the full gossip ACG must not exceed the true cost of the
        // MGG4 cover.
        let m = model(Objective::Energy);
        let acg = gossip_acg();
        let p = Primitive::gossip(4);
        let lb = m.lower_bound(acg.graph(), &acg, 3.0);
        let real = m.matching_cost(&p, &identity_mapping(4), &acg);
        assert!(lb.value() <= real.value());
    }

    #[test]
    fn links_lower_bound_uses_compression_ratio() {
        let m = model(Objective::Links);
        let acg = gossip_acg();
        // 12 edges, best ratio 3 (MGG4): at least 4 links.
        let lb = m.lower_bound(acg.graph(), &acg, 3.0);
        assert_eq!(lb.value(), 4.0);
        // Ratio below 1 clamps to 1.
        let lb1 = m.lower_bound(acg.graph(), &acg, 0.5);
        assert_eq!(lb1.value(), 12.0);
    }

    #[test]
    fn hybrid_adds_link_charge() {
        let link_eq = Energy::from_picojoules(100.0);
        let m = model(Objective::Hybrid {
            link_equivalent: link_eq,
        });
        let acg = gossip_acg();
        let p = Primitive::gossip(4);
        let energy_only = model(Objective::Energy).matching_cost(&p, &identity_mapping(4), &acg);
        let hybrid = m.matching_cost(&p, &identity_mapping(4), &acg);
        assert!((hybrid.value() - energy_only.value() - 4.0 * link_eq.joules()).abs() < 1e-20);
    }

    #[test]
    fn all_distinct_gossip_images_cost_the_same_on_symmetric_placement() {
        // On a symmetric 2x2 grid every MGG4 embedding of the same 4 cores
        // costs the same under Links.
        let m = model(Objective::Links);
        let acg = gossip_acg();
        let p = Primitive::gossip(4);
        let images = Vf2::new(p.representation(), acg.graph()).distinct_images();
        assert!(!images.matches.is_empty());
        for mapping in &images.matches {
            assert_eq!(m.matching_cost(&p, mapping, &acg).value(), 4.0);
        }
    }

    #[test]
    fn masked_lower_bound_is_bitwise_identical_to_graph_bound() {
        // The engine swaps the graph-walking bound for the mask-walking one
        // mid-search, so they must agree to the last bit, not within an
        // epsilon — otherwise pruning (strict >=) could diverge.
        let acg = gossip_acg();
        for objective in [
            Objective::Links,
            Objective::Energy,
            Objective::Hybrid {
                link_equivalent: Energy::from_picojoules(100.0),
            },
        ] {
            let m = model(objective);
            let table = m.edge_bound_table(&acg);
            // Remaining graphs of shrinking size, as the search would see.
            let mut remaining = acg.graph().clone();
            loop {
                let mask = remaining.edge_bitset();
                let via_graph = m.lower_bound(&remaining, &acg, 3.0);
                let via_mask =
                    m.lower_bound_masked(mask.words(), remaining.edge_count(), &table, 3.0);
                assert_eq!(via_graph.value().to_bits(), via_mask.value().to_bits());
                let Some(e) = remaining.edges().next() else {
                    break;
                };
                remaining.remove_edge(e.src, e.dst);
            }
        }
    }

    #[test]
    fn cost_display() {
        assert_eq!(Cost(28.0).to_string(), "28");
        assert_eq!(Cost::INFINITY.to_string(), "inf");
        assert_eq!(Cost(1.5e-9).to_string(), "1.5000e-9");
    }
}
