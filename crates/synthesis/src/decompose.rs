//! The depth-first branch-and-bound decomposition algorithm
//! (Sections 4.1–4.4, Figures 2 and 3 of the paper).
//!
//! The search walks a tree whose nodes are *remaining graphs*. At each node
//! it enumerates, for every library primitive in order, the distinct
//! subgraph images of the primitive's representation graph in the remaining
//! graph (a *matching*, Definition 4), subtracts the image, and recurses.
//! When no primitive matches, the node is a leaf: the decomposition is the
//! path of matchings plus the remainder graph, and its cost is
//! `Σ C(M_i) + C(R)` (Equation 3). A branch is cut when its current cost
//! plus an admissible bound on completing the remaining graph cannot beat
//! the best decomposition found so far.
//!
//! Because every matching subtracts its image, the images along a path are
//! pairwise edge-disjoint — so a decomposition is a *set* of matchings, and
//! any permutation of the same set reaches the same leaf. The search
//! therefore enumerates matchings in canonical (primitive id, image) order
//! only, which prunes the `k!` permutations of each `k`-matching
//! decomposition without losing any leaf (an exact reduction the paper's
//! Figure 3 pseudo-code leaves implicit).

use std::time::{Duration, Instant};

use noc_graph::{iso::Vf2, ops, Acg, DiGraph, Edge};
use noc_primitives::{CommLibrary, PrimitiveId};

use crate::{
    constraints,
    cost::{Cost, CostModel},
    Architecture,
};

/// One matched primitive instance on the decomposition path.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Which library primitive matched.
    pub primitive: PrimitiveId,
    /// The primitive's label (`MGG4`, `G123`, …).
    pub label: String,
    /// The injective map from primitive vertices to ACG cores.
    pub mapping: noc_graph::iso::Mapping,
    /// This matching's cost contribution (Equation 5).
    pub cost: Cost,
}

impl Matching {
    /// The ACG edges this matching covers (the image of the representation
    /// graph), sorted.
    pub fn covered_edges(&self, library: &CommLibrary) -> Vec<Edge> {
        self.mapping
            .image_edges(library.get(self.primitive).representation())
    }

    /// Formats the matching one line in the paper's output style:
    /// `1: MGG4,       Mapping: (1 1), (2 5), (3 9), (4 13)`.
    pub fn paper_line(&self) -> String {
        format!(
            "{}: {},\tMapping: {}",
            self.primitive.paper_id(),
            self.label,
            self.mapping.paper_format()
        )
    }
}

/// A complete decomposition: the root-to-leaf matchings plus the remainder
/// graph that matched nothing (Equation 2: `G = Σ M_i(L_i) + R`).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Matchings in the order they were subtracted.
    pub matchings: Vec<Matching>,
    /// The remaining graph (full vertex set, uncovered edges).
    pub remainder: DiGraph,
    /// Cost assigned to the remainder (dedicated point-to-point links).
    pub remainder_cost: Cost,
    /// Total decomposition cost (Equation 3).
    pub total_cost: Cost,
}

impl Decomposition {
    /// Renders the decomposition in the paper's output format, e.g. for the
    /// AES ACG:
    ///
    /// ```text
    /// COST: 28
    /// 1: MGG4,    Mapping: (1 1), (2 5), (3 9), (4 13)
    ///  1: MGG4,    Mapping: (1 2), (2 6), (3 10), (4 14)
    ///  ...
    ///        0: Remaining Graph: 9 -> 11, 10 -> 12, 11 -> 9, 12 -> 10
    /// ```
    ///
    /// Vertices are printed 1-based as in the paper.
    pub fn paper_report(&self) -> String {
        let mut out = format!("COST: {}\n", self.total_cost);
        for (depth, m) in self.matchings.iter().enumerate() {
            out.push_str(&" ".repeat(depth));
            out.push_str(&m.paper_line());
            out.push('\n');
        }
        out.push_str(&" ".repeat(self.matchings.len()));
        if self.remainder.is_edgeless() {
            out.push_str("0: Remaining Graph: (empty)\n");
        } else {
            let edges: Vec<String> = self
                .remainder
                .edges()
                .map(|e| format!("{} -> {}", e.src.index() + 1, e.dst.index() + 1))
                .collect();
            out.push_str(&format!("0: Remaining Graph: {}\n", edges.join(", ")));
        }
        out
    }

    /// Returns the multiset of covered + remaining edges; equals the input
    /// ACG edge set for any valid decomposition (tested property).
    pub fn all_edges(&self, library: &CommLibrary) -> Vec<Edge> {
        let mut edges: Vec<Edge> = self
            .matchings
            .iter()
            .flat_map(|m| m.covered_edges(library))
            .chain(self.remainder.edges())
            .collect();
        edges.sort();
        edges
    }
}

/// Search statistics for the runtime figures (Figures 4a/4b).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Search-tree nodes expanded.
    pub nodes_visited: u64,
    /// Leaves (complete decompositions) evaluated.
    pub leaves_evaluated: u64,
    /// Branches cut by the lower bound.
    pub branches_pruned: u64,
    /// Leaves rejected by the Section 4.2 constraints.
    pub constraint_rejections: u64,
    /// `true` if the search hit the configured timeout.
    pub timed_out: bool,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// Outcome of a decomposition run.
#[derive(Debug, Clone)]
pub struct DecompositionOutcome {
    /// The minimum-cost legal decomposition, if any leaf was reached.
    pub best: Option<Decomposition>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Tuning knobs for the branch-and-bound.
#[derive(Debug, Clone)]
pub struct DecomposerConfig {
    /// Abort the search after this wall-clock budget, keeping the best
    /// decomposition found so far (the paper's suggested time-out for
    /// graphs with no library match, Section 5.1).
    pub timeout: Option<Duration>,
    /// Consider at most this many distinct images per primitive per node
    /// (`None` = all).
    ///
    /// The default is `Some(1)`, which is what the paper's Figure 3
    /// pseudo-code does: each tree node branches once per *library graph*
    /// ("if **a** subgraph S in I is isomorphic to G"), subtracting the
    /// first isomorphism found — see the three-way branching of Figure 2.
    /// `None` explores every distinct image (an exhaustive extension;
    /// slower but can find cheaper covers on irregular graphs).
    pub max_matches_per_level: Option<usize>,
    /// Cap on raw VF2 enumerations per call, bounding worst-case matcher
    /// work before image deduplication.
    pub max_raw_matches: usize,
    /// Enable the admissible lower bound of Figure 3 (disable to measure
    /// its effect — see the `ablation_bounding` bench).
    pub use_lower_bound: bool,
    /// Reject leaves violating link-bandwidth or bisection constraints
    /// (Section 4.2) using the cost model's technology profile.
    pub check_constraints: bool,
    /// Enumerate matchings in canonical (primitive, image) order only,
    /// collapsing the `k!` permutations of each matching set (an exact
    /// reduction — see the module docs). Disable only to verify exactness
    /// or measure the blowup.
    pub use_canonical_ordering: bool,
}

impl Default for DecomposerConfig {
    fn default() -> Self {
        DecomposerConfig {
            timeout: None,
            max_matches_per_level: Some(1),
            max_raw_matches: 100_000,
            use_lower_bound: true,
            check_constraints: false,
            use_canonical_ordering: true,
        }
    }
}

/// The branch-and-bound decomposition engine; see the
/// [crate example](crate).
#[derive(Debug)]
pub struct Decomposer<'a> {
    acg: &'a Acg,
    library: &'a CommLibrary,
    cost_model: CostModel,
    config: DecomposerConfig,
}

impl<'a> Decomposer<'a> {
    /// Creates a decomposer with the default configuration.
    pub fn new(acg: &'a Acg, library: &'a CommLibrary, cost_model: CostModel) -> Self {
        Decomposer {
            acg,
            library,
            cost_model,
            config: DecomposerConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn config(mut self, config: DecomposerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a search timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.config.timeout = Some(timeout);
        self
    }

    /// Runs the search and returns the best legal decomposition plus
    /// statistics.
    pub fn run(&self) -> DecompositionOutcome {
        let start = Instant::now();
        let deadline = self.config.timeout.map(|t| start + t);
        // Best link-compression ratio in the library, for the Links bound.
        let best_ratio = self
            .library
            .iter()
            .map(|(_, p)| {
                let links: std::collections::BTreeSet<(usize, usize)> = p
                    .implementation()
                    .edges()
                    .map(|e| {
                        let (a, b) = (e.src.index(), e.dst.index());
                        (a.min(b), a.max(b))
                    })
                    .collect();
                p.representation().edge_count() as f64 / links.len().max(1) as f64
            })
            .fold(1.0_f64, f64::max);

        let mut state = SearchState {
            acg: self.acg,
            library: self.library,
            cost_model: &self.cost_model,
            config: &self.config,
            deadline,
            best_ratio,
            best: None,
            best_cost: Cost::INFINITY,
            stats: SearchStats::default(),
            path: Vec::new(),
        };
        state.search(self.acg.graph().clone(), Cost(0.0), None);
        let mut stats = state.stats;
        stats.elapsed = start.elapsed();
        DecompositionOutcome {
            best: state.best,
            stats,
        }
    }
}

struct SearchState<'a> {
    acg: &'a Acg,
    library: &'a CommLibrary,
    cost_model: &'a CostModel,
    config: &'a DecomposerConfig,
    deadline: Option<Instant>,
    best_ratio: f64,
    best: Option<Decomposition>,
    best_cost: Cost,
    stats: SearchStats,
    path: Vec<Matching>,
}

impl SearchState<'_> {
    fn out_of_time(&mut self) -> bool {
        if self.stats.timed_out {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.stats.timed_out = true;
                return true;
            }
        }
        false
    }

    fn search(
        &mut self,
        remaining: DiGraph,
        current: Cost,
        min_key: Option<(PrimitiveId, Vec<Edge>)>,
    ) {
        self.stats.nodes_visited += 1;
        if self.out_of_time() {
            // Salvage: evaluate the current path as if it were a leaf so a
            // timed-out search still returns something useful.
            self.consider_leaf(&remaining, current);
            return;
        }

        // `found_match` must reflect matches of ANY primitive (even those
        // below the canonical ordering cut): a node is a leaf only if the
        // remaining graph genuinely matches nothing (Figure 3 semantics).
        let mut found_match = false;
        for (id, primitive) in self.library.iter() {
            let pattern = primitive.representation();
            if pattern.edge_count() > remaining.edge_count()
                || pattern.node_count() > remaining.node_count()
            {
                continue;
            }
            // Canonical ordering: only expand matchings whose
            // (primitive, image) key exceeds the parent's. Primitives below
            // the cut still count toward leaf detection (existence only).
            let below_cut = min_key.as_ref().is_some_and(|(min_id, _)| id < *min_id);
            if below_cut {
                if !found_match {
                    let mut probe = Vf2::new(pattern, &remaining);
                    if let Some(d) = self.deadline {
                        probe = probe.deadline(d);
                    }
                    if probe.exists() {
                        found_match = true;
                    }
                }
                continue;
            }
            let mut matcher =
                Vf2::new(pattern, &remaining).max_matches(self.config.max_raw_matches);
            if let Some(d) = self.deadline {
                matcher = matcher.deadline(d);
            }
            let images = matcher.distinct_images();
            if !images.matches.is_empty() {
                found_match = true;
            }
            // Filter by the canonical key first, then apply the per-level
            // cap, so capped searches still advance past the parent's image.
            let eligible = images.matches.into_iter().filter_map(|mapping| {
                let covered = mapping.image_edges(pattern);
                if let Some((min_id, min_image)) = &min_key {
                    if id == *min_id && covered <= *min_image {
                        return None;
                    }
                }
                Some((mapping, covered))
            });
            let considered: Box<dyn Iterator<Item = _>> = match self.config.max_matches_per_level {
                Some(cap) => Box::new(eligible.take(cap)),
                None => Box::new(eligible),
            };
            for (mapping, covered) in considered {
                let m_cost = self.cost_model.matching_cost(primitive, &mapping, self.acg);
                let next = ops::subtract_edges(&remaining, covered.iter().copied())
                    .expect("matched image is a subgraph of the remaining graph");
                let new_cost = current.saturating_add(m_cost);
                if self.config.use_lower_bound {
                    let bound = new_cost.saturating_add(self.cost_model.lower_bound(
                        &next,
                        self.acg,
                        self.best_ratio,
                    ));
                    if bound.value() >= self.best_cost.value() {
                        self.stats.branches_pruned += 1;
                        continue;
                    }
                }
                self.path.push(Matching {
                    primitive: id,
                    label: primitive.label().to_string(),
                    mapping,
                    cost: m_cost,
                });
                let child_key = if self.config.use_canonical_ordering {
                    Some((id, covered))
                } else {
                    None
                };
                self.search(next, new_cost, child_key);
                self.path.pop();
                if self.stats.timed_out {
                    return;
                }
            }
        }

        if !found_match {
            self.consider_leaf(&remaining, current);
        }
    }

    fn consider_leaf(&mut self, remaining: &DiGraph, current: Cost) {
        self.stats.leaves_evaluated += 1;
        let remainder_cost = self.cost_model.remainder_cost(remaining, self.acg);
        let total = current.saturating_add(remainder_cost);
        if total.value() >= self.best_cost.value() {
            return;
        }
        let candidate = Decomposition {
            matchings: self.path.clone(),
            remainder: remaining.clone(),
            remainder_cost,
            total_cost: total,
        };
        if self.config.check_constraints {
            let arch = Architecture::synthesize(
                self.acg,
                self.library,
                &candidate,
                self.cost_model.placement().clone(),
            );
            let report =
                constraints::check(&arch, self.acg, self.cost_model.energy_model().profile());
            if !report.is_satisfied() {
                self.stats.constraint_rejections += 1;
                return;
            }
        }
        self.best_cost = total;
        self.best = Some(candidate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;
    use noc_energy::{EnergyModel, TechnologyProfile};
    use noc_floorplan::Placement;
    use noc_graph::{EdgeDemand, NodeId};

    fn cost_model(objective: Objective, n: usize) -> CostModel {
        let side = (n as f64).sqrt().ceil() as usize;
        CostModel::new(
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
            Placement::grid(side, side.max(1), 2.0, 2.0),
            objective,
        )
    }

    fn decompose(acg: &Acg, lib: &CommLibrary, objective: Objective) -> DecompositionOutcome {
        let cm = cost_model(objective, acg.core_count());
        Decomposer::new(acg, lib, cm).run()
    }

    #[test]
    fn pure_gossip_acg_is_one_mgg4() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "MGG4");
        assert!(best.remainder.is_edgeless());
        assert_eq!(best.total_cost.value(), 4.0); // 4 physical links
        assert!(!out.stats.timed_out);
    }

    #[test]
    fn loop_acg_decomposes_to_l4() {
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "L4");
        assert!(best.remainder.is_edgeless());
    }

    #[test]
    fn broadcast_acg_decomposes_to_g123() {
        let acg = Acg::from_graph_uniform(DiGraph::out_star(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "G123");
    }

    #[test]
    fn unmatched_graph_is_all_remainder() {
        // Two antiparallel edges: no standard primitive matches.
        let acg = Acg::builder(4).volume(0, 1, 1.0).volume(1, 0, 1.0).build();
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert!(best.matchings.is_empty());
        assert_eq!(best.remainder.edge_count(), 2);
        assert_eq!(best.total_cost.value(), 2.0); // two dedicated directed links
    }

    #[test]
    fn edges_are_conserved() {
        // Gossip + a stray edge.
        let mut g = DiGraph::complete(4);
        let mut big = DiGraph::new(6);
        for e in g.edges() {
            big.add_edge(e.src, e.dst);
        }
        big.add_edge(NodeId(4), NodeId(5));
        g = big;
        let acg = Acg::from_graph_uniform(g.clone(), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let best = out.best.unwrap();
        assert_eq!(best.all_edges(&lib), g.edge_vec());
    }

    #[test]
    fn cost_totals_are_consistent() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        for objective in [Objective::Links, Objective::Energy] {
            let out = decompose(&acg, &lib, objective);
            let best = out.best.unwrap();
            let sum: f64 = best.matchings.iter().map(|m| m.cost.value()).sum::<f64>()
                + best.remainder_cost.value();
            assert!((best.total_cost.value() - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn bound_prunes_without_changing_result() {
        let mut g = DiGraph::complete(4);
        // Add a loop on the other 4 vertices.
        let mut big = DiGraph::new(8);
        for e in g.edges() {
            big.add_edge(e.src, e.dst);
        }
        for i in 4..8 {
            big.add_edge(NodeId(i), NodeId(4 + (i + 1) % 4));
        }
        g = big;
        let acg = Acg::from_graph_uniform(g, EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::standard();
        let cm = cost_model(Objective::Links, 8);

        let with = Decomposer::new(&acg, &lib, cm.clone()).run();
        let without = Decomposer::new(&acg, &lib, cm)
            .config(DecomposerConfig {
                use_lower_bound: false,
                ..DecomposerConfig::default()
            })
            .run();
        let (b1, b2) = (with.best.unwrap(), without.best.unwrap());
        assert_eq!(b1.total_cost.value(), b2.total_cost.value());
        assert!(with.stats.nodes_visited <= without.stats.nodes_visited);
        assert!(with.stats.branches_pruned > 0);
    }

    #[test]
    fn timeout_returns_partial_result() {
        // A dense graph with an immediate timeout still yields a (possibly
        // all-remainder) decomposition.
        let acg = Acg::from_graph_uniform(DiGraph::complete(8), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::extended();
        let cm = cost_model(Objective::Links, 8);
        let out = Decomposer::new(&acg, &lib, cm)
            .timeout(Duration::from_millis(0))
            .run();
        assert!(out.stats.timed_out);
        assert!(out.best.is_some());
    }

    #[test]
    fn match_cap_limits_branching() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(5), EdgeDemand::from_volume(1.0));
        let lib = CommLibrary::standard();
        let cm = cost_model(Objective::Links, 5);
        let capped = Decomposer::new(&acg, &lib, cm.clone()).run(); // default cap = 1
        let full = Decomposer::new(&acg, &lib, cm)
            .config(DecomposerConfig {
                max_matches_per_level: None,
                ..DecomposerConfig::default()
            })
            .run();
        assert!(capped.stats.nodes_visited <= full.stats.nodes_visited);
        assert!(capped.best.is_some());
    }

    #[test]
    fn paper_report_format() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Links);
        let report = out.best.unwrap().paper_report();
        assert!(report.starts_with("COST: 4\n"));
        assert!(report.contains("1: MGG4,\tMapping: (1 1), (2 2), (3 3), (4 4)"));
        assert!(report.contains("0: Remaining Graph: (empty)"));
    }

    #[test]
    fn deterministic_across_runs() {
        let acg = Acg::from_graph_uniform(DiGraph::complete(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let a = decompose(&acg, &lib, Objective::Links).best.unwrap();
        let b = decompose(&acg, &lib, Objective::Links).best.unwrap();
        assert_eq!(a.paper_report(), b.paper_report());
    }

    #[test]
    fn energy_objective_prefers_short_links() {
        // A 4-cycle placed on a line: the L4 loop must route the wrap-around
        // edge across the whole chip, while the remainder solution uses the
        // same direct links. Under Energy the costs tie, so the decomposition
        // with L4 still wins no extra cost... verify the search simply
        // completes and produces a finite cost.
        let acg = Acg::from_graph_uniform(DiGraph::cycle(4), EdgeDemand::from_volume(8.0));
        let lib = CommLibrary::standard();
        let out = decompose(&acg, &lib, Objective::Energy);
        let best = out.best.unwrap();
        assert!(best.total_cost.value().is_finite());
        assert!(best.total_cost.value() > 0.0);
    }
}
