//! Design-constraint checks (Section 4.2 of the paper).
//!
//! A decomposition is *legal* only if
//!
//! 1. **link bandwidth**: for every implementation channel, the aggregated
//!    bandwidth of the ACG pairs mapped onto it does not exceed the
//!    channel capacity the technology provides ("the bandwidth of `e_13^I`
//!    should be larger than the sum of the bandwidth requirements of
//!    `e_13` and `e_14`"), and
//! 2. **bisection width**: the synthesized topology's bisection link count
//!    fits the wiring budget ("comparing the bisection bandwidth of the
//!    customized architecture with the maximum bisection bandwidth the
//!    particular technology provides").

use noc_energy::TechnologyProfile;
use noc_graph::{Acg, NodeId};

use crate::Architecture;

/// A single constraint violation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConstraintViolation {
    /// A channel's aggregated bandwidth demand exceeds its capacity.
    LinkBandwidthExceeded {
        /// The overloaded channel.
        link: (NodeId, NodeId),
        /// Aggregated demand, bits/s.
        required_bps: f64,
        /// Technology capacity, bits/s.
        capacity_bps: f64,
    },
    /// The topology needs more bisection links than the technology allows.
    BisectionExceeded {
        /// Links crossing the balanced bisection.
        required_links: usize,
        /// Technology budget.
        budget_links: usize,
    },
}

impl std::fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintViolation::LinkBandwidthExceeded {
                link,
                required_bps,
                capacity_bps,
            } => write!(
                f,
                "channel {} -> {} needs {:.3e} bps but capacity is {:.3e} bps",
                link.0, link.1, required_bps, capacity_bps
            ),
            ConstraintViolation::BisectionExceeded {
                required_links,
                budget_links,
            } => write!(
                f,
                "bisection needs {required_links} links but the technology allows {budget_links}"
            ),
        }
    }
}

/// The result of checking an architecture against a technology profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintReport {
    violations: Vec<ConstraintViolation>,
}

impl ConstraintReport {
    /// `true` if every constraint holds.
    pub fn is_satisfied(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found (empty when satisfied).
    pub fn violations(&self) -> &[ConstraintViolation] {
        &self.violations
    }
}

impl std::fmt::Display for ConstraintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_satisfied() {
            write!(f, "all constraints satisfied")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Checks the Section 4.2 constraints of `arch` against `profile`.
///
/// The ACG is accepted for interface symmetry with future checks (its
/// demands are already aggregated onto the architecture's links).
pub fn check(arch: &Architecture, _acg: &Acg, profile: &TechnologyProfile) -> ConstraintReport {
    let mut violations = Vec::new();
    let capacity = profile.link_bandwidth_bps();
    for (link, info) in arch.links() {
        if info.aggregated_bandwidth_bps > capacity {
            violations.push(ConstraintViolation::LinkBandwidthExceeded {
                link,
                required_bps: info.aggregated_bandwidth_bps,
                capacity_bps: capacity,
            });
        }
    }
    let stats = arch.stats();
    if stats.bisection_links > profile.max_bisection_links() {
        violations.push(ConstraintViolation::BisectionExceeded {
            required_links: stats.bisection_links,
            budget_links: profile.max_bisection_links(),
        });
    }
    ConstraintReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Decomposer, Objective};
    use noc_energy::{Energy, EnergyModel, TechnologyProfile};
    use noc_floorplan::Placement;
    use noc_graph::DiGraph;
    use noc_primitives::CommLibrary;

    fn arch_for(acg: &Acg, profile: &TechnologyProfile) -> Architecture {
        let lib = CommLibrary::standard();
        let placement = Placement::grid(2, 2, 2.0, 2.0);
        let cm = CostModel::new(
            EnergyModel::new(profile.clone()),
            placement.clone(),
            Objective::Links,
        );
        let d = Decomposer::new(acg, &lib, cm).run().best.unwrap();
        Architecture::synthesize(acg, &lib, &d, placement)
    }

    #[test]
    fn modest_demands_satisfy_constraints() {
        let profile = TechnologyProfile::cmos_180nm();
        let acg =
            Acg::from_graph_uniform(DiGraph::complete(4), noc_graph::EdgeDemand::new(8.0, 1.0e6));
        let arch = arch_for(&acg, &profile);
        let report = check(&arch, &acg, &profile);
        assert!(report.is_satisfied(), "{report}");
        assert_eq!(report.to_string(), "all constraints satisfied");
    }

    #[test]
    fn oversubscribed_link_is_flagged() {
        let profile = TechnologyProfile::builder("tiny-links")
            .link_bandwidth_bps(1.0e6)
            .build();
        // Gossip with 1 Mbps per pair: two-hop routes aggregate > 1 Mbps on
        // shared channels.
        let acg =
            Acg::from_graph_uniform(DiGraph::complete(4), noc_graph::EdgeDemand::new(8.0, 1.0e6));
        let arch = arch_for(&acg, &profile);
        let report = check(&arch, &acg, &profile);
        assert!(!report.is_satisfied());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, ConstraintViolation::LinkBandwidthExceeded { .. })));
        assert!(report.to_string().contains("violation"));
    }

    #[test]
    fn starved_bisection_is_flagged() {
        let profile = TechnologyProfile::builder("one-wire")
            .max_bisection_links(1)
            .build();
        let acg =
            Acg::from_graph_uniform(DiGraph::complete(4), noc_graph::EdgeDemand::new(8.0, 1.0));
        let arch = arch_for(&acg, &profile);
        let report = check(&arch, &acg, &profile);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, ConstraintViolation::BisectionExceeded { .. })));
    }

    #[test]
    fn decomposer_constraint_mode_rejects_infeasible_leaves() {
        // With a 1-link bisection budget the full point-to-point remainder
        // is infeasible, and so is the MGG4; the search should reject the
        // infeasible leaves and report constraint rejections.
        let profile = TechnologyProfile::builder("one-wire")
            .max_bisection_links(1)
            .build();
        let acg =
            Acg::from_graph_uniform(DiGraph::complete(4), noc_graph::EdgeDemand::new(8.0, 1.0));
        let lib = CommLibrary::standard();
        let placement = Placement::grid(2, 2, 2.0, 2.0);
        let cm = CostModel::new(EnergyModel::new(profile), placement, Objective::Links);
        let out = Decomposer::new(&acg, &lib, cm)
            .config(crate::DecomposerConfig {
                check_constraints: true,
                ..Default::default()
            })
            .run();
        assert!(out.stats.constraint_rejections > 0);
        assert!(out.best.is_none(), "no legal decomposition should exist");
    }

    #[test]
    fn hybrid_objective_is_usable_with_constraints() {
        let profile = TechnologyProfile::cmos_180nm();
        let acg =
            Acg::from_graph_uniform(DiGraph::complete(4), noc_graph::EdgeDemand::new(8.0, 1.0e6));
        let lib = CommLibrary::standard();
        let placement = Placement::grid(2, 2, 2.0, 2.0);
        let cm = CostModel::new(
            EnergyModel::new(profile),
            placement,
            Objective::Hybrid {
                link_equivalent: Energy::from_picojoules(500.0),
            },
        );
        let out = Decomposer::new(&acg, &lib, cm)
            .config(crate::DecomposerConfig {
                check_constraints: true,
                ..Default::default()
            })
            .run();
        let best = out.best.unwrap();
        // The hybrid link charge makes the 4-link MGG4 strictly cheaper
        // than 12 dedicated links (wiring term dominates at 500 pJ/link).
        assert_eq!(best.matchings.len(), 1);
        assert_eq!(best.matchings[0].label, "MGG4");
    }
}
