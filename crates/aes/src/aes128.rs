//! Reference AES-128 (FIPS-197).
//!
//! The state is stored column-major as in the standard: `state[4*c + r]`
//! is the byte at row `r`, column `c`.

use crate::gf::gf_mul;

/// The AES S-box, generated at first use from the GF(2^8) inverse plus the
/// affine transform (no hard-coded table, so the math is exercised).
fn sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        // Multiplicative inverses via brute force (256^2 is trivial).
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gf_mul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut table = [0u8; 256];
        for (x, entry) in table.iter_mut().enumerate() {
            let b = inv[x];
            let mut y = 0u8;
            for i in 0..8 {
                let bit = (b >> i) & 1
                    ^ (b >> ((i + 4) % 8)) & 1
                    ^ (b >> ((i + 5) % 8)) & 1
                    ^ (b >> ((i + 6) % 8)) & 1
                    ^ (b >> ((i + 7) % 8)) & 1
                    ^ (0x63 >> i) & 1;
                y |= bit << i;
            }
            *entry = y;
        }
        table
    })
}

fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let s = sbox();
        let mut table = [0u8; 256];
        for (x, &y) in s.iter().enumerate() {
            table[y as usize] = x as u8;
        }
        table
    })
}

/// Applies the S-box to one byte (used by the distributed engine too).
pub(crate) fn sub_byte(b: u8) -> u8 {
    sbox()[b as usize]
}

/// AES-128 with a precomputed key schedule.
///
/// # Examples
///
/// ```
/// use noc_aes::Aes128;
/// let key = [0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c];
/// let aes = Aes128::new(&key);
/// let pt = [0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///           0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34];
/// let ct = aes.encrypt_block(&pt);
/// assert_eq!(ct[0], 0x39); // FIPS-197 Appendix B
/// assert_eq!(aes.decrypt_block(&ct), pt);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Number of rounds in AES-128.
    pub const ROUNDS: usize = 10;

    /// Expands the cipher key into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut words = [[0u8; 4]; 44];
        for (i, w) in words.iter_mut().take(4).enumerate() {
            w.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = words[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sub_byte(*b);
                }
                temp[0] ^= rcon;
                rcon = crate::gf::xtime(rcon);
            }
            for j in 0..4 {
                words[i][j] = words[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&words[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// The expanded round keys (state layout, column-major).
    pub fn round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut s = *plaintext;
        add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..=Self::ROUNDS {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            if round != Self::ROUNDS {
                mix_columns(&mut s);
            }
            add_round_key(&mut s, &self.round_keys[round]);
        }
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let mut s = *ciphertext;
        add_round_key(&mut s, &self.round_keys[Self::ROUNDS]);
        for round in (1..=Self::ROUNDS).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, &self.round_keys[round - 1]);
            if round != 1 {
                inv_mix_columns(&mut s);
            }
        }
        s
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in s.iter_mut().zip(rk) {
        *b ^= k;
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = sub_byte(*b);
    }
}

fn inv_sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = inv_sbox()[*b as usize];
    }
}

/// Row `r` rotates left by `r`: `s'[r][c] = s[r][(c + r) % 4]`.
fn shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row: [u8; 4] = [s[r], s[4 + r], s[8 + r], s[12 + r]];
        for c in 0..4 {
            s[4 * c + r] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row: [u8; 4] = [s[r], s[4 + r], s[8 + r], s[12 + r]];
        for c in 0..4 {
            s[4 * c + r] = row[(c + 4 - r) % 4];
        }
    }
}

/// Multiplies each state column by the MDS matrix `{02,03,01,01}`.
pub(crate) fn mix_column(col: [u8; 4]) -> [u8; 4] {
    let [a0, a1, a2, a3] = col;
    [
        gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3,
        a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3,
        a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3),
        gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2),
    ]
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        let out = mix_column(col);
        s[4 * c..4 * c + 4].copy_from_slice(&out);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let a = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9);
        s[4 * c + 1] = gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13);
        s[4 * c + 2] = gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11);
        s[4 * c + 3] = gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_values() {
        assert_eq!(sub_byte(0x00), 0x63);
        assert_eq!(sub_byte(0x53), 0xed);
        assert_eq!(sub_byte(0xff), 0x16);
    }

    #[test]
    fn inv_sbox_inverts() {
        for x in 0..=255u8 {
            assert_eq!(inv_sbox()[sub_byte(x) as usize], x);
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
        assert_eq!(aes.decrypt_block(&expect), pt);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
        assert_eq!(aes.decrypt_block(&expect), pt);
    }

    #[test]
    fn key_schedule_first_and_last_words() {
        // FIPS-197 Appendix A expansion of the Appendix B key.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(&aes.round_keys()[0], &key);
        // w[43] = b6 63 0c a6 (last word of last round key).
        let last = &aes.round_keys()[10];
        assert_eq!(&last[12..16], &[0xb6, 0x63, 0x0c, 0xa6]);
    }

    #[test]
    fn encrypt_decrypt_round_trip_random_ish() {
        let aes = Aes128::new(&[7u8; 16]);
        let mut block = [0u8; 16];
        for trial in 0..64u8 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_mul(31).wrapping_add(trial ^ i as u8);
            }
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn shift_rows_and_inverse() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        // Row 0 untouched: bytes 0, 4, 8, 12.
        assert_eq!(s[0], orig[0]);
        assert_eq!(s[4], orig[4]);
        // Row 1 rotated left by 1: s'[r=1][c=0] = s[1][1] = byte 5.
        assert_eq!(s[1], orig[5]);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_matches_fips_example() {
        // FIPS-197/The Design of Rijndael worked column.
        assert_eq!(
            mix_column([0xdb, 0x13, 0x53, 0x45]),
            [0x8e, 0x4d, 0xa1, 0xbc]
        );
        assert_eq!(
            mix_column([0xf2, 0x0a, 0x22, 0x5c]),
            [0x9f, 0xdc, 0x58, 0x9d]
        );
    }
}
