//! The 16-node byte-sliced distributed AES engine.
//!
//! Node `4r + c` (row-major, matching the paper's Figure 6a numbering where
//! vertices 1, 5, 9, 13 form the first column in 1-based labels) owns the
//! state byte at row `r`, column `c`. The engine executes AES-128 by
//! message passing:
//!
//! * **SubBytes / AddRoundKey** — local, no traffic;
//! * **ShiftRows** — each row `r > 0` circularly shifts its bytes by `r`
//!   positions: one byte travels along each row edge (the loop patterns of
//!   the ACG);
//! * **MixColumns** — every node needs the other three bytes of its column
//!   (the all-to-all gossip patterns within columns).
//!
//! The engine is *real*: it computes the ciphertext through these messages
//! and is validated against the [`crate::Aes128`] reference. As a side
//! effect it emits a [`BlockTrace`] — the phase-structured traffic replayed
//! by the simulator to measure cycles/block on a given architecture
//! (phases are barrier-synchronized: a round's MixColumns messages cannot
//! leave before its ShiftRows bytes arrived).

use noc_graph::NodeId;

use crate::aes128::{mix_column, sub_byte};
use crate::Aes128;

/// One byte-carrying message between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bits (always 8 for AES bytes).
    pub bits: u64,
}

/// A barrier-synchronized communication phase plus the local computation
/// cycles that precede it.
#[derive(Debug, Clone, PartialEq)]
pub struct CommPhase {
    /// Human-readable phase name (`round3/shiftrows`, …).
    pub name: String,
    /// Local computation cycles every node spends before the messages of
    /// this phase are released.
    pub compute_cycles: u64,
    /// The messages exchanged in this phase.
    pub messages: Vec<Message>,
}

/// The communication trace of one encrypted block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTrace {
    /// Phases in execution order.
    pub phases: Vec<CommPhase>,
    /// Local cycles after the last communication (final round tail).
    pub trailing_compute_cycles: u64,
}

impl BlockTrace {
    /// Total messages in the block.
    pub fn message_count(&self) -> usize {
        self.phases.iter().map(|p| p.messages.len()).sum()
    }

    /// Total communicated volume in bits.
    pub fn total_bits(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.messages)
            .map(|m| m.bits)
            .sum()
    }

    /// Total local computation cycles (lower bound on the block makespan
    /// even with an infinitely fast network).
    pub fn compute_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.compute_cycles).sum::<u64>() + self.trailing_compute_cycles
    }
}

/// Result of a distributed encryption: the ciphertext and the traffic it
/// generated.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRun {
    /// The encrypted block (FIPS column-major layout).
    pub ciphertext: [u8; 16],
    /// The communication trace.
    pub trace: BlockTrace,
}

/// Per-phase local computation budget, in cycles.
///
/// Defaults model a small byte-serial node: 2 cycles for a SubBytes lookup,
/// 4 cycles for the GF(2^8) MAC chain of MixColumns, 1 cycle for the
/// AddRoundKey XOR. These put the simulated mesh prototype in the same
/// cycles/block regime as the paper's FPGA measurement (271 cycles/block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeModel {
    /// Cycles per SubBytes application.
    pub sub_bytes: u64,
    /// Cycles per MixColumns combination.
    pub mix_columns: u64,
    /// Cycles per AddRoundKey XOR.
    pub add_round_key: u64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            sub_bytes: 2,
            mix_columns: 4,
            add_round_key: 1,
        }
    }
}

/// The distributed AES-128 engine; see the module-level documentation.
#[derive(Debug, Clone)]
pub struct DistributedAes {
    aes: Aes128,
    compute: ComputeModel,
}

/// Node id for state position (row, col).
fn node(row: usize, col: usize) -> NodeId {
    NodeId(4 * row + col)
}

impl DistributedAes {
    /// Creates an engine with the default compute model.
    pub fn new(key: &[u8; 16]) -> Self {
        DistributedAes {
            aes: Aes128::new(key),
            compute: ComputeModel::default(),
        }
    }

    /// Overrides the per-phase computation budget.
    #[must_use]
    pub fn with_compute_model(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }

    /// Encrypts one block by message passing, returning the ciphertext and
    /// the communication trace.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> DistributedRun {
        // bytes[node] = byte owned by node (row r, col c) = fips[4c + r].
        let mut bytes = [0u8; 16];
        for r in 0..4 {
            for c in 0..4 {
                bytes[node(r, c).index()] = plaintext[4 * c + r];
            }
        }
        let rk = self.aes.round_keys();
        let mut phases: Vec<CommPhase> = Vec::new();

        let key_byte = |round: usize, r: usize, c: usize| rk[round][4 * c + r];

        // Initial AddRoundKey (local).
        for r in 0..4 {
            for c in 0..4 {
                bytes[node(r, c).index()] ^= key_byte(0, r, c);
            }
        }
        let mut pending_compute = self.compute.add_round_key;

        for round in 1..=Aes128::ROUNDS {
            // SubBytes (local).
            for b in bytes.iter_mut() {
                *b = sub_byte(*b);
            }
            pending_compute += self.compute.sub_bytes;

            // ShiftRows: receiver (r, c) takes the byte of (r, (c + r) % 4).
            let mut messages = Vec::new();
            let snapshot = bytes;
            for r in 1..4 {
                for c in 0..4 {
                    let src = node(r, (c + r) % 4);
                    let dst = node(r, c);
                    bytes[dst.index()] = snapshot[src.index()];
                    messages.push(Message { src, dst, bits: 8 });
                }
            }
            phases.push(CommPhase {
                name: format!("round{round}/shiftrows"),
                compute_cycles: pending_compute,
                messages,
            });
            pending_compute = 0;

            if round != Aes128::ROUNDS {
                // MixColumns: each node gathers its column then combines.
                let mut messages = Vec::new();
                let snapshot = bytes;
                for c in 0..4 {
                    let col = [
                        snapshot[node(0, c).index()],
                        snapshot[node(1, c).index()],
                        snapshot[node(2, c).index()],
                        snapshot[node(3, c).index()],
                    ];
                    let mixed = mix_column(col);
                    for r in 0..4 {
                        for r_src in 0..4 {
                            if r_src != r {
                                messages.push(Message {
                                    src: node(r_src, c),
                                    dst: node(r, c),
                                    bits: 8,
                                });
                            }
                        }
                        bytes[node(r, c).index()] = mixed[r];
                    }
                }
                phases.push(CommPhase {
                    name: format!("round{round}/mixcolumns"),
                    compute_cycles: self.compute.mix_columns,
                    messages,
                });
            }

            // AddRoundKey (local).
            for r in 0..4 {
                for c in 0..4 {
                    bytes[node(r, c).index()] ^= key_byte(round, r, c);
                }
            }
            pending_compute += self.compute.add_round_key;
        }

        // Collect the ciphertext back into FIPS layout.
        let mut ciphertext = [0u8; 16];
        for r in 0..4 {
            for c in 0..4 {
                ciphertext[4 * c + r] = bytes[node(r, c).index()];
            }
        }
        DistributedRun {
            ciphertext,
            trace: BlockTrace {
                phases,
                trailing_compute_cycles: pending_compute,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_matches_reference_on_fips_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let reference = Aes128::new(&key).encrypt_block(&pt);
        let run = DistributedAes::new(&key).encrypt_block(&pt);
        assert_eq!(run.ciphertext, reference);
    }

    #[test]
    fn distributed_matches_reference_on_many_blocks() {
        let key = [0x5a; 16];
        let aes = Aes128::new(&key);
        let engine = DistributedAes::new(&key);
        let mut block = [0u8; 16];
        for trial in 0..32u8 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(trial).wrapping_add(trial);
            }
            assert_eq!(
                engine.encrypt_block(&block).ciphertext,
                aes.encrypt_block(&block),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn trace_phase_structure() {
        let run = DistributedAes::new(&[0; 16]).encrypt_block(&[0; 16]);
        let trace = &run.trace;
        // 10 ShiftRows + 9 MixColumns phases.
        assert_eq!(trace.phases.len(), 19);
        let sr: Vec<_> = trace
            .phases
            .iter()
            .filter(|p| p.name.ends_with("shiftrows"))
            .collect();
        let mc: Vec<_> = trace
            .phases
            .iter()
            .filter(|p| p.name.ends_with("mixcolumns"))
            .collect();
        assert_eq!(sr.len(), 10);
        assert_eq!(mc.len(), 9);
        // Each ShiftRows phase moves 12 bytes (rows 1-3); each MixColumns
        // phase 48 (4 columns x 12 ordered pairs).
        for p in sr {
            assert_eq!(p.messages.len(), 12);
        }
        for p in mc {
            assert_eq!(p.messages.len(), 48);
        }
        // Total: 10 * 12 + 9 * 48 = 552 messages, one byte each.
        assert_eq!(trace.message_count(), 552);
        assert_eq!(trace.total_bits(), 552 * 8);
        assert!(trace.compute_cycles() > 0);
    }

    #[test]
    fn shiftrows_messages_stay_in_rows() {
        let run = DistributedAes::new(&[1; 16]).encrypt_block(&[2; 16]);
        for phase in run
            .trace
            .phases
            .iter()
            .filter(|p| p.name.ends_with("shiftrows"))
        {
            for m in &phase.messages {
                assert_eq!(m.src.index() / 4, m.dst.index() / 4, "row traffic only");
                assert_ne!(m.src, m.dst);
            }
        }
    }

    #[test]
    fn mixcolumns_messages_stay_in_columns() {
        let run = DistributedAes::new(&[1; 16]).encrypt_block(&[2; 16]);
        for phase in run
            .trace
            .phases
            .iter()
            .filter(|p| p.name.ends_with("mixcolumns"))
        {
            for m in &phase.messages {
                assert_eq!(m.src.index() % 4, m.dst.index() % 4, "column traffic only");
                assert_ne!(m.src, m.dst);
            }
        }
    }

    #[test]
    fn compute_model_scales_compute_cycles() {
        let small = DistributedAes::new(&[0; 16]).encrypt_block(&[0; 16]);
        let big = DistributedAes::new(&[0; 16])
            .with_compute_model(ComputeModel {
                sub_bytes: 20,
                mix_columns: 40,
                add_round_key: 10,
            })
            .encrypt_block(&[0; 16]);
        assert_eq!(small.ciphertext, big.ciphertext);
        assert!(big.trace.compute_cycles() > small.trace.compute_cycles());
    }
}
