//! AES-128 and its 16-node distributed implementation (Section 5.2 of the
//! paper).
//!
//! The paper "distributed the AES operations to a network of 16 identical
//! nodes each processing one byte of the input block and obtained the
//! application characterization graph shown in Figure 6a". This crate
//! provides all three pieces:
//!
//! * [`Aes128`] — a complete FIPS-197 reference implementation (key
//!   schedule, encryption, decryption), validated against the standard test
//!   vectors;
//! * [`DistributedAes`] — the byte-sliced engine: node `4r + c` owns state
//!   byte `(row r, column c)`; ShiftRows moves bytes along rows (loops),
//!   MixColumns gathers all four bytes of each column (gossip). The engine
//!   really computes AES by message passing and is checked against the
//!   reference;
//! * [`aes_acg`] — the Figure 6a ACG with per-block communication volumes,
//!   the input to the synthesis flow;
//! * [`BlockTrace`] — the phase-structured traffic trace a simulator
//!   replays to measure cycles/block, latency and energy on a given
//!   architecture.
//!
//! # Example
//!
//! ```
//! use noc_aes::{Aes128, DistributedAes};
//!
//! let key = [0u8; 16];
//! let block = [0x42u8; 16];
//! let reference = Aes128::new(&key).encrypt_block(&block);
//! let distributed = DistributedAes::new(&key).encrypt_block(&block);
//! assert_eq!(reference, distributed.ciphertext);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod acg;
mod aes128;
mod distributed;
mod gf;

pub use acg::{aes_acg, AES_NODES};
pub use aes128::Aes128;
pub use distributed::{
    BlockTrace, CommPhase, ComputeModel, DistributedAes, DistributedRun, Message,
};
pub use gf::{gf_mul, xtime};
