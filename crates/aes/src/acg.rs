//! The AES application characterization graph (Figure 6a of the paper).

use noc_graph::Acg;

use crate::Aes128;

/// Number of nodes in the distributed AES implementation.
pub const AES_NODES: usize = 16;

/// Builds the 16-node AES ACG with per-block communication volumes.
///
/// Structure (node `4r + c` holds state byte row `r`, column `c`):
///
/// * every column `{c, c+4, c+8, c+12}` communicates all-to-all
///   (MixColumns — the gossip patterns the decomposition maps to `MGG4`),
///   with `9 rounds x 8 bits` per edge;
/// * every row `r > 0` forms a circular shift by `r` (ShiftRows), with
///   `10 rounds x 8 bits` per edge. Rows shifted by 1 and 3 are directed
///   4-cycles (the `L4` loops); the row shifted by 2 is a pair of 2-cycles
///   that matches no library primitive — exactly the remainder graph the
///   paper reports.
///
/// `bandwidth_bps` sets `b(e)` uniformly (pass the per-edge rate implied by
/// your target block rate; 0.0 disables bandwidth constraints).
pub fn aes_acg(bandwidth_bps: f64) -> Acg {
    let node = |r: usize, c: usize| 4 * r + c;
    let mut builder = Acg::builder(AES_NODES);
    for n in 0..AES_NODES {
        builder = builder.name(n, format!("byte-r{}c{}", n / 4, n % 4));
    }
    // MixColumns: gossip within each column, 9 rounds of one byte per edge.
    let mc_volume = (Aes128::ROUNDS - 1) as f64 * 8.0;
    for c in 0..4 {
        for r_src in 0..4 {
            for r_dst in 0..4 {
                if r_src != r_dst {
                    builder =
                        builder.demand(node(r_src, c), node(r_dst, c), mc_volume, bandwidth_bps);
                }
            }
        }
    }
    // ShiftRows: receiver (r, c) takes the byte of (r, (c + r) % 4), 10
    // rounds of one byte per edge.
    let sr_volume = Aes128::ROUNDS as f64 * 8.0;
    for r in 1..4 {
        for c in 0..4 {
            let src = node(r, (c + r) % 4);
            let dst = node(r, c);
            builder = builder.demand(src, dst, sr_volume, bandwidth_bps);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::NodeId;

    #[test]
    fn acg_shape_matches_figure_6a() {
        let acg = aes_acg(0.0);
        assert_eq!(acg.core_count(), 16);
        // 4 columns x 12 gossip edges + 3 rows x 4 shift edges = 60.
        assert_eq!(acg.graph().edge_count(), 60);
    }

    #[test]
    fn first_column_is_all_to_all() {
        let acg = aes_acg(0.0);
        // The paper: "vertices 1, 5, 9, 13 of the input graph, which is the
        // first column" (1-based) = 0, 4, 8, 12 here.
        for &a in &[0usize, 4, 8, 12] {
            for &b in &[0usize, 4, 8, 12] {
                if a != b {
                    assert!(
                        acg.graph().has_edge(NodeId(a), NodeId(b)),
                        "missing column edge {a} -> {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_two_is_a_directed_cycle_row_three_is_two_cycles() {
        let acg = aes_acg(0.0);
        // Row 1 (nodes 4..8): shift by 1 => a 4-cycle.
        let row1: Vec<usize> = (4..8).collect();
        let out_deg: usize = row1
            .iter()
            .map(|&v| {
                acg.graph()
                    .successors(NodeId(v))
                    .filter(|s| (4..8).contains(&s.index()))
                    .count()
            })
            .sum();
        assert_eq!(out_deg, 4);
        // Row 2 (nodes 8..12): shift by 2 => two antiparallel pairs
        // (8 <-> 10, 9 <-> 11): the remainder graph of the paper's output.
        assert!(acg.graph().has_edge(NodeId(8), NodeId(10)));
        assert!(acg.graph().has_edge(NodeId(10), NodeId(8)));
        assert!(acg.graph().has_edge(NodeId(9), NodeId(11)));
        assert!(acg.graph().has_edge(NodeId(11), NodeId(9)));
        assert!(!acg.graph().has_edge(NodeId(8), NodeId(9)));
    }

    #[test]
    fn volumes_match_round_counts() {
        let acg = aes_acg(0.0);
        // Column edge: 9 rounds x 8 bits.
        assert_eq!(acg.volume(NodeId(0), NodeId(4)), 72.0);
        // Row edge (row 1: receiver 4 takes from node(1, (0+1)%4) = 5).
        assert_eq!(acg.volume(NodeId(5), NodeId(4)), 80.0);
        // Total: 48 * 72 + 12 * 80 = 4416 bits/block.
        assert_eq!(acg.total_volume(), 4416.0);
    }

    #[test]
    fn bandwidth_is_uniform_when_set() {
        let acg = aes_acg(2.5e6);
        for (e, d) in acg.demands() {
            assert_eq!(d.bandwidth, 2.5e6, "edge {e}");
        }
    }

    #[test]
    fn acg_matches_engine_traffic() {
        // Every message the engine sends must be an ACG edge, and total
        // bits must match the ACG volumes.
        let acg = aes_acg(0.0);
        let run = crate::DistributedAes::new(&[3; 16]).encrypt_block(&[9; 16]);
        let mut per_edge: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        for phase in &run.trace.phases {
            for m in &phase.messages {
                assert!(
                    acg.graph().has_edge(m.src, m.dst),
                    "engine message {} -> {} not in ACG",
                    m.src,
                    m.dst
                );
                *per_edge.entry((m.src.index(), m.dst.index())).or_default() += m.bits;
            }
        }
        for (e, d) in acg.demands() {
            assert_eq!(
                per_edge[&(e.src.index(), e.dst.index())] as f64,
                d.volume,
                "volume mismatch on {e}"
            );
        }
    }
}
