//! GF(2^8) arithmetic over the AES polynomial `x^8 + x^4 + x^3 + x + 1`.

/// Multiplies by `x` in GF(2^8) (the `xtime` operation of FIPS-197).
///
/// # Examples
///
/// ```
/// use noc_aes::xtime;
/// assert_eq!(xtime(0x57), 0xae);
/// assert_eq!(xtime(0xae), 0x47); // overflow reduces by 0x1b
/// ```
pub fn xtime(a: u8) -> u8 {
    let shifted = (a as u16) << 1;
    let reduced = if a & 0x80 != 0 {
        shifted ^ 0x11b
    } else {
        shifted
    };
    reduced as u8
}

/// Full GF(2^8) multiplication (Russian-peasant style).
///
/// # Examples
///
/// ```
/// use noc_aes::gf_mul;
/// assert_eq!(gf_mul(0x57, 0x13), 0xfe); // FIPS-197 worked example
/// ```
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_matches_fips_worked_example() {
        // FIPS-197 Sec. 4.2.1: 57 * 02 = ae, * 04 = 47, * 08 = 8e, * 10 = 07.
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x47), 0x8e);
        assert_eq!(xtime(0x8e), 0x07);
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
            assert_eq!(gf_mul(1, a), a);
        }
    }

    #[test]
    fn mul_is_commutative() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
            }
        }
    }

    #[test]
    fn mul_distributes_over_xor() {
        for a in (0..=255u8).step_by(13) {
            for b in (0..=255u8).step_by(17) {
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
    }

    #[test]
    fn fips_worked_product() {
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }
}
