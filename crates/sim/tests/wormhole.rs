//! Wormhole-switching and flow-control corner cases: output locking,
//! backpressure with tiny buffers, virtual-channel isolation and
//! deadlock detection on an intentionally cyclic route set.

use std::collections::BTreeMap;

use noc_energy::{EnergyModel, TechnologyProfile};
use noc_graph::{DiGraph, NodeId};
use noc_sim::{NocModel, SimConfig, SimError, Simulator, TrafficEvent};

fn energy() -> EnergyModel {
    EnergyModel::new(TechnologyProfile::cmos_180nm())
}

/// A 4-node line 0 -> 1 -> 2 -> 3 with routes from 0 and 1 to 3.
fn line_model() -> NocModel {
    let topo = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    let mut routes = BTreeMap::new();
    routes.insert(
        (NodeId(0), NodeId(3)),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
    );
    routes.insert(
        (NodeId(1), NodeId(3)),
        vec![NodeId(1), NodeId(2), NodeId(3)],
    );
    routes.insert((NodeId(0), NodeId(1)), vec![NodeId(0), NodeId(1)]);
    NocModel::from_parts("line", topo, routes, BTreeMap::new(), 1.0)
}

#[test]
fn wormhole_does_not_interleave_packets_on_a_channel() {
    // Two long packets from 0 and 1 both cross channel (2, 3). With
    // wormhole locking, the second must wait for the first's tail, so the
    // makespan is at least the serialized flit count across that channel.
    let model = line_model();
    let events = vec![
        TrafficEvent::new(0, NodeId(0), NodeId(3), 256), // 9 flits
        TrafficEvent::new(0, NodeId(1), NodeId(3), 256), // 9 flits
    ];
    let report = Simulator::new(&model, SimConfig::default(), energy())
        .run(events)
        .unwrap();
    assert_eq!(report.packets_delivered, 2);
    // 18 flits must serialize through the shared (2,3) channel.
    assert!(
        report.total_cycles >= 18,
        "makespan {} too small for serialized wormholes",
        report.total_cycles
    );
}

#[test]
fn single_flit_buffers_still_deliver() {
    // Backpressure extreme: 1-flit buffers over a 3-hop route.
    let model = line_model();
    let cfg = SimConfig {
        buffer_flits: 1,
        ..SimConfig::default()
    };
    let events = vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 512)];
    let report = Simulator::new(&model, cfg, energy()).run(events).unwrap();
    assert_eq!(report.packets_delivered, 1);
    assert_eq!(report.flits_injected, report.flits_ejected);
    // With deeper buffers the same traffic cannot be slower.
    let deep = Simulator::new(&model, SimConfig::default(), energy())
        .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 512)])
        .unwrap();
    assert!(deep.total_cycles <= report.total_cycles);
}

#[test]
fn mesh_saturation_still_drains() {
    // Offer far more traffic than the bisection supports; everything must
    // still drain (XY routing is deadlock-free).
    let model = NocModel::mesh(4, 4, 1.0);
    let events = noc_sim::traffic::bernoulli(16, 200, 0.8, 64, 11);
    let offered = events.len();
    let report = Simulator::new(&model, SimConfig::default(), energy())
        .run(events)
        .unwrap();
    assert_eq!(report.packets_delivered, offered);
    assert_eq!(report.flits_injected, report.flits_ejected);
}

#[test]
fn cyclic_routes_on_single_vc_deadlock_and_are_detected() {
    // A ring of 4 nodes where every route goes two hops clockwise: the
    // channel dependency graph is a cycle. With 1 VC and tiny buffers,
    // simultaneous long packets deadlock; the simulator must detect it
    // rather than hang.
    let topo = DiGraph::cycle(4);
    let mut routes = BTreeMap::new();
    for s in 0..4usize {
        let d = (s + 2) % 4;
        routes.insert(
            (NodeId(s), NodeId(d)),
            vec![NodeId(s), NodeId((s + 1) % 4), NodeId(d)],
        );
    }
    let model = NocModel::from_parts("cyclic", topo, routes, BTreeMap::new(), 1.0);
    let cfg = SimConfig {
        buffer_flits: 1,
        stall_cycles: 200,
        ..SimConfig::default()
    };
    let events: Vec<TrafficEvent> = (0..4)
        .map(|s| TrafficEvent::new(0, NodeId(s), NodeId((s + 2) % 4), 512))
        .collect();
    let err = Simulator::new(&model, cfg, energy())
        .run(events)
        .unwrap_err();
    assert!(
        matches!(err, SimError::Deadlock { .. }),
        "expected deadlock detection, got {err:?}"
    );
}

#[test]
fn synthesized_architectures_do_not_deadlock() {
    // The same cyclic-communication application, but routed through the
    // synthesis flow (which assigns VCs from the channel ordering): the
    // traffic must complete.
    use noc_graph::{Acg, EdgeDemand};
    use noc_synthesis::{Architecture, CostModel, Decomposer, Objective};

    let mut g = DiGraph::new(4);
    for s in 0..4usize {
        g.add_edge(NodeId(s), NodeId((s + 2) % 4));
    }
    let acg = Acg::from_graph_uniform(g, EdgeDemand::from_volume(512.0));
    let lib = noc_primitives::CommLibrary::standard();
    let placement = noc_floorplan::Placement::grid(2, 2, 1.0, 1.0);
    let cm = CostModel::new(energy(), placement.clone(), Objective::Links);
    let d = Decomposer::new(&acg, &lib, cm).run().best.unwrap();
    let arch = Architecture::synthesize(&acg, &lib, &d, placement);
    let model = NocModel::from_architecture(&arch);
    let cfg = SimConfig {
        buffer_flits: 1,
        stall_cycles: 1000,
        ..SimConfig::default()
    };
    let events: Vec<TrafficEvent> = (0..4)
        .map(|s| TrafficEvent::new(0, NodeId(s), NodeId((s + 2) % 4), 512))
        .collect();
    let report = Simulator::new(&model, cfg, energy()).run(events).unwrap();
    assert_eq!(report.packets_delivered, 4);
}

#[test]
fn arbitration_is_fair_under_symmetric_load() {
    // Two sources feed one sink through a shared middle node; round-robin
    // arbitration should give both similar latency.
    let topo = DiGraph::from_edges(4, [(0, 2), (1, 2), (2, 3)]).unwrap();
    let mut routes = BTreeMap::new();
    routes.insert(
        (NodeId(0), NodeId(3)),
        vec![NodeId(0), NodeId(2), NodeId(3)],
    );
    routes.insert(
        (NodeId(1), NodeId(3)),
        vec![NodeId(1), NodeId(2), NodeId(3)],
    );
    let model = NocModel::from_parts("vee", topo, routes, BTreeMap::new(), 1.0);
    // 10 packets from each source.
    let mut events = Vec::new();
    for i in 0..10u64 {
        events.push(TrafficEvent::new(4 * i, NodeId(0), NodeId(3), 64));
        events.push(TrafficEvent::new(4 * i, NodeId(1), NodeId(3), 64));
    }
    let report = Simulator::new(&model, SimConfig::default(), energy())
        .run(events)
        .unwrap();
    assert_eq!(report.packets_delivered, 20);
    // No starvation: the run drains near the offered span.
    assert!(report.total_cycles < 36 + 100);
}

#[test]
fn idle_energy_accumulates_on_fpga_profile() {
    let model = NocModel::mesh(2, 2, 1.0);
    let fpga = EnergyModel::new(TechnologyProfile::fpga_virtex2());
    let report = Simulator::new(&model, SimConfig::default(), fpga)
        .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
        .unwrap();
    assert!(report.energy.idle.joules() > 0.0);
    // ASIC profile: zero idle.
    let asic = Simulator::new(&model, SimConfig::default(), energy())
        .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
        .unwrap();
    assert_eq!(asic.energy.idle.joules(), 0.0);
}

#[test]
fn mesh_uniform_radix_charges_more_than_degree_sized() {
    // The same topology + routes, charged as a uniform-radix-5 mesh vs
    // degree-sized switches: the uniform design must cost more per flit on
    // the FPGA profile.
    let mesh = NocModel::mesh(3, 3, 1.0);
    let degree_sized = mesh.clone().with_uniform_radix(3); // corner-ish radix
    let fpga = EnergyModel::new(TechnologyProfile::fpga_virtex2());
    let events = vec![TrafficEvent::new(0, NodeId(0), NodeId(8), 64)];
    let uniform = Simulator::new(&mesh, SimConfig::default(), fpga.clone())
        .run(events.clone())
        .unwrap();
    let sized = Simulator::new(&degree_sized, SimConfig::default(), fpga)
        .run(events)
        .unwrap();
    assert!(uniform.energy.switch > sized.energy.switch);
    assert!(uniform.energy.idle > sized.energy.idle);
}

#[test]
fn o1turn_stochastic_routing_works() {
    use noc_sim::RoutePolicy;
    let model = NocModel::mesh_o1turn(4, 4, 1.0, 99);
    assert_eq!(model.num_vcs(), 2);
    assert!(matches!(model.policy(), RoutePolicy::Stochastic { .. }));
    // Both dimension orders appear over many packets of the same pair.
    let mut saw_xy = false;
    let mut saw_yx = false;
    for idx in 0..64 {
        let (route, vcs) = model.route_for_packet(NodeId(0), NodeId(15), idx).unwrap();
        assert_eq!(route.len(), 7);
        if route[1] == NodeId(1) {
            saw_xy = true;
            assert!(vcs.iter().all(|&v| v == 0));
        } else {
            assert_eq!(route[1], NodeId(4));
            saw_yx = true;
            assert!(vcs.iter().all(|&v| v == 1));
        }
    }
    assert!(saw_xy && saw_yx, "both dimension orders should occur");

    // Heavy adversarial traffic drains without deadlock (per-VC layers).
    let events = noc_sim::traffic::uniform_random(16, 400, 128, 5);
    let offered = events.len();
    let report = Simulator::new(&model, SimConfig::default(), energy())
        .run(events)
        .unwrap();
    assert_eq!(report.packets_delivered, offered);
    assert_eq!(report.flits_injected, report.flits_ejected);
}

#[test]
fn o1turn_spreads_load_on_transpose_traffic() {
    // Transpose traffic concentrates XY routes; O1TURN should not be
    // (much) slower and typically wins. We assert it completes and stays
    // within 10% of XY either way (a smoke check of the policy, not a
    // performance claim).
    let xy = NocModel::mesh(6, 6, 1.0);
    let o1 = NocModel::mesh_o1turn(6, 6, 1.0, 3);
    let mut events = Vec::new();
    for x in 0..6usize {
        for y in 0..6usize {
            if x != y {
                // transpose pairs (x,y) -> (y,x)
                let src = NodeId(y * 6 + x);
                let dst = NodeId(x * 6 + y);
                for k in 0..3u64 {
                    events.push(TrafficEvent::new(8 * k, src, dst, 96));
                }
            }
        }
    }
    let r_xy = Simulator::new(&xy, SimConfig::default(), energy())
        .run(events.clone())
        .unwrap();
    let r_o1 = Simulator::new(&o1, SimConfig::default(), energy())
        .run(events)
        .unwrap();
    assert_eq!(r_xy.packets_delivered, r_o1.packets_delivered);
    assert!(
        (r_o1.total_cycles as f64) < 1.10 * r_xy.total_cycles as f64,
        "o1turn {} vs xy {}",
        r_o1.total_cycles,
        r_xy.total_cycles
    );
}
