//! Property suites for the credit-based router pipeline.
//!
//! Two randomized guarantees, each over ≥48 cases:
//!
//! 1. **Flit accounting** — under random meshes, pipeline depths, buffer
//!    depths and loads, every offered packet is delivered and every flit
//!    injected is ejected exactly once: no loss, no duplication. (The
//!    per-cycle credit-conservation invariant — credits in flight plus
//!    buffer occupancy equals buffer depth, per (channel, VC) — is
//!    `debug_assert`ed inside the router loop itself, so these debug-mode
//!    runs exercise it on every cycle of every case.)
//! 2. **Certified escape-VC designs never deadlock** — models whose
//!    routing specs the static verifier proves deadlock-free (XY mesh,
//!    O1TURN's disjoint VC layers, and a synthesized architecture glued
//!    with VC-bump escape assignments) complete every randomized workload
//!    in credit mode without ever raising `SimError::Deadlock`, even at
//!    single-flit buffers and slow credit loops.

use noc_energy::{EnergyModel, TechnologyProfile};
use noc_graph::{DiGraph, NodeId};
use noc_sim::{traffic, CreditConfig, NocModel, RouterFidelity, SimConfig, Simulator};
use proptest::prelude::*;

fn energy() -> EnergyModel {
    EnergyModel::new(TechnologyProfile::cmos_180nm())
}

/// The synthesized architecture of the equivalence suite: four cores in
/// a communication cycle, decomposed, glued back with deadlock-free
/// VC-bump assignments, and filled to all pairs.
fn glued_model() -> NocModel {
    use noc_graph::{Acg, EdgeDemand};
    use noc_synthesis::{Architecture, CostModel, Decomposer, Objective};

    let mut g = DiGraph::new(4);
    for s in 0..4usize {
        g.add_edge(NodeId(s), NodeId((s + 2) % 4));
    }
    let acg = Acg::from_graph_uniform(g, EdgeDemand::from_volume(512.0));
    let lib = noc_primitives::CommLibrary::standard();
    let placement = noc_floorplan::Placement::grid(2, 2, 1.0, 1.0);
    let cm = CostModel::new(energy(), placement.clone(), Objective::Links);
    let d = Decomposer::new(&acg, &lib, cm).run().best.unwrap();
    let mut arch = Architecture::synthesize(&acg, &lib, &d, placement);
    arch.fill_all_pairs();
    NocModel::from_architecture(&arch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No flit loss, no duplication, full delivery: over random meshes,
    /// pipeline depths and loads the credit router delivers every packet
    /// and ejects exactly the flits it injected.
    #[test]
    fn credit_mode_delivers_every_flit_exactly_once(
        cols in 2usize..=4,
        rows in 1usize..=3,
        o1turn in proptest::bool::ANY,
        buffer_flits in 1usize..=4,
        rc_cycles in 1u64..=2,
        st_cycles in 1u64..=3,
        credit_return_cycles in 1u64..=4,
        payload in proptest::sample::select(vec![16u64, 64, 256]),
        seed in 0u64..1_000,
        rate in 0.05f64..0.5,
    ) {
        let model = if o1turn && cols * rows > 1 {
            NocModel::mesh_o1turn(cols, rows, 1.0, seed)
        } else {
            NocModel::mesh(cols, rows, 1.0)
        };
        let cfg = SimConfig {
            buffer_flits,
            router: RouterFidelity::Credit(CreditConfig {
                rc_cycles,
                st_cycles,
                credit_return_cycles,
            }),
            ..SimConfig::default()
        };
        let events = traffic::bernoulli(model.node_count(), 60, rate, payload, seed);
        let offered = events.len();
        let flits_per_packet =
            (cfg.header_flits as u64) + payload.div_ceil(cfg.flit_bits);
        let report = Simulator::new(&model, cfg, energy()).run(events).unwrap();
        prop_assert_eq!(report.packets_delivered, offered);
        prop_assert_eq!(report.flits_injected, offered as u64 * flits_per_packet);
        prop_assert_eq!(report.flits_ejected, report.flits_injected);
        if offered > 0 {
            prop_assert!(report.avg_packet_latency_cycles > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The static-verification contract carries over to the credit
    /// pipeline: a design whose extended CDG is acyclic (escape VCs and
    /// all) never raises `SimError::Deadlock`, whatever the load, seed,
    /// buffer depth or credit-loop latency.
    #[test]
    fn certified_escape_vc_designs_never_deadlock_in_credit_mode(
        which in 0usize..3,
        buffer_flits in 1usize..=2,
        st_cycles in 1u64..=2,
        credit_return_cycles in 1u64..=4,
        seed in 0u64..1_000,
        rate in 0.1f64..0.6,
    ) {
        let model = match which {
            0 => NocModel::mesh(4, 4, 1.0),
            1 => NocModel::mesh_o1turn(4, 4, 1.0, seed),
            _ => glued_model(),
        };
        prop_assert!(
            model.verify().is_deadlock_free(),
            "precondition: the design must be statically certified"
        );
        let cfg = SimConfig {
            buffer_flits,
            router: RouterFidelity::Credit(CreditConfig {
                rc_cycles: 1,
                st_cycles,
                credit_return_cycles,
            }),
            ..SimConfig::default()
        };
        let events = if which == 2 {
            // The glued architecture routes its ACG pairs (plus whatever
            // fill_all_pairs could reach), not the full clique — drive
            // the communication-cycle pairs that stress the escape VCs.
            let pairs: Vec<(NodeId, NodeId)> =
                (0..4).map(|s| (NodeId(s), NodeId((s + 2) % 4))).collect();
            traffic::bernoulli_pairs(&pairs, 80, rate, 64, seed)
        } else {
            traffic::bernoulli(model.node_count(), 80, rate, 64, seed)
        };
        let offered = events.len();
        let report = Simulator::new(&model, cfg, energy())
            .run(events)
            .expect("certified design must not deadlock (or stall out)");
        prop_assert_eq!(report.packets_delivered, offered);
    }
}
