//! Golden equivalence suite: the event-driven engine must be
//! **bit-identical** to the reference rescan loop preserved in
//! [`noc_sim::reference`] — every `SimReport` field (cycles, latencies,
//! flit counts, energy joules down to the last f64 bit), every error
//! variant at its exact firing cycle, across the model × traffic ×
//! thread-count matrix.

use std::collections::BTreeMap;

use noc_energy::{EnergyModel, TechnologyProfile};
use noc_graph::{DiGraph, NodeId};
use noc_sim::sweep::{sweep, LoadPoint, SweepConfig};
use noc_sim::{
    reference, traffic, NocModel, Phase, SimConfig, SimError, SimReport, Simulator, TrafficEvent,
};
use proptest::prelude::*;

fn energy() -> EnergyModel {
    EnergyModel::new(TechnologyProfile::cmos_180nm())
}

/// Full-struct equality plus exact bit patterns of every f64 field (f64
/// `==` admits `-0.0 == 0.0`; "bit-identical" must not).
fn assert_bit_identical(new: &SimReport, old: &SimReport) {
    assert_eq!(new, old);
    assert_eq!(
        new.avg_packet_latency_cycles.to_bits(),
        old.avg_packet_latency_cycles.to_bits()
    );
    assert_eq!(
        new.avg_network_latency_cycles.to_bits(),
        old.avg_network_latency_cycles.to_bits()
    );
    assert_eq!(
        new.energy.switch.joules().to_bits(),
        old.energy.switch.joules().to_bits()
    );
    assert_eq!(
        new.energy.link.joules().to_bits(),
        old.energy.link.joules().to_bits()
    );
    assert_eq!(
        new.energy.idle.joules().to_bits(),
        old.energy.idle.joules().to_bits()
    );
}

/// Runs `events` through both cores and demands identical outcomes.
fn check(model: &NocModel, cfg: SimConfig, events: &[TrafficEvent]) {
    let new = Simulator::new(model, cfg, energy()).run(events.to_vec());
    let old = reference::run_reference(model, &cfg, &energy(), events);
    match (new, old) {
        (Ok(n), Ok(o)) => assert_bit_identical(&n, &o),
        (n, o) => assert_eq!(n, o, "error outcomes must match exactly"),
    }
}

/// The synthesized ("custom glued") architecture of the wormhole suite:
/// four cores in a communication cycle, decomposed and glued back with
/// deadlock-free VC assignments, then filled to all pairs.
fn glued_model() -> NocModel {
    use noc_graph::{Acg, EdgeDemand};
    use noc_synthesis::{Architecture, CostModel, Decomposer, Objective};

    let mut g = DiGraph::new(4);
    for s in 0..4usize {
        g.add_edge(NodeId(s), NodeId((s + 2) % 4));
    }
    let acg = Acg::from_graph_uniform(g, EdgeDemand::from_volume(512.0));
    let lib = noc_primitives::CommLibrary::standard();
    let placement = noc_floorplan::Placement::grid(2, 2, 1.0, 1.0);
    let cm = CostModel::new(energy(), placement.clone(), Objective::Links);
    let d = Decomposer::new(&acg, &lib, cm).run().best.unwrap();
    let mut arch = Architecture::synthesize(&acg, &lib, &d, placement);
    arch.fill_all_pairs();
    NocModel::from_architecture(&arch)
}

#[test]
fn mesh_uniform_random_matrix() {
    let configs = [
        SimConfig::default(),
        SimConfig {
            buffer_flits: 1,
            ..SimConfig::default()
        },
        SimConfig {
            flit_bits: 16,
            header_flits: 2,
            ..SimConfig::default()
        },
    ];
    for model in [NocModel::mesh(4, 4, 1.0), NocModel::mesh(5, 3, 2.0)] {
        for cfg in configs {
            for seed in [7, 42] {
                let events = traffic::uniform_random(model.node_count(), 150, 96, seed);
                check(&model, cfg, &events);
            }
        }
    }
}

#[test]
fn o1turn_stochastic_routes_match() {
    let model = NocModel::mesh_o1turn(4, 4, 1.0, 3);
    let events = traffic::uniform_random(16, 200, 128, 11);
    check(&model, SimConfig::default(), &events);
    // Saturating load exercises VC contention on both route layers.
    let heavy = traffic::bernoulli(16, 300, 0.45, 64, 5);
    check(&model, SimConfig::default(), &heavy);
}

#[test]
fn glued_architecture_matches_under_pair_traffic() {
    let model = glued_model();
    let cfg = SimConfig {
        buffer_flits: 1,
        stall_cycles: 1000,
        ..SimConfig::default()
    };
    let cyclic: Vec<TrafficEvent> = (0..4)
        .map(|s| TrafficEvent::new(0, NodeId(s), NodeId((s + 2) % 4), 512))
        .collect();
    check(&model, cfg, &cyclic);
    let pairs = vec![(NodeId(0), NodeId(2)), (NodeId(3), NodeId(1))];
    let bern = traffic::bernoulli_pairs(&pairs, 250, 0.3, 96, 9);
    check(&model, SimConfig::default(), &bern);
}

#[test]
fn release_gaps_skip_idle_cycles_with_identical_reports() {
    // Bursts separated by long idle gaps: the engine jumps the gaps via
    // its release heap; makespan, latency and energy (which integrates
    // idle power over *all* cycles) must still match the cycle-by-cycle
    // reference exactly.
    let model = NocModel::mesh(3, 3, 1.0);
    let mut events = Vec::new();
    for burst in 0..4u64 {
        let at = burst * 2_000;
        events.push(TrafficEvent::new(at, NodeId(0), NodeId(8), 256));
        events.push(TrafficEvent::new(at + 3, NodeId(4), NodeId(2), 64));
    }
    check(&model, SimConfig::default(), &events);
    // Same but on an FPGA-style profile where idle energy is nonzero, so
    // a miscounted makespan would show up in joules too.
    let fpga = EnergyModel::new(TechnologyProfile::fpga_virtex2());
    let new = Simulator::new(&model, SimConfig::default(), fpga.clone())
        .run(events.clone())
        .unwrap();
    let old = reference::run_reference(&model, &SimConfig::default(), &fpga, &events).unwrap();
    assert_bit_identical(&new, &old);
}

#[test]
fn deadlock_errors_match_including_blocked_snapshots() {
    // Cyclic routes on a single VC with tiny buffers deadlock; both cores
    // must report the same cycle, undelivered count and blocked-buffer
    // snapshot.
    let topo = DiGraph::cycle(4);
    let mut routes = BTreeMap::new();
    for s in 0..4usize {
        let d = (s + 2) % 4;
        routes.insert(
            (NodeId(s), NodeId(d)),
            vec![NodeId(s), NodeId((s + 1) % 4), NodeId(d)],
        );
    }
    let model = NocModel::from_parts("cyclic", topo, routes, BTreeMap::new(), 1.0);
    let cfg = SimConfig {
        buffer_flits: 1,
        stall_cycles: 200,
        ..SimConfig::default()
    };
    let events: Vec<TrafficEvent> = (0..4)
        .map(|s| TrafficEvent::new(0, NodeId(s), NodeId((s + 2) % 4), 512))
        .collect();
    let new = Simulator::new(&model, cfg, energy())
        .run(events.clone())
        .unwrap_err();
    let old = reference::run_reference(&model, &cfg, &energy(), &events).unwrap_err();
    assert_eq!(new, old);
    match new {
        SimError::Deadlock { blocked, .. } => {
            assert!(
                !blocked.is_empty(),
                "a real buffer deadlock must name the blocked (channel, VC)s"
            );
            for b in &blocked {
                assert!(b.occupancy > 0);
            }
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn ideal_fidelity_is_the_bit_identical_compatibility_config() {
    // The compatibility guarantee of the router-fidelity axis: a config
    // that *explicitly* selects `RouterFidelity::Ideal` produces reports
    // bit-identical to both a default config (which carries the same
    // fidelity implicitly) and the preserved reference loop, across the
    // model × traffic matrix. The credit pipeline must never leak into
    // the ideal path.
    use noc_sim::RouterFidelity;
    let mesh = NocModel::mesh(4, 4, 1.0);
    let o1 = NocModel::mesh_o1turn(4, 4, 1.0, 3);
    let glued = glued_model();
    let glued_pairs = vec![(NodeId(0), NodeId(2)), (NodeId(3), NodeId(1))];
    let cases: Vec<(&NocModel, Vec<TrafficEvent>)> = vec![
        (&mesh, traffic::uniform_random(16, 150, 96, 7)),
        (&mesh, traffic::bernoulli(16, 200, 0.35, 64, 3)),
        (&o1, traffic::uniform_random(16, 200, 128, 11)),
        (
            &glued,
            traffic::bernoulli_pairs(&glued_pairs, 250, 0.3, 96, 9),
        ),
    ];
    for (model, events) in &cases {
        let explicit = SimConfig {
            router: RouterFidelity::Ideal,
            ..SimConfig::default()
        };
        // Explicit Ideal ≡ reference (every f64 down to the bit).
        check(model, explicit, events);
        // Explicit Ideal ≡ implicit default-config engine run.
        let a = Simulator::new(model, explicit, energy())
            .run(events.clone())
            .unwrap();
        let b = Simulator::new(model, SimConfig::default(), energy())
            .run(events.clone())
            .unwrap();
        assert_bit_identical(&a, &b);
    }
    // Error outcomes too: the cyclic-route deadlock fires at the same
    // cycle with the same snapshot under an explicit Ideal config.
    let topo = DiGraph::cycle(4);
    let mut routes = BTreeMap::new();
    for s in 0..4usize {
        let d = (s + 2) % 4;
        routes.insert(
            (NodeId(s), NodeId(d)),
            vec![NodeId(s), NodeId((s + 1) % 4), NodeId(d)],
        );
    }
    let cyclic = NocModel::from_parts("cyclic", topo, routes, BTreeMap::new(), 1.0);
    let cfg = SimConfig {
        buffer_flits: 1,
        stall_cycles: 200,
        router: RouterFidelity::Ideal,
        ..SimConfig::default()
    };
    let events: Vec<TrafficEvent> = (0..4)
        .map(|s| TrafficEvent::new(0, NodeId(s), NodeId((s + 2) % 4), 512))
        .collect();
    check(&cyclic, cfg, &events);
}

#[test]
fn watchdog_and_release_gap_stalls_match() {
    let model = NocModel::mesh(4, 4, 1.0);
    // Watchdog: budget far below the drain time.
    let cfg = SimConfig {
        max_cycles: 3,
        ..SimConfig::default()
    };
    let events = traffic::uniform_random(16, 50, 256, 1);
    check(&model, cfg, &events);
    // Watchdog during an idle gap: the skip must not jump past the cap.
    let gap_cfg = SimConfig {
        max_cycles: 500,
        ..SimConfig::default()
    };
    let gapped = vec![TrafficEvent::new(900, NodeId(0), NodeId(5), 64)];
    check(&model, gap_cfg, &gapped);
    // Stall detector during an idle gap (release beyond stall_cycles):
    // the reference loop calls this deadlock, so the engine must too.
    let stall_cfg = SimConfig {
        stall_cycles: 100,
        ..SimConfig::default()
    };
    let late = vec![TrafficEvent::new(5_000, NodeId(1), NodeId(2), 64)];
    check(&model, stall_cfg, &late);
}

/// Replicates the sequential sweep fold on top of the reference core:
/// the oracle for `sweep()` under every thread count.
fn reference_sweep(
    model: &NocModel,
    config: &SweepConfig,
    energy: &EnergyModel,
) -> Result<Vec<LoadPoint>, SimError> {
    let mut points = Vec::new();
    let mut zero_load: Option<(f64, f64)> = None;
    for &rate in &config.rates {
        let events = match &config.pairs {
            Some(pairs) => traffic::bernoulli_pairs(
                pairs,
                config.duration_cycles,
                rate,
                config.payload_bits,
                config.seed,
            ),
            None => traffic::bernoulli(
                model.node_count(),
                config.duration_cycles,
                rate,
                config.payload_bits,
                config.seed,
            ),
        };
        let report = reference::run_reference(model, &config.sim, energy, &events)?;
        let point = LoadPoint {
            injection_rate: rate,
            avg_latency_cycles: report.avg_packet_latency_cycles,
            throughput_bits_per_cycle: report.throughput_bits_per_cycle(),
            packets: report.packets_delivered,
            energy_joules: report.energy.total().joules(),
        };
        let latency = point.avg_latency_cycles;
        let delivered = point.packets > 0;
        points.push(point);
        if delivered && zero_load.is_none_or(|(anchor_rate, _)| rate < anchor_rate) {
            zero_load = Some((rate, latency));
        }
        if let (Some(cutoff), Some((_, baseline))) = (config.saturation_cutoff, zero_load) {
            if latency > cutoff * baseline {
                break;
            }
        }
    }
    Ok(points)
}

#[test]
fn sweeps_match_reference_across_thread_counts_and_cutoffs() {
    let mesh = NocModel::mesh(4, 4, 1.0);
    let o1 = NocModel::mesh_o1turn(4, 4, 1.0, 3);
    let glued = glued_model();
    let glued_pairs = vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(3))];
    for (model, pairs) in [(&mesh, None), (&o1, None), (&glued, Some(glued_pairs))] {
        for cutoff in [None, Some(2.0)] {
            let base = SweepConfig {
                rates: vec![0.02, 0.45, 0.55, 0.65],
                duration_cycles: 250,
                saturation_cutoff: cutoff,
                pairs: pairs.clone(),
                ..Default::default()
            };
            let oracle = reference_sweep(model, &base, &energy()).unwrap();
            for threads in [1usize, 2, 3, 0] {
                let cfg = SweepConfig {
                    threads,
                    ..base.clone()
                };
                let got = sweep(model, &cfg, &energy()).unwrap();
                assert_eq!(
                    got.len(),
                    oracle.len(),
                    "threads={threads} cutoff={cutoff:?}"
                );
                for (g, o) in got.iter().zip(&oracle) {
                    assert_eq!(g.injection_rate, o.injection_rate);
                    assert_eq!(g.packets, o.packets);
                    assert_eq!(
                        g.avg_latency_cycles.to_bits(),
                        o.avg_latency_cycles.to_bits()
                    );
                    assert_eq!(
                        g.throughput_bits_per_cycle.to_bits(),
                        o.throughput_bits_per_cycle.to_bits()
                    );
                    assert_eq!(g.energy_joules.to_bits(), o.energy_joules.to_bits());
                }
            }
        }
    }
}

#[test]
fn phased_runs_match_a_reference_fold() {
    let model = NocModel::mesh(2, 2, 1.0);
    let e = |s: usize, d: usize| TrafficEvent::new(0, NodeId(s), NodeId(d), 64);
    let phases = vec![
        Phase {
            label: "shift".into(),
            compute_cycles: 12,
            events: vec![e(0, 1), e(1, 3)],
        },
        Phase {
            label: "mix".into(),
            compute_cycles: 7,
            events: vec![e(3, 0), e(2, 1), e(0, 2)],
        },
        Phase {
            label: "quiet".into(),
            compute_cycles: 42,
            events: Vec::new(),
        },
    ];
    let report = Simulator::new(&model, SimConfig::default(), energy())
        .run_phases(&phases)
        .unwrap();
    // Fold the same phases through the reference core.
    let mut comm = 0u64;
    for (phase, got) in phases.iter().zip(&report.phase_reports) {
        let old = reference::run_reference(&model, &SimConfig::default(), &energy(), &phase.events)
            .unwrap();
        assert_bit_identical(got, &old);
        comm += old.total_cycles;
    }
    assert_eq!(report.comm_cycles, comm);
    assert_eq!(report.compute_cycles, 61);
    assert_eq!(report.total_cycles, comm + 61);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The active-set property: over random meshes, loads, buffer depths
    /// and release patterns (including long idle gaps), the event-driven
    /// engine reports exactly what the cycle-by-cycle reference loop
    /// reports. Identical `total_cycles` and flit counts mean the active
    /// sets never skipped a cycle in which a flit could move — a skipped
    /// movable cycle would stretch the makespan or drop a grant.
    #[test]
    fn random_workloads_are_bit_identical(
        cols in 2usize..=4,
        rows in 1usize..=3,
        o1turn in proptest::bool::ANY,
        buffer_flits in 1usize..=4,
        payload in proptest::sample::select(vec![16u64, 64, 256]),
        seed in 0u64..1_000,
        rate in 0.05f64..0.6,
        gap in proptest::sample::select(vec![0u64, 3_000]),
    ) {
        let model = if o1turn && cols * rows > 1 {
            NocModel::mesh_o1turn(cols, rows, 1.0, seed)
        } else {
            NocModel::mesh(cols, rows, 1.0)
        };
        let cfg = SimConfig { buffer_flits, ..SimConfig::default() };
        let mut events = traffic::bernoulli(model.node_count(), 60, rate, payload, seed);
        // Optionally push a delayed straggler to exercise idle skipping.
        if gap > 0 && model.node_count() > 1 {
            events.push(TrafficEvent::new(gap, NodeId(0), NodeId(model.node_count() - 1), payload));
        }
        let new = Simulator::new(&model, cfg, energy()).run(events.clone());
        let old = reference::run_reference(&model, &cfg, &energy(), &events);
        match (new, old) {
            (Ok(n), Ok(o)) => {
                prop_assert_eq!(&n, &o);
                prop_assert_eq!(n.energy.switch.joules().to_bits(), o.energy.switch.joules().to_bits());
                prop_assert_eq!(n.energy.link.joules().to_bits(), o.energy.link.joules().to_bits());
            }
            (n, o) => prop_assert_eq!(n, o),
        }
    }
}
