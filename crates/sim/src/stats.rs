//! Simulation reports: the quantities compared in Section 5.2.

use noc_energy::EnergyBreakdown;

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Model name (`custom`, `mesh-4x4`, …).
    pub model_name: String,
    /// Cycles until the last tail flit ejected (the makespan; for the AES
    /// experiment this is "cycles per block").
    pub total_cycles: u64,
    /// Packets offered.
    pub packets_offered: usize,
    /// Packets delivered (equals offered on success).
    pub packets_delivered: usize,
    /// Total payload bits delivered.
    pub payload_bits: u64,
    /// Mean latency from release to tail ejection, cycles.
    pub avg_packet_latency_cycles: f64,
    /// Mean in-network latency from injection to tail ejection, cycles.
    pub avg_network_latency_cycles: f64,
    /// Flits injected at sources.
    pub flits_injected: u64,
    /// Flits ejected at destinations.
    pub flits_ejected: u64,
    /// Energy dissipated, split into switch and link parts.
    pub energy: EnergyBreakdown,
    /// Clock frequency used for throughput/power conversion, Hz.
    pub clock_hz: f64,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        model_name: String,
        total_cycles: u64,
        packets_offered: usize,
        packets_delivered: usize,
        payload_bits: u64,
        latency_sum: u64,
        network_latency_sum: u64,
        flits_injected: u64,
        flits_ejected: u64,
        energy: EnergyBreakdown,
        clock_hz: f64,
    ) -> Self {
        let avg = if packets_delivered == 0 {
            0.0
        } else {
            latency_sum as f64 / packets_delivered as f64
        };
        let avg_net = if packets_delivered == 0 {
            0.0
        } else {
            network_latency_sum as f64 / packets_delivered as f64
        };
        SimReport {
            model_name,
            total_cycles,
            packets_offered,
            packets_delivered,
            payload_bits,
            avg_packet_latency_cycles: avg,
            avg_network_latency_cycles: avg_net,
            flits_injected,
            flits_ejected,
            energy,
            clock_hz,
        }
    }

    /// Delivered payload throughput in bits per cycle.
    pub fn throughput_bits_per_cycle(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.total_cycles as f64
        }
    }

    /// Delivered payload throughput in Mbps at the model's clock — the
    /// paper's `Θ = (128 bits/block) * f_clk / (cycles/block)` metric.
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bits_per_cycle() * self.clock_hz / 1e6
    }

    /// Average power in watts: total energy over total wall-clock time.
    pub fn avg_power_watts(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.energy.total().joules() * self.clock_hz / self.total_cycles as f64
        }
    }

    /// Wall-clock duration of the run in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.total_cycles as f64 / self.clock_hz
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}]", self.model_name)?;
        writeln!(
            f,
            "  cycles: {}  packets: {}/{}  flits: {}",
            self.total_cycles, self.packets_delivered, self.packets_offered, self.flits_ejected
        )?;
        writeln!(
            f,
            "  latency: {:.1} cycles (network {:.1})",
            self.avg_packet_latency_cycles, self.avg_network_latency_cycles
        )?;
        writeln!(
            f,
            "  throughput: {:.1} Mbps @ {:.0} MHz",
            self.throughput_mbps(),
            self.clock_hz / 1e6
        )?;
        write!(
            f,
            "  energy: {}  avg power: {:.3} mW",
            self.energy,
            self.avg_power_watts() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_energy::Energy;

    fn report() -> SimReport {
        SimReport::assemble(
            "test".into(),
            200,
            4,
            4,
            512,
            40,
            32,
            20,
            20,
            EnergyBreakdown {
                switch: Energy::from_picojoules(600.0),
                link: Energy::from_picojoules(400.0),
                idle: Energy::ZERO,
            },
            100.0e6,
        )
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.avg_packet_latency_cycles, 10.0);
        assert_eq!(r.avg_network_latency_cycles, 8.0);
        assert!((r.throughput_bits_per_cycle() - 2.56).abs() < 1e-12);
        // 2.56 bits/cycle at 100 MHz = 256 Mbps.
        assert!((r.throughput_mbps() - 256.0).abs() < 1e-9);
        // 1000 pJ over 200 cycles at 10 ns/cycle = 1 nJ / 2 us = 0.5 mW.
        assert!((r.avg_power_watts() - 0.5e-3).abs() < 1e-12);
        assert!((r.duration_seconds() - 2.0e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_cycle_report_is_quiet() {
        let r = SimReport::assemble(
            "idle".into(),
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            EnergyBreakdown::default(),
            100e6,
        );
        assert_eq!(r.throughput_bits_per_cycle(), 0.0);
        assert_eq!(r.avg_power_watts(), 0.0);
        assert_eq!(r.avg_packet_latency_cycles, 0.0);
    }

    #[test]
    fn display_mentions_key_figures() {
        let s = report().to_string();
        assert!(s.contains("cycles: 200"));
        assert!(s.contains("256.0 Mbps"));
        assert!(s.contains("avg power"));
    }
}
