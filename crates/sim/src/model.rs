//! Simulation-ready network models.

use std::collections::BTreeMap;

use noc_graph::{DiGraph, NodeId};
use noc_synthesis::Architecture;
use noc_verify::RoutingSpec;

/// How a packet's route is selected when alternates exist.
///
/// The paper's conclusion lists "adaptive or stochastic routing strategies"
/// as future work; [`RoutePolicy::Stochastic`] implements the classic
/// oblivious O1TURN scheme — each packet picks XY or YX minimal routing
/// with equal probability, on separate virtual-channel layers so the
/// combination stays deadlock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Always use the primary route table.
    Fixed,
    /// Choose per packet between the primary and alternate route tables,
    /// deterministically seeded.
    Stochastic {
        /// Seed for the per-packet choice.
        seed: u64,
    },
}

/// A network ready for simulation: directed channels, a route for every
/// communicating pair, per-channel wire lengths, and a per-hop virtual
/// channel assignment guaranteeing deadlock freedom.
#[derive(Debug, Clone)]
pub struct NocModel {
    topology: DiGraph,
    routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
    vcs: BTreeMap<(NodeId, NodeId), Vec<usize>>,
    lengths: BTreeMap<(NodeId, NodeId), f64>,
    num_vcs: usize,
    name: String,
    uniform_radix: Option<usize>,
    alt_routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
    alt_vcs: BTreeMap<(NodeId, NodeId), Vec<usize>>,
    policy: RoutePolicy,
}

impl NocModel {
    /// Builds a model from a synthesized [`Architecture`] — routes come
    /// from the decomposition schedules (plus any shortest-path fills the
    /// caller performed), VCs from the architecture's deadlock analysis.
    pub fn from_architecture(arch: &Architecture) -> Self {
        let (vcs, num_vcs) = arch.assign_virtual_channels();
        let routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>> = arch
            .routes()
            .map(|(pair, path)| (pair, path.to_vec()))
            .collect();
        let lengths = arch
            .links()
            .map(|(pair, info)| (pair, info.length_mm))
            .collect();
        NocModel {
            topology: arch.topology().clone(),
            routes,
            vcs,
            lengths,
            num_vcs,
            name: "custom".into(),
            uniform_radix: None,
            alt_routes: BTreeMap::new(),
            alt_vcs: BTreeMap::new(),
            policy: RoutePolicy::Fixed,
        }
    }

    /// The standard `cols x rows` mesh baseline with dimension-ordered
    /// (X-then-Y) routing — deadlock-free on one virtual channel — and
    /// `pitch_mm` tile spacing. Nodes are numbered row-major.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(cols: usize, rows: usize, pitch_mm: f64) -> Self {
        assert!(cols > 0 && rows > 0, "mesh must be non-empty");
        let n = cols * rows;
        let id = |x: usize, y: usize| NodeId(y * cols + x);
        let mut topology = DiGraph::new(n);
        let mut lengths = BTreeMap::new();
        for y in 0..rows {
            for x in 0..cols {
                let mut connect = |a: NodeId, b: NodeId| {
                    topology.add_edge(a, b);
                    topology.add_edge(b, a);
                    lengths.insert((a, b), pitch_mm);
                    lengths.insert((b, a), pitch_mm);
                };
                if x + 1 < cols {
                    connect(id(x, y), id(x + 1, y));
                }
                if y + 1 < rows {
                    connect(id(x, y), id(x, y + 1));
                }
            }
        }
        // XY routes for all ordered pairs.
        let mut routes = BTreeMap::new();
        let mut vcs = BTreeMap::new();
        for sy in 0..rows {
            for sx in 0..cols {
                for dy in 0..rows {
                    for dx in 0..cols {
                        if (sx, sy) == (dx, dy) {
                            continue;
                        }
                        let mut path = vec![id(sx, sy)];
                        let (mut x, mut y) = (sx, sy);
                        while x != dx {
                            x = if dx > x { x + 1 } else { x - 1 };
                            path.push(id(x, y));
                        }
                        while y != dy {
                            y = if dy > y { y + 1 } else { y - 1 };
                            path.push(id(x, y));
                        }
                        vcs.insert((id(sx, sy), id(dx, dy)), vec![0; path.len() - 1]);
                        routes.insert((id(sx, sy), id(dx, dy)), path);
                    }
                }
            }
        }
        NocModel {
            topology,
            routes,
            vcs,
            lengths,
            num_vcs: 1,
            name: format!("mesh-{cols}x{rows}"),
            // A standard mesh replicates one uniform router design sized
            // for the busiest tile: 4 neighbors + 1 local port.
            uniform_radix: Some(5),
            alt_routes: BTreeMap::new(),
            alt_vcs: BTreeMap::new(),
            policy: RoutePolicy::Fixed,
        }
    }

    /// A model from explicit parts (for tests and custom experiments).
    ///
    /// Every route must run over topology edges; hops default to VC 0 and
    /// `default_length_mm` unless overridden in `lengths`.
    ///
    /// # Panics
    ///
    /// Panics if a route hop is not a topology edge.
    pub fn from_parts(
        name: impl Into<String>,
        topology: DiGraph,
        routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
        lengths: BTreeMap<(NodeId, NodeId), f64>,
        default_length_mm: f64,
    ) -> Self {
        let mut full_lengths = BTreeMap::new();
        for e in topology.edges() {
            let l = lengths
                .get(&(e.src, e.dst))
                .copied()
                .unwrap_or(default_length_mm);
            full_lengths.insert((e.src, e.dst), l);
        }
        for (pair, route) in &routes {
            assert_eq!(route.first(), Some(&pair.0), "route must start at src");
            assert_eq!(route.last(), Some(&pair.1), "route must end at dst");
            for w in route.windows(2) {
                assert!(
                    topology.has_edge(w[0], w[1]),
                    "route hop {} -> {} is not a channel",
                    w[0],
                    w[1]
                );
            }
        }
        let vcs = routes
            .iter()
            .map(|(&pair, route)| (pair, vec![0; route.len() - 1]))
            .collect();
        NocModel {
            topology,
            routes,
            vcs,
            lengths: full_lengths,
            num_vcs: 1,
            name: name.into(),
            uniform_radix: None,
            alt_routes: BTreeMap::new(),
            alt_vcs: BTreeMap::new(),
            policy: RoutePolicy::Fixed,
        }
    }

    /// Model name (`custom`, `mesh-4x4`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of network nodes.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// The channel graph.
    pub fn topology(&self) -> &DiGraph {
        &self.topology
    }

    /// Number of virtual channels required.
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// The route for `(src, dst)`, if that pair can communicate.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&(src, dst)).map(Vec::as_slice)
    }

    /// Per-hop VC indices for `(src, dst)`.
    pub fn route_vcs(&self, src: NodeId, dst: NodeId) -> Option<&[usize]> {
        self.vcs.get(&(src, dst)).map(Vec::as_slice)
    }

    /// Wire length of channel `(src, dst)` in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist.
    pub fn link_length_mm(&self, src: NodeId, dst: NodeId) -> f64 {
        self.lengths[&(src, dst)]
    }

    /// Iterates all channels with their lengths.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), f64)> + '_ {
        self.lengths.iter().map(|(&k, &v)| (k, v))
    }

    /// The router radix (port count) at node `v`: the number of physical
    /// neighbor links plus one local port — unless the model declares a
    /// uniform router design (standard meshes replicate one radix-5 router
    /// everywhere, which is exactly the over-design the paper's customized
    /// switches avoid).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn node_radix(&self, v: NodeId) -> usize {
        if let Some(r) = self.uniform_radix {
            return r;
        }
        let mut neighbors = std::collections::BTreeSet::new();
        neighbors.extend(self.topology.successors(v));
        neighbors.extend(self.topology.predecessors(v));
        neighbors.len() + 1
    }

    /// Declares that every node uses one uniform router of the given radix
    /// (energy accounting then charges that radix everywhere).
    #[must_use]
    pub fn with_uniform_radix(mut self, radix: usize) -> Self {
        self.uniform_radix = Some(radix);
        self
    }

    /// The O1TURN stochastic-routing mesh: each packet picks dimension
    /// order XY (virtual channel 0) or YX (virtual channel 1) with equal
    /// probability — the oblivious "stochastic routing strategy" the paper
    /// lists as future work. Deadlock-free because each dimension order is
    /// confined to its own VC layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh_o1turn(cols: usize, rows: usize, pitch_mm: f64, seed: u64) -> Self {
        let mut model = NocModel::mesh(cols, rows, pitch_mm);
        let id = |x: usize, y: usize| NodeId(y * cols + x);
        let mut alt_routes = BTreeMap::new();
        let mut alt_vcs = BTreeMap::new();
        for sy in 0..rows {
            for sx in 0..cols {
                for dy in 0..rows {
                    for dx in 0..cols {
                        if (sx, sy) == (dx, dy) {
                            continue;
                        }
                        // YX: go vertical first, then horizontal.
                        let mut path = vec![id(sx, sy)];
                        let (mut x, mut y) = (sx, sy);
                        while y != dy {
                            y = if dy > y { y + 1 } else { y - 1 };
                            path.push(id(x, y));
                        }
                        while x != dx {
                            x = if dx > x { x + 1 } else { x - 1 };
                            path.push(id(x, y));
                        }
                        alt_vcs.insert((id(sx, sy), id(dx, dy)), vec![1; path.len() - 1]);
                        alt_routes.insert((id(sx, sy), id(dx, dy)), path);
                    }
                }
            }
        }
        model.alt_routes = alt_routes;
        model.alt_vcs = alt_vcs;
        model.num_vcs = 2;
        model.policy = RoutePolicy::Stochastic { seed };
        model.name = format!("mesh-o1turn-{cols}x{rows}");
        model
    }

    /// The active route policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The route and VC sequence packet number `packet_idx` uses for
    /// `(src, dst)`, honoring the route policy. Returns `None` when the
    /// pair is unroutable.
    pub fn route_for_packet(
        &self,
        src: NodeId,
        dst: NodeId,
        packet_idx: usize,
    ) -> Option<(&[NodeId], &[usize])> {
        let primary = || {
            Some((
                self.routes.get(&(src, dst))?.as_slice(),
                self.vcs.get(&(src, dst))?.as_slice(),
            ))
        };
        match self.policy {
            RoutePolicy::Fixed => primary(),
            RoutePolicy::Stochastic { seed } => {
                // A small deterministic hash of (seed, packet) picks the
                // dimension order.
                let mut h = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(packet_idx as u64);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                if h & 1 == 0 || self.alt_routes.is_empty() {
                    primary()
                } else {
                    Some((
                        self.alt_routes.get(&(src, dst))?.as_slice(),
                        self.alt_vcs.get(&(src, dst))?.as_slice(),
                    ))
                }
            }
        }
    }

    /// The full primary route table, for route compilation by the engine.
    pub(crate) fn routes_map(&self) -> &BTreeMap<(NodeId, NodeId), Vec<NodeId>> {
        &self.routes
    }

    /// The full primary VC table, for route compilation by the engine.
    pub(crate) fn vcs_map(&self) -> &BTreeMap<(NodeId, NodeId), Vec<usize>> {
        &self.vcs
    }

    /// The alternate route table, for route compilation by the engine.
    pub(crate) fn alt_routes_map(&self) -> &BTreeMap<(NodeId, NodeId), Vec<NodeId>> {
        &self.alt_routes
    }

    /// The alternate VC table, for route compilation by the engine.
    pub(crate) fn alt_vcs_map(&self) -> &BTreeMap<(NodeId, NodeId), Vec<usize>> {
        &self.alt_vcs
    }

    /// The model's routing behavior as a [`noc_verify::RoutingSpec`]: the
    /// channels of the topology, the model's VC count, and **every route
    /// table a packet might follow** — under [`RoutePolicy::Stochastic`]
    /// both the primary and the alternate tables join the union, because
    /// a packet committed to either one holds its channel/VC resources
    /// (the O1TURN union argument).
    pub fn routing_spec(&self) -> noc_verify::RoutingSpec {
        let channels = self.topology.edges().map(|e| (e.src, e.dst));
        let mut spec = RoutingSpec::new(self.name.clone(), channels, self.num_vcs).route_set(
            noc_verify::RouteSet::from_tables("primary", &self.routes, &self.vcs),
        );
        if matches!(self.policy, RoutePolicy::Stochastic { .. }) && !self.alt_routes.is_empty() {
            spec = spec.route_set(noc_verify::RouteSet::from_tables(
                "alternate",
                &self.alt_routes,
                &self.alt_vcs,
            ));
        }
        spec
    }

    /// Statically verifies the model deadlock-free: lint pass plus
    /// acyclicity of the VC-aware extended channel dependency graph over
    /// all route tables the policy can select. See [`noc_verify`].
    pub fn verify(&self) -> noc_verify::Verdict {
        noc_verify::verify(&self.routing_spec())
    }

    /// Mean route length in hops over all routed pairs.
    pub fn avg_route_hops(&self) -> f64 {
        if self.routes.is_empty() {
            return 0.0;
        }
        self.routes.values().map(|r| r.len() - 1).sum::<usize>() as f64 / self.routes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_4x4_structure() {
        let m = NocModel::mesh(4, 4, 2.0);
        assert_eq!(m.node_count(), 16);
        assert_eq!(m.name(), "mesh-4x4");
        // 2 * (3*4 + 3*4) = 48 directed channels.
        assert_eq!(m.topology().edge_count(), 48);
        assert_eq!(m.num_vcs(), 1);
        // All 240 ordered pairs routed.
        assert_eq!(m.routes.len(), 240);
    }

    #[test]
    fn mesh_xy_route_goes_x_first() {
        let m = NocModel::mesh(4, 4, 2.0);
        // 0 (0,0) -> 15 (3,3): x to 3, then y down.
        let r = m.route(NodeId(0), NodeId(15)).unwrap();
        assert_eq!(
            r,
            &[
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(7),
                NodeId(11),
                NodeId(15)
            ]
        );
        // Mesh XY average hops on 4x4 = 40/9 per the uniform formula; just
        // sanity check the range.
        let avg = m.avg_route_hops();
        assert!(avg > 2.0 && avg < 3.0, "avg hops {avg}");
    }

    #[test]
    fn mesh_routes_use_channels_and_unit_vcs() {
        let m = NocModel::mesh(3, 2, 1.5);
        for (&(s, d), r) in &m.routes {
            assert_eq!(r[0], s);
            assert_eq!(*r.last().unwrap(), d);
            for w in r.windows(2) {
                assert!(m.topology().has_edge(w[0], w[1]));
                assert_eq!(m.link_length_mm(w[0], w[1]), 1.5);
            }
            assert_eq!(m.route_vcs(s, d).unwrap().len(), r.len() - 1);
        }
    }

    #[test]
    fn from_parts_validates_routes() {
        let topo = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut routes = BTreeMap::new();
        routes.insert(
            (NodeId(0), NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        let m = NocModel::from_parts("line", topo, routes, BTreeMap::new(), 1.0);
        assert_eq!(m.route(NodeId(0), NodeId(2)).unwrap().len(), 3);
        assert_eq!(m.link_length_mm(NodeId(0), NodeId(1)), 1.0);
        assert!(m.route(NodeId(2), NodeId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "not a channel")]
    fn from_parts_rejects_bad_route() {
        let topo = DiGraph::from_edges(3, [(0, 1)]).unwrap();
        let mut routes = BTreeMap::new();
        routes.insert((NodeId(0), NodeId(2)), vec![NodeId(0), NodeId(2)]);
        NocModel::from_parts("bad", topo, routes, BTreeMap::new(), 1.0);
    }

    #[test]
    fn mesh_and_o1turn_verify_deadlock_free() {
        let xy = NocModel::mesh(3, 3, 2.0).verify();
        assert!(xy.is_deadlock_free(), "{xy}");
        assert_eq!(xy.layers.len(), 1);

        // O1TURN: the verdict must cover the union of XY and YX tables —
        // two route sets, two VC layers, each layer acyclic on its own.
        let o1 = NocModel::mesh_o1turn(3, 3, 2.0, 7).verify();
        assert!(o1.is_deadlock_free(), "{o1}");
        assert_eq!(o1.layers.len(), 2);
        assert!(o1.layers.iter().all(|l| l.acyclic));
        assert_eq!(o1.routes_checked, 2 * 72);
    }

    #[test]
    fn planted_ring_model_is_rejected_with_witness() {
        // 4-node unidirectional ring, every node sends two hops ahead on
        // one VC: the canonical wormhole deadlock.
        let topo = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut routes = BTreeMap::new();
        for i in 0..4usize {
            routes.insert(
                (NodeId(i), NodeId((i + 2) % 4)),
                vec![NodeId(i), NodeId((i + 1) % 4), NodeId((i + 2) % 4)],
            );
        }
        let verdict = NocModel::from_parts("ring", topo, routes, BTreeMap::new(), 1.0).verify();
        assert!(!verdict.is_deadlock_free());
        let witness = verdict.cycle.expect("witness");
        assert_eq!(witness.len(), 4);
        assert!(witness.edges.iter().all(|e| !e.routes.is_empty()));
    }

    #[test]
    fn single_node_mesh() {
        let m = NocModel::mesh(1, 1, 1.0);
        assert_eq!(m.node_count(), 1);
        assert_eq!(m.topology().edge_count(), 0);
        assert_eq!(m.avg_route_hops(), 0.0);
    }
}
