//! Cycle-accurate flit-level NoC simulator.
//!
//! The paper evaluates its synthesized architecture against a standard mesh
//! on an FPGA prototype (Virtex-2, Section 5.2), measuring cycles per
//! encrypted block, average packet latency, and power. We do not have the
//! FPGA, so this crate provides the substitute substrate (see `DESIGN.md`):
//! an input-buffered, wormhole-switched, credit-flow-controlled NoC
//! simulator with virtual channels and per-event energy accounting.
//!
//! * [`NocModel`] — a simulation-ready network: topology, per-pair routes
//!   (schedule-derived for custom architectures, dimension-ordered XY for
//!   the mesh baseline), link lengths and per-hop virtual channels.
//! * [`Simulator`] — the cycle loop: injection, switch allocation
//!   (round-robin, wormhole output locking), link traversal, ejection and
//!   credit return.
//! * [`traffic`] — trace-driven and synthetic workload generators.
//! * [`SimReport`] — cycles, latency, throughput and energy, the quantities
//!   compared in Section 5.2.
//!
//! # Example
//!
//! ```
//! use noc_sim::{NocModel, SimConfig, Simulator, traffic};
//! use noc_energy::{EnergyModel, TechnologyProfile};
//!
//! let model = NocModel::mesh(4, 4, 2.0);
//! let events = traffic::uniform_random(16, 64, 128, 7); // 64 packets
//! let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
//! let report = Simulator::new(&model, SimConfig::default(), energy)
//!     .run(events)
//!     .expect("simulation completes");
//! assert_eq!(report.packets_delivered, 64);
//! assert!(report.avg_packet_latency_cycles > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod model;
mod packet;
mod phased;
pub mod reference;
mod router;
mod sim;
mod stats;
pub mod sweep;
pub mod traffic;

pub use model::{NocModel, RoutePolicy};
pub use packet::{Flit, FlitKind, Packet, TrafficEvent};
pub use phased::{Phase, PhasedReport};
pub use sim::{BlockedVc, CreditConfig, RouterFidelity, SimConfig, SimError, Simulator};
pub use stats::SimReport;
