//! Traffic generators: synthetic workloads and ACG-driven traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use noc_graph::{Acg, NodeId};

use crate::TrafficEvent;

/// Uniform random traffic: `packets` events with sources and destinations
/// drawn uniformly (src ≠ dst), all released at cycle 0, each carrying
/// `payload_bits`. Deterministic per `seed`.
///
/// # Panics
///
/// Panics if `nodes < 2` or `payload_bits == 0`.
pub fn uniform_random(
    nodes: usize,
    packets: usize,
    payload_bits: u64,
    seed: u64,
) -> Vec<TrafficEvent> {
    assert!(nodes >= 2, "uniform traffic needs at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..packets)
        .map(|_| {
            let src = rng.gen_range(0..nodes);
            let mut dst = rng.gen_range(0..nodes - 1);
            if dst >= src {
                dst += 1;
            }
            TrafficEvent::new(0, NodeId(src), NodeId(dst), payload_bits)
        })
        .collect()
}

/// Poisson-like Bernoulli injection: every cycle in `0..duration_cycles`,
/// each node independently injects with probability `injection_rate` to a
/// uniformly random other node. Deterministic per `seed`.
///
/// # Panics
///
/// Panics if `nodes < 2`, the rate is outside `[0, 1]`, or
/// `payload_bits == 0`.
pub fn bernoulli(
    nodes: usize,
    duration_cycles: u64,
    injection_rate: f64,
    payload_bits: u64,
    seed: u64,
) -> Vec<TrafficEvent> {
    assert!(nodes >= 2, "traffic needs at least two nodes");
    assert!(
        (0.0..=1.0).contains(&injection_rate),
        "injection rate must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for cycle in 0..duration_cycles {
        for src in 0..nodes {
            if rng.gen::<f64>() < injection_rate {
                let mut dst = rng.gen_range(0..nodes - 1);
                if dst >= src {
                    dst += 1;
                }
                events.push(TrafficEvent::new(
                    cycle,
                    NodeId(src),
                    NodeId(dst),
                    payload_bits,
                ));
            }
        }
    }
    events
}

/// Bernoulli traffic restricted to `pairs`: every cycle, each distinct
/// source in the pair set injects with probability `injection_rate`, to a
/// destination drawn uniformly among *its* pairs. Deterministic per
/// `seed`.
///
/// This is the load model for custom synthesized architectures, which
/// only guarantee routes for application (ACG) pairs — uniform traffic
/// would ask for routes the topology was never built to provide.
///
/// # Panics
///
/// Panics if `pairs` is empty, contains a self-pair, or the rate is not a
/// probability.
pub fn bernoulli_pairs(
    pairs: &[(NodeId, NodeId)],
    duration_cycles: u64,
    injection_rate: f64,
    payload_bits: u64,
    seed: u64,
) -> Vec<TrafficEvent> {
    assert!(!pairs.is_empty(), "traffic needs at least one pair");
    assert!(
        (0.0..=1.0).contains(&injection_rate),
        "injection rate must be a probability"
    );
    // Stable per-source destination lists, in source order.
    let mut by_src: std::collections::BTreeMap<NodeId, Vec<NodeId>> = Default::default();
    for &(src, dst) in pairs {
        assert_ne!(src, dst, "self-pair in traffic pairs");
        by_src.entry(src).or_default().push(dst);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for cycle in 0..duration_cycles {
        for (&src, dsts) in &by_src {
            if rng.gen::<f64>() < injection_rate {
                let dst = dsts[rng.gen_range(0..dsts.len())];
                events.push(TrafficEvent::new(cycle, src, dst, payload_bits));
            }
        }
    }
    events
}

/// One "iteration" of an application ACG: every ACG edge sends its volume
/// as a single packet at cycle 0. The simplest trace for comparing two
/// architectures on the same demands.
pub fn acg_iteration(acg: &Acg) -> Vec<TrafficEvent> {
    acg.demands()
        .filter(|(_, d)| d.volume > 0.0)
        .map(|(e, d)| TrafficEvent::new(0, e.src, e.dst, d.volume.ceil() as u64))
        .collect()
}

/// `iterations` back-to-back ACG iterations spaced `period_cycles` apart
/// (pipelined application runs).
pub fn acg_periodic(acg: &Acg, iterations: usize, period_cycles: u64) -> Vec<TrafficEvent> {
    (0..iterations)
        .flat_map(|i| {
            acg.demands()
                .filter(|(_, d)| d.volume > 0.0)
                .map(move |(e, d)| {
                    TrafficEvent::new(
                        i as u64 * period_cycles,
                        e.src,
                        e.dst,
                        d.volume.ceil() as u64,
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::DiGraph;

    #[test]
    fn uniform_has_no_self_traffic_and_is_deterministic() {
        let a = uniform_random(8, 100, 64, 5);
        let b = uniform_random(8, 100, 64, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        for e in &a {
            assert_ne!(e.src, e.dst);
            assert!(e.src.index() < 8 && e.dst.index() < 8);
        }
        let c = uniform_random(8, 100, 64, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn bernoulli_rate_extremes() {
        assert!(bernoulli(4, 100, 0.0, 32, 1).is_empty());
        let full = bernoulli(4, 50, 1.0, 32, 1);
        assert_eq!(full.len(), 4 * 50);
    }

    #[test]
    fn bernoulli_rate_is_approximate() {
        let events = bernoulli(10, 1000, 0.1, 32, 77);
        let expected = 10.0 * 1000.0 * 0.1;
        let actual = events.len() as f64;
        assert!(
            (actual - expected).abs() < expected * 0.2,
            "got {actual}, expected ~{expected}"
        );
    }

    #[test]
    fn acg_iteration_covers_every_edge() {
        let acg = Acg::builder(3)
            .volume(0, 1, 64.0)
            .volume(1, 2, 32.0)
            .build();
        let events = acg_iteration(&acg);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.release_cycle == 0));
        assert!(events.iter().any(|e| e.payload_bits == 64));
    }

    #[test]
    fn acg_periodic_spaces_iterations() {
        let acg = noc_graph::Acg::from_graph_uniform(
            DiGraph::cycle(3),
            noc_graph::EdgeDemand::from_volume(8.0),
        );
        let events = acg_periodic(&acg, 3, 100);
        assert_eq!(events.len(), 9);
        assert!(events.iter().any(|e| e.release_cycle == 200));
    }

    #[test]
    fn zero_volume_edges_are_skipped() {
        let acg = Acg::builder(3).volume(0, 1, 0.0).volume(1, 2, 8.0).build();
        assert_eq!(acg_iteration(&acg).len(), 1);
    }
}
