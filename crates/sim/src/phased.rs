//! Barrier-synchronized phased execution.
//!
//! Application traces like the distributed AES block (Section 5.2) are
//! sequences of compute/communicate phases: a round's MixColumns messages
//! cannot be injected before its ShiftRows bytes arrived. [`Simulator::run_phases`]
//! executes each phase's traffic to completion on an otherwise idle
//! network, accumulating compute and communication cycles into a block
//! makespan — the "cycles/block" number the paper measures on its FPGA
//! prototypes.

use noc_energy::EnergyBreakdown;

use crate::{SimError, SimReport, Simulator, TrafficEvent};

/// One compute-then-communicate phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Name for reporting.
    pub label: String,
    /// Local computation cycles preceding the communication.
    pub compute_cycles: u64,
    /// Messages released at the phase barrier (release cycles are relative
    /// to the phase start; normally 0).
    pub events: Vec<TrafficEvent>,
}

/// Aggregated results of a phased run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedReport {
    /// Model name.
    pub model_name: String,
    /// Total makespan: compute + communication cycles.
    pub total_cycles: u64,
    /// Cycles spent in communication phases.
    pub comm_cycles: u64,
    /// Cycles spent in local computation.
    pub compute_cycles: u64,
    /// Packets delivered across all phases.
    pub packets_delivered: usize,
    /// Mean packet latency over all phases, cycles.
    pub avg_packet_latency_cycles: f64,
    /// Total payload bits moved.
    pub payload_bits: u64,
    /// Energy over all phases.
    pub energy: EnergyBreakdown,
    /// Clock frequency, Hz.
    pub clock_hz: f64,
    /// Per-phase reports, in order.
    pub phase_reports: Vec<SimReport>,
}

impl PhasedReport {
    /// Throughput for a payload of `payload_bits` per run of this trace —
    /// the paper's `Θ = payload * f_clk / cycles` in Mbps (for AES:
    /// 128-bit blocks).
    pub fn throughput_mbps(&self, payload_bits: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        payload_bits * self.clock_hz / self.total_cycles as f64 / 1e6
    }

    /// Average power over the whole run, watts.
    pub fn avg_power_watts(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.energy.total().joules() * self.clock_hz / self.total_cycles as f64
    }

    /// Energy per run of the trace (for AES: energy per block).
    pub fn energy_per_run(&self) -> noc_energy::Energy {
        self.energy.total()
    }
}

impl std::fmt::Display for PhasedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} cycles/run ({} comm + {} compute), latency {:.1} cy, energy {}",
            self.model_name,
            self.total_cycles,
            self.comm_cycles,
            self.compute_cycles,
            self.avg_packet_latency_cycles,
            self.energy.total()
        )
    }
}

impl Simulator<'_> {
    /// Runs the phases back to back with barriers between them.
    ///
    /// # Errors
    ///
    /// Propagates the first phase's [`SimError`], if any.
    pub fn run_phases(&self, phases: &[Phase]) -> Result<PhasedReport, SimError> {
        let mut comm_cycles = 0u64;
        let mut compute_cycles = 0u64;
        let mut packets = 0usize;
        let mut latency_weighted = 0.0f64;
        let mut payload_bits = 0u64;
        let mut energy = EnergyBreakdown::default();
        let mut phase_reports = Vec::with_capacity(phases.len());
        let mut clock_hz = 0.0;
        // One reusable engine state across all phases: buffers, locks and
        // scheduling structures are allocated once, and the compiled core
        // inside `self` is shared — no per-phase event clone or rebuild.
        let mut state = crate::engine::SimState::default();
        for phase in phases {
            compute_cycles += phase.compute_cycles;
            let report = self.run_in(&mut state, &phase.events)?;
            comm_cycles += report.total_cycles;
            packets += report.packets_delivered;
            latency_weighted += report.avg_packet_latency_cycles * report.packets_delivered as f64;
            payload_bits += report.payload_bits;
            energy.accumulate(report.energy);
            clock_hz = report.clock_hz;
            phase_reports.push(report);
        }
        // Routers burn idle energy during the compute gaps as well.
        for v in 0..self.model().node_count() {
            let radix = self.model().node_radix(noc_graph::NodeId(v));
            energy.idle += self.energy_model().idle_energy(radix, compute_cycles);
        }
        Ok(PhasedReport {
            model_name: self.model_name().to_string(),
            total_cycles: comm_cycles + compute_cycles,
            comm_cycles,
            compute_cycles,
            packets_delivered: packets,
            avg_packet_latency_cycles: if packets == 0 {
                0.0
            } else {
                latency_weighted / packets as f64
            },
            payload_bits,
            energy,
            clock_hz,
            phase_reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NocModel, SimConfig};
    use noc_energy::{EnergyModel, TechnologyProfile};
    use noc_graph::NodeId;

    fn sim_phases(phases: &[Phase]) -> PhasedReport {
        let model = NocModel::mesh(2, 2, 1.0);
        Simulator::new(
            &model,
            SimConfig::default(),
            EnergyModel::new(TechnologyProfile::cmos_180nm()),
        )
        .run_phases(phases)
        .unwrap()
    }

    fn phase(label: &str, compute: u64, events: Vec<TrafficEvent>) -> Phase {
        Phase {
            label: label.into(),
            compute_cycles: compute,
            events,
        }
    }

    #[test]
    fn phases_accumulate() {
        let e = |s: usize, d: usize| TrafficEvent::new(0, NodeId(s), NodeId(d), 32);
        let report = sim_phases(&[
            phase("a", 5, vec![e(0, 1)]),
            phase("b", 3, vec![e(1, 3), e(2, 0)]),
        ]);
        assert_eq!(report.compute_cycles, 8);
        assert_eq!(report.packets_delivered, 3);
        assert_eq!(report.phase_reports.len(), 2);
        assert_eq!(
            report.total_cycles,
            report.comm_cycles + report.compute_cycles
        );
        assert!(report.comm_cycles > 0);
        assert!(report.energy.total().joules() > 0.0);
    }

    #[test]
    fn compute_only_trace() {
        let report = sim_phases(&[phase("quiet", 42, Vec::new())]);
        assert_eq!(report.total_cycles, 42);
        assert_eq!(report.comm_cycles, 0);
        assert_eq!(report.packets_delivered, 0);
        assert_eq!(report.avg_packet_latency_cycles, 0.0);
    }

    #[test]
    fn throughput_and_power_helpers() {
        let e = |s: usize, d: usize| TrafficEvent::new(0, NodeId(s), NodeId(d), 32);
        let report = sim_phases(&[phase("a", 10, vec![e(0, 3)])]);
        let mbps = report.throughput_mbps(128.0);
        assert!(mbps > 0.0);
        // 128 bits * 100 MHz / cycles / 1e6.
        let expect = 128.0 * 100.0 / report.total_cycles as f64;
        assert!((mbps - expect).abs() < 1e-9);
        assert!(report.avg_power_watts() > 0.0);
        assert!(report.to_string().contains("cycles/run"));
    }
}
