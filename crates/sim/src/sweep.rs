//! Injection-rate sweeps: the latency-vs-offered-load curves standard in
//! NoC evaluation (and the natural experiment for the routing-strategy
//! future work of the paper's Section 6).

use noc_energy::EnergyModel;

use crate::{traffic, NocModel, SimConfig, SimError, Simulator};

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered injection rate (packets per node per cycle).
    pub injection_rate: f64,
    /// Mean packet latency, cycles.
    pub avg_latency_cycles: f64,
    /// Delivered throughput, payload bits per cycle.
    pub throughput_bits_per_cycle: f64,
    /// Packets delivered at this point.
    pub packets: usize,
}

/// Configuration of a [`sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Injection rates to sample (packets/node/cycle).
    pub rates: Vec<f64>,
    /// Cycles of traffic generated per point.
    pub duration_cycles: u64,
    /// Payload bits per packet.
    pub payload_bits: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Simulator configuration.
    pub sim: SimConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            rates: vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.30],
            duration_cycles: 500,
            payload_bits: 64,
            seed: 1,
            sim: SimConfig::default(),
        }
    }
}

/// Runs a uniform-random Bernoulli load sweep over `model`.
///
/// Each point generates fresh traffic at the given rate and simulates it to
/// completion (closed makespan measurement: the curve turns upward as the
/// network saturates).
///
/// # Errors
///
/// Propagates the first [`SimError`] (e.g. an unroutable pair on a model
/// without all-pairs routes).
///
/// # Examples
///
/// ```
/// use noc_sim::{sweep, NocModel};
/// use noc_energy::{EnergyModel, TechnologyProfile};
///
/// let model = NocModel::mesh(3, 3, 1.0);
/// let config = sweep::SweepConfig {
///     rates: vec![0.02, 0.2],
///     duration_cycles: 100,
///     ..Default::default()
/// };
/// let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
/// let points = sweep::sweep(&model, &config, &energy)?;
/// assert_eq!(points.len(), 2);
/// // Latency grows with load.
/// assert!(points[1].avg_latency_cycles >= points[0].avg_latency_cycles);
/// # Ok::<(), noc_sim::SimError>(())
/// ```
pub fn sweep(
    model: &NocModel,
    config: &SweepConfig,
    energy: &EnergyModel,
) -> Result<Vec<LoadPoint>, SimError> {
    let mut points = Vec::with_capacity(config.rates.len());
    for &rate in &config.rates {
        let events = traffic::bernoulli(
            model.node_count(),
            config.duration_cycles,
            rate,
            config.payload_bits,
            config.seed,
        );
        let report = Simulator::new(model, config.sim, energy.clone()).run(events)?;
        points.push(LoadPoint {
            injection_rate: rate,
            avg_latency_cycles: report.avg_packet_latency_cycles,
            throughput_bits_per_cycle: report.throughput_bits_per_cycle(),
            packets: report.packets_delivered,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_energy::TechnologyProfile;

    fn energy() -> EnergyModel {
        EnergyModel::new(TechnologyProfile::cmos_180nm())
    }

    #[test]
    fn latency_is_monotone_in_load_on_mesh() {
        let model = NocModel::mesh(4, 4, 1.0);
        let config = SweepConfig {
            rates: vec![0.02, 0.10, 0.25],
            duration_cycles: 400,
            ..Default::default()
        };
        let points = sweep(&model, &config, &energy()).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].avg_latency_cycles <= points[1].avg_latency_cycles);
        assert!(points[1].avg_latency_cycles <= points[2].avg_latency_cycles);
    }

    #[test]
    fn zero_rate_point_is_empty_but_valid() {
        let model = NocModel::mesh(2, 2, 1.0);
        let config = SweepConfig {
            rates: vec![0.0],
            duration_cycles: 50,
            ..Default::default()
        };
        let points = sweep(&model, &config, &energy()).unwrap();
        assert_eq!(points[0].packets, 0);
        assert_eq!(points[0].avg_latency_cycles, 0.0);
    }

    #[test]
    fn o1turn_and_xy_sweeps_both_complete() {
        let config = SweepConfig {
            rates: vec![0.05, 0.15],
            duration_cycles: 200,
            ..Default::default()
        };
        let xy = NocModel::mesh(4, 4, 1.0);
        let o1 = NocModel::mesh_o1turn(4, 4, 1.0, 3);
        let a = sweep(&xy, &config, &energy()).unwrap();
        let b = sweep(&o1, &config, &energy()).unwrap();
        assert_eq!(a[0].packets, b[0].packets); // same offered traffic
    }
}
