//! Injection-rate sweeps: the latency-vs-offered-load curves standard in
//! NoC evaluation (and the natural experiment for the routing-strategy
//! future work of the paper's Section 6).

use std::time::Instant;

use noc_energy::EnergyModel;
use noc_graph::NodeId;

use crate::engine::SimState;
use crate::{traffic, NocModel, SimConfig, SimError, SimReport, Simulator};

/// One point of a load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered injection rate (packets per node per cycle).
    pub injection_rate: f64,
    /// Mean packet latency, cycles.
    pub avg_latency_cycles: f64,
    /// Delivered throughput, payload bits per cycle.
    pub throughput_bits_per_cycle: f64,
    /// Packets delivered at this point.
    pub packets: usize,
    /// Total communication energy dissipated at this point, joules.
    pub energy_joules: f64,
}

/// Configuration of a [`sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Injection rates to sample (packets/node/cycle).
    pub rates: Vec<f64>,
    /// Cycles of traffic generated per point.
    pub duration_cycles: u64,
    /// Payload bits per packet.
    pub payload_bits: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Stop the rate ramp once a point's mean latency exceeds this multiple
    /// of the zero-load latency — anchored at the delivered point with the
    /// **lowest offered rate** sampled so far, not simply the first
    /// delivered point: a ramp that starts at a high rate would otherwise
    /// compare against an already-congested baseline and never (or
    /// spuriously) cut. `None` (the default) simulates every configured
    /// rate. Past saturation the closed-loop latency only keeps climbing,
    /// so cutting the ramp saves the most expensive points of a sweep
    /// without changing any point that is reported.
    pub saturation_cutoff: Option<f64>,
    /// Restrict traffic to these source–destination pairs (see
    /// [`traffic::bernoulli_pairs`]). `None` (the default) draws uniform
    /// pairs over all nodes — the right model for meshes, but unroutable
    /// on custom architectures that only provide application routes.
    pub pairs: Option<Vec<(NodeId, NodeId)>>,
    /// Worker threads for rate points: `1` (the default) runs the ramp
    /// sequentially, `0` uses one thread per hardware thread, `n > 1`
    /// dispatches points in waves of `n`. Points are independent (fresh
    /// traffic per rate, one shared compiled core), so the wave results
    /// are folded back **in rate order** and any point a sequential ramp
    /// would not have simulated — past a `saturation_cutoff` hit or a
    /// failing point — is discarded. The reported curve, the first
    /// error, and the recorded
    /// telemetry are therefore identical to the sequential ramp's; only
    /// wall-clock time changes.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            rates: vec![0.02, 0.05, 0.10, 0.15, 0.20, 0.30],
            duration_cycles: 500,
            payload_bits: 64,
            seed: 1,
            sim: SimConfig::default(),
            saturation_cutoff: None,
            pairs: None,
            threads: 1,
        }
    }
}

/// Traffic for one rate point — deterministic in `(config, rate)` alone,
/// which is what makes speculative parallel points fold back exactly.
fn traffic_for(model: &NocModel, config: &SweepConfig, rate: f64) -> Vec<crate::TrafficEvent> {
    match &config.pairs {
        Some(pairs) => traffic::bernoulli_pairs(
            pairs,
            config.duration_cycles,
            rate,
            config.payload_bits,
            config.seed,
        ),
        None => traffic::bernoulli(
            model.node_count(),
            config.duration_cycles,
            rate,
            config.payload_bits,
            config.seed,
        ),
    }
}

/// Runs a uniform-random Bernoulli load sweep over `model`.
///
/// Each point generates fresh traffic at the given rate and simulates it to
/// completion (closed makespan measurement: the curve turns upward as the
/// network saturates). With
/// [`saturation_cutoff`](SweepConfig::saturation_cutoff) set, the ramp
/// stops after the first point whose latency exceeds the cutoff multiple of
/// the zero-load latency, so the returned curve may be shorter than
/// `config.rates`.
///
/// # Errors
///
/// Propagates the first [`SimError`] (e.g. an unroutable pair on a model
/// without all-pairs routes).
///
/// # Examples
///
/// ```
/// use noc_sim::{sweep, NocModel};
/// use noc_energy::{EnergyModel, TechnologyProfile};
///
/// let model = NocModel::mesh(3, 3, 1.0);
/// let config = sweep::SweepConfig {
///     rates: vec![0.02, 0.2],
///     duration_cycles: 100,
///     ..Default::default()
/// };
/// let energy = EnergyModel::new(TechnologyProfile::cmos_180nm());
/// let points = sweep::sweep(&model, &config, &energy)?;
/// assert_eq!(points.len(), 2);
/// // Latency grows with load.
/// assert!(points[1].avg_latency_cycles >= points[0].avg_latency_cycles);
/// # Ok::<(), noc_sim::SimError>(())
/// ```
pub fn sweep(
    model: &NocModel,
    config: &SweepConfig,
    energy: &EnergyModel,
) -> Result<Vec<LoadPoint>, SimError> {
    let telemetry = noc_telemetry::active();
    let threads = if config.threads == 0 {
        rayon::current_num_threads().max(1)
    } else {
        config.threads
    };
    // One compiled core (and one energy-model clone) for the whole ramp.
    let sim = Simulator::new(model, config.sim, energy.clone());
    let mut points = Vec::with_capacity(config.rates.len());
    // Zero-load anchor: (offered rate, latency) of the delivered point
    // with the lowest rate so far. On an ascending ramp this is the first
    // delivered point; on a ramp that opens past saturation it re-anchors
    // as soon as a lower-rate point delivers, so the cutoff never
    // compares against a congested baseline.
    let mut zero_load: Option<(f64, f64)> = None;
    // Engine states: one reused across the whole sequential ramp, or one
    // per wave slot under threads > 1.
    let mut state = SimState::default();
    let mut slot_states: Vec<SimState> = Vec::new();

    let mut idx = 0usize;
    'ramp: while idx < config.rates.len() {
        let wave = if threads <= 1 {
            1
        } else {
            threads.min(config.rates.len() - idx)
        };
        let mut results: Vec<Option<(Result<SimReport, SimError>, std::time::Duration)>> =
            (0..wave).map(|_| None).collect();
        if wave == 1 {
            let rate = config.rates[idx];
            let t0 = Instant::now();
            let events = traffic_for(model, config, rate);
            results[0] = Some((sim.run_in(&mut state, &events), t0.elapsed()));
        } else {
            // Speculative wave: points past a cutoff or an error are
            // simulated here but discarded in the in-order fold below, so
            // the reported curve equals the sequential one.
            while slot_states.len() < wave {
                slot_states.push(SimState::default());
            }
            let sim = &sim;
            rayon::scope(|s| {
                for ((slot, st), &rate) in results
                    .iter_mut()
                    .zip(slot_states.iter_mut())
                    .zip(&config.rates[idx..idx + wave])
                {
                    s.spawn(move |_| {
                        let t0 = Instant::now();
                        let events = traffic_for(model, config, rate);
                        *slot = Some((sim.run_in(st, &events), t0.elapsed()));
                    });
                }
            });
        }

        // Fold the wave in rate order: the first error or cutoff wins and
        // every later (speculated) result is dropped unrecorded.
        for (k, res) in results.into_iter().enumerate() {
            let rate = config.rates[idx + k];
            let (outcome, elapsed) = res.expect("wave slot completed");
            let report = outcome?;
            let point = LoadPoint {
                injection_rate: rate,
                avg_latency_cycles: report.avg_packet_latency_cycles,
                throughput_bits_per_cycle: report.throughput_bits_per_cycle(),
                packets: report.packets_delivered,
                energy_joules: report.energy.total().joules(),
            };
            let latency = point.avg_latency_cycles;
            let delivered = point.packets > 0;
            if let Some(tel) = telemetry {
                tel.add("sim.sweep.points", 1);
                tel.span_event(
                    "sim.sweep.point",
                    elapsed,
                    &[
                        ("rate", rate.into()),
                        ("packets", point.packets.into()),
                        ("latency_cycles", latency.into()),
                    ],
                );
            }
            points.push(point);
            if delivered && zero_load.is_none_or(|(anchor_rate, _)| rate < anchor_rate) {
                zero_load = Some((rate, latency));
            }
            if let (Some(cutoff), Some((anchor_rate, baseline))) =
                (config.saturation_cutoff, zero_load)
            {
                if latency > cutoff * baseline {
                    if let Some(tel) = telemetry {
                        tel.add("sim.sweep.cutoffs", 1);
                        tel.event(
                            "sim.sweep.saturation_cutoff",
                            &[
                                ("rate", rate.into()),
                                ("latency_cycles", latency.into()),
                                ("anchor_rate", anchor_rate.into()),
                                ("anchor_latency_cycles", baseline.into()),
                            ],
                        );
                    }
                    break 'ramp;
                }
            }
        }
        idx += wave;
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_energy::TechnologyProfile;

    fn energy() -> EnergyModel {
        EnergyModel::new(TechnologyProfile::cmos_180nm())
    }

    #[test]
    fn latency_is_monotone_in_load_on_mesh() {
        let model = NocModel::mesh(4, 4, 1.0);
        let config = SweepConfig {
            rates: vec![0.02, 0.10, 0.25],
            duration_cycles: 400,
            ..Default::default()
        };
        let points = sweep(&model, &config, &energy()).unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].avg_latency_cycles <= points[1].avg_latency_cycles);
        assert!(points[1].avg_latency_cycles <= points[2].avg_latency_cycles);
    }

    #[test]
    fn zero_rate_point_is_empty_but_valid() {
        let model = NocModel::mesh(2, 2, 1.0);
        let config = SweepConfig {
            rates: vec![0.0],
            duration_cycles: 50,
            ..Default::default()
        };
        let points = sweep(&model, &config, &energy()).unwrap();
        assert_eq!(points[0].packets, 0);
        assert_eq!(points[0].avg_latency_cycles, 0.0);
    }

    #[test]
    fn saturation_cutoff_truncates_the_ramp() {
        let model = NocModel::mesh(4, 4, 1.0);
        let saturating = vec![0.02, 0.45, 0.55, 0.65, 0.75];
        let full = sweep(
            &model,
            &SweepConfig {
                rates: saturating.clone(),
                duration_cycles: 400,
                ..Default::default()
            },
            &energy(),
        )
        .unwrap();
        assert_eq!(full.len(), saturating.len(), "default keeps every rate");

        let cut = sweep(
            &model,
            &SweepConfig {
                rates: saturating,
                duration_cycles: 400,
                saturation_cutoff: Some(2.0),
                ..Default::default()
            },
            &energy(),
        )
        .unwrap();
        assert!(cut.len() < full.len(), "cutoff should stop the ramp early");
        // The points that are reported are identical to the full sweep.
        assert_eq!(cut, full[..cut.len()]);
        // Everything before the stopping point is below the cutoff.
        let zero_load = cut[0].avg_latency_cycles;
        for p in &cut[..cut.len() - 1] {
            assert!(p.avg_latency_cycles <= 2.0 * zero_load);
        }
    }

    #[test]
    fn cutoff_anchors_at_the_lowest_rate_not_the_first_delivered() {
        // A ramp that *opens* past saturation: the first delivered point
        // is already congested. Anchoring zero-load there (the pre-fix
        // behavior) inflates the baseline by the congestion factor, so a
        // later saturated point never exceeds cutoff × baseline and the
        // ramp runs to the end. Anchoring at the lowest offered rate
        // re-baselines when the genuine low-load point arrives, and the
        // next saturated point cuts the ramp.
        let model = NocModel::mesh(4, 4, 1.0);
        let rates = vec![0.45, 0.02, 0.55, 0.65];
        let config = SweepConfig {
            rates: rates.clone(),
            duration_cycles: 400,
            saturation_cutoff: Some(2.0),
            ..Default::default()
        };
        let points = sweep(&model, &config, &energy()).unwrap();
        // Sanity: the opening point really is past saturation relative to
        // the true zero-load latency measured at rate 0.02.
        assert!(points[0].avg_latency_cycles > 2.0 * points[1].avg_latency_cycles);
        // The 0.55 point exceeds 2 × the (re-anchored) zero-load latency,
        // so the ramp stops there instead of simulating 0.65 too.
        assert_eq!(points.len(), 3, "ramp should cut after the 0.55 point");
        assert_eq!(points[2].injection_rate, 0.55);
        // And every reported point matches the uncut sweep.
        let full = sweep(
            &model,
            &SweepConfig {
                rates,
                duration_cycles: 400,
                ..Default::default()
            },
            &energy(),
        )
        .unwrap();
        assert_eq!(points, full[..points.len()]);
    }

    #[test]
    fn pair_restricted_sweep_only_loads_those_pairs() {
        use noc_graph::NodeId;
        let model = NocModel::mesh(3, 3, 1.0);
        let pairs = vec![(NodeId(0), NodeId(8)), (NodeId(4), NodeId(2))];
        let points = sweep(
            &model,
            &SweepConfig {
                rates: vec![0.5],
                duration_cycles: 200,
                pairs: Some(pairs),
                ..Default::default()
            },
            &energy(),
        )
        .unwrap();
        assert!(points[0].packets > 0);
        // Two sources at rate 0.5 over 200 cycles ≈ 200 offered packets;
        // uniform traffic over 9 nodes would offer ~900.
        assert!(points[0].packets < 400);
    }

    #[test]
    fn points_account_energy() {
        let model = NocModel::mesh(3, 3, 1.0);
        let points = sweep(
            &model,
            &SweepConfig {
                rates: vec![0.05, 0.15],
                duration_cycles: 200,
                ..Default::default()
            },
            &energy(),
        )
        .unwrap();
        assert!(points[0].energy_joules > 0.0);
        // More offered traffic dissipates more energy.
        assert!(points[1].energy_joules > points[0].energy_joules);
    }

    #[test]
    fn an_active_trace_records_each_point_without_changing_the_curve() {
        // The sweep reads only the process-wide handle, so this test
        // installs it — and because the unit-test binary runs its tests
        // concurrently against that shared log, it marks its own events
        // with distinctive injection rates and filters on them.
        let model = NocModel::mesh(4, 4, 1.0);
        let markers = [0.0123, 0.9371];
        let config = SweepConfig {
            rates: markers.to_vec(),
            duration_cycles: 400,
            saturation_cutoff: Some(2.0),
            ..Default::default()
        };
        let untraced = sweep(&model, &config, &energy()).unwrap();
        noc_telemetry::install(noc_telemetry::Telemetry::recording());
        let traced = sweep(&model, &config, &energy()).unwrap();
        assert_eq!(traced, untraced, "tracing must not change the curve");

        let tel = noc_telemetry::active().expect("handle just installed");
        let is_marked = |e: &&noc_telemetry::Event| {
            e.fields.iter().any(|(k, v)| {
                k == "rate" && matches!(v, noc_telemetry::Field::F64(r) if markers.contains(r))
            })
        };
        let events = tel.drain();
        let points: Vec<_> = events
            .iter()
            .filter(|e| e.name == "sim.sweep.point")
            .filter(is_marked)
            .collect();
        assert_eq!(points.len(), traced.len(), "one point span per rate");
        assert!(points.iter().all(|e| e.dur_us.is_some()));
        // The saturated second rate trips the cutoff, and the event
        // names the low-rate anchor the decision was made against.
        let cutoffs: Vec<_> = events
            .iter()
            .filter(|e| e.name == "sim.sweep.saturation_cutoff")
            .filter(is_marked)
            .collect();
        assert_eq!(cutoffs.len(), 1, "the 0.9371 point must cut the ramp");
        assert!(cutoffs[0].fields.iter().any(|(k, v)| {
            k == "anchor_rate" && matches!(v, noc_telemetry::Field::F64(r) if *r == markers[0])
        }));
    }

    #[test]
    fn thread_count_never_changes_the_curve() {
        // Parallel waves speculate past cutoffs and fold in rate order, so
        // every thread count must reproduce the sequential curve exactly —
        // including the truncation point when a cutoff fires.
        let model = NocModel::mesh(4, 4, 1.0);
        for cutoff in [None, Some(2.0)] {
            let mk = |threads: usize| SweepConfig {
                rates: vec![0.02, 0.45, 0.55, 0.65],
                duration_cycles: 300,
                saturation_cutoff: cutoff,
                threads,
                ..Default::default()
            };
            let sequential = sweep(&model, &mk(1), &energy()).unwrap();
            for threads in [2, 3, 0] {
                let parallel = sweep(&model, &mk(threads), &energy()).unwrap();
                assert_eq!(parallel, sequential, "threads={threads} cutoff={cutoff:?}");
            }
        }
    }

    #[test]
    fn parallel_sweep_reports_the_first_error_only() {
        // Rate points on a model with no routes all fail; the parallel
        // fold must surface the same (first) error as the sequential ramp.
        let topo = noc_graph::DiGraph::from_edges(2, [(0, 1)]).unwrap();
        let model = NocModel::from_parts(
            "routeless",
            topo,
            std::collections::BTreeMap::new(),
            std::collections::BTreeMap::new(),
            1.0,
        );
        let mk = |threads: usize| SweepConfig {
            rates: vec![0.4, 0.5],
            duration_cycles: 50,
            threads,
            ..Default::default()
        };
        let sequential = sweep(&model, &mk(1), &energy()).unwrap_err();
        let parallel = sweep(&model, &mk(2), &energy()).unwrap_err();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn credit_mode_knees_earlier_than_ideal_across_thread_counts() {
        // The credit pipeline congests sooner than the ideal router: the
        // same cutoff truncates the credit ramp at a strictly lower rate.
        // And like the ideal sweep, speculative waves must fold to the
        // sequential curve — truncation point included — for every
        // thread count.
        use crate::{CreditConfig, RouterFidelity};
        let model = NocModel::mesh(4, 4, 1.0);
        let rates = vec![0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25];
        // A deep pipeline (2-cycle switch traversal, slow credit loop)
        // so the credit knee sits well clear of the ideal one.
        let pipe = CreditConfig {
            rc_cycles: 1,
            st_cycles: 2,
            credit_return_cycles: 4,
        };
        let mk = |router: RouterFidelity, threads: usize| SweepConfig {
            rates: rates.clone(),
            duration_cycles: 400,
            saturation_cutoff: Some(2.8),
            threads,
            sim: crate::SimConfig {
                router,
                ..crate::SimConfig::default()
            },
            ..Default::default()
        };
        let ideal = sweep(&model, &mk(RouterFidelity::Ideal, 1), &energy()).unwrap();
        let credit = sweep(&model, &mk(RouterFidelity::Credit(pipe), 1), &energy()).unwrap();
        assert!(
            credit.len() < ideal.len(),
            "credit ramp must knee earlier: credit {} points vs ideal {}",
            credit.len(),
            ideal.len()
        );
        assert!(credit.len() < rates.len(), "credit cutoff must fire");
        // The cutoff anchored at the true zero-load point: every reported
        // point except the saturated last one stays under the knee.
        let zero_load = credit[0].avg_latency_cycles;
        for p in &credit[..credit.len() - 1] {
            assert!(p.avg_latency_cycles <= 2.8 * zero_load);
        }
        assert!(credit.last().unwrap().avg_latency_cycles > 2.8 * zero_load);
        for threads in [2, 4] {
            let parallel = sweep(
                &model,
                &mk(RouterFidelity::Credit(pipe), threads),
                &energy(),
            )
            .unwrap();
            assert_eq!(parallel, credit, "threads={threads}");
        }
    }

    #[test]
    fn credit_cutoff_reanchors_at_the_lowest_rate_across_thread_counts() {
        // The anchor rule under credit fidelity: a ramp that opens past
        // saturation re-baselines when the genuine low-load point
        // arrives, then cuts at the first point past cutoff × anchor —
        // identically for threads ∈ {1, 2, 4}.
        use crate::{CreditConfig, RouterFidelity};
        let model = NocModel::mesh(4, 4, 1.0);
        let mk = |threads: usize| SweepConfig {
            rates: vec![0.45, 0.02, 0.55, 0.65],
            duration_cycles: 400,
            saturation_cutoff: Some(2.0),
            threads,
            sim: crate::SimConfig {
                router: RouterFidelity::Credit(CreditConfig::default()),
                ..crate::SimConfig::default()
            },
            ..Default::default()
        };
        let points = sweep(&model, &mk(1), &energy()).unwrap();
        // The congested opener does not trip the cutoff against itself…
        assert!(points[0].avg_latency_cycles > 2.0 * points[1].avg_latency_cycles);
        // …and the first point past the re-anchored baseline ends the ramp.
        assert_eq!(points.len(), 3, "ramp should cut after the 0.55 point");
        assert_eq!(points[2].injection_rate, 0.55);
        for threads in [2, 4] {
            let parallel = sweep(&model, &mk(threads), &energy()).unwrap();
            assert_eq!(parallel, points, "threads={threads}");
        }
    }

    #[test]
    fn o1turn_and_xy_sweeps_both_complete() {
        let config = SweepConfig {
            rates: vec![0.05, 0.15],
            duration_cycles: 200,
            ..Default::default()
        };
        let xy = NocModel::mesh(4, 4, 1.0);
        let o1 = NocModel::mesh_o1turn(4, 4, 1.0, 3);
        let a = sweep(&xy, &config, &energy()).unwrap();
        let b = sweep(&o1, &config, &energy()).unwrap();
        assert_eq!(a[0].packets, b[0].packets); // same offered traffic
    }
}
