//! The event-driven simulator engine: compiled models, active-channel
//! scheduling and flat buffers.
//!
//! [`SimCore`] is the "compile once, simulate many" half: built once per
//! [`Simulator`](crate::Simulator), it lowers the model into dense arrays —
//! a channel index, per-node input-channel lists, every route as a sequence
//! of channel indices, and the per-node/per-channel energy constants — so
//! the cycle loop never touches a `BTreeMap` or re-derives a radix. One
//! core serves every point of a sweep and every phase of a phased run.
//!
//! [`SimState`] is the mutable half: flat ring buffers in one slab,
//! staged-arrival counters, wormhole locks and round-robin pointers, all
//! reusable across runs without reallocation.
//!
//! The loop itself is the same three phases as the reference semantics
//! (see [`crate::reference`]), driven by two *active sets* instead of full
//! rescans:
//!
//! * `eject` — channels whose head-of-buffer flit has finished its route
//!   and will leave in phase 1;
//! * `outs` — output channels with at least one possible requester (a
//!   released local packet or a buffered head wanting that channel).
//!
//! **Active-set invariant:** a channel's bit is set whenever a *grant*
//! could be possible there, and is cleared when a phase-2 visit grants
//! nothing (no candidates, or all of them lock- or credit-blocked). A
//! grantless visit is a no-op in the reference loop too — the round-robin
//! pointer only advances on a grant — so skipping it cannot change any
//! grant, any energy accumulation order, or any error cycle. Bits are
//! (re)set at exactly the points where a grant can become possible:
//!
//! * a new candidate appears — a packet release, an arrival revealing a
//!   new buffer head, a pop revealing the next head, a tail injection
//!   revealing the next pending packet;
//! * a credit frees — any pop from the channel's own downstream buffers
//!   re-arms it (live bitset insertion gives the same same-cycle /
//!   next-cycle visibility the reference's ascending scan has);
//! * a lock changes — locks only transition during the channel's own
//!   grants, and the bit stays set after a granting visit.
//!
//! When both sets are empty nothing can move, and nothing can become
//! movable before the next pending release, so the loop consults a
//! next-release heap and jumps over the idle stretch in O(1) — unless the
//! reference loop would have declared deadlock or hit the watchdog first,
//! in which case the same error is produced at the same cycle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use noc_energy::{Energy, EnergyBreakdown, EnergyModel};
use noc_graph::NodeId;

use crate::{
    BlockedVc, NocModel, RoutePolicy, RouterFidelity, SimConfig, SimError, SimReport, TrafficEvent,
};

/// Sentinel "no route" entry in the pair tables.
const NO_ROUTE: u32 = u32::MAX;
/// Port code of the local injection port in candidates and lock words.
pub(crate) const LOCAL_PORT: u32 = u32::MAX;
/// Lock word for an unlocked (channel, VC).
pub(crate) const LOCK_NONE: u64 = u64::MAX;
/// `head_out` value of an empty (channel, VC) buffer.
pub(crate) const HEAD_NONE: u32 = u32::MAX;
/// Tail-flit marker carried in [`FlitSlot::idx`]'s top bit, so neither the
/// grant commit nor a non-final ejection has to consult the packet table.
pub(crate) const IDX_TAIL: u32 = 1 << 31;
/// Mask recovering the flit index from [`FlitSlot::idx`].
pub(crate) const IDX_MASK: u32 = IDX_TAIL - 1;
/// `head_out` value of a head flit that has finished its route.
pub(crate) const HEAD_EJECT: u32 = u32::MAX - 1;

/// A fixed-capacity bitset over channel indices supporting in-order
/// iteration with live insertion: bits set at positions not yet visited
/// during an ascending scan are picked up by the same scan, mirroring how
/// the reference loop sees state changed earlier in the same cycle.
#[derive(Debug, Default)]
struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    fn reset(&mut self, bits: usize) {
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Lowest set bit at index `from` or above.
    #[inline]
    fn next_at_or_after(&self, from: usize) -> Option<usize> {
        let mut wi = from >> 6;
        if wi >= self.words.len() {
            return None;
        }
        let mut w = self.words[wi] & (!0u64 << (from & 63));
        loop {
            if w != 0 {
                return Some((wi << 6) + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }
}

/// One flit in a buffer slot or staged arrival. Kind is derived: the flit
/// is the head iff the index part of `idx` is zero and the tail iff its
/// [`IDX_TAIL`] bit is set (stamped once at emission), so the hot paths
/// never consult the packet table for non-final flits.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FlitSlot {
    /// Owning packet index.
    pub(crate) pkt: u32,
    /// Flit index within the packet (`& IDX_MASK`, 0 = head), with the
    /// tail marker in the top bit.
    pub(crate) idx: u32,
    /// Index into `SimCore::route_chan`/`route_vc` of the next hop to
    /// take (`route_off[route] + hop`) — resolving a head's requested
    /// channel is a single array load, with the end-of-route sentinel
    /// standing in for ejection.
    pub(crate) ri: u32,
}

/// Per-run packet bookkeeping (the compiled-route analogue of `Packet`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PacketRun {
    /// Compiled route id (index into `SimCore::route_off`).
    pub(crate) route: u32,
    /// Total flits (header + payload).
    pub(crate) flits: u32,
    /// Release cycle.
    pub(crate) release: u64,
    /// Injection cycle of the head flit (`u64::MAX` until injected).
    pub(crate) inject: u64,
    /// Payload bits, for throughput accounting.
    pub(crate) payload_bits: u64,
}

/// A phase-2 grant candidate: input port and its head flit. The output
/// VC it requests is `route_vc[slot.ri]`.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    /// `LOCAL_PORT` or the flat `(in_channel, vc)` buffer index.
    port: u32,
    /// The flit that would move.
    slot: FlitSlot,
}

/// The compiled, immutable half of the simulator: everything derivable
/// from (model, config, energy model) alone, built once in
/// [`Simulator::new`](crate::Simulator::new).
#[derive(Debug)]
pub(crate) struct SimCore {
    pub(crate) name: String,
    pub(crate) config: SimConfig,
    energy: EnergyModel,
    pub(crate) n_nodes: usize,
    pub(crate) num_vcs: usize,
    /// Channels as `(src, dst)` node indices, in the model's link order.
    pub(crate) channels: Vec<(u32, u32)>,
    /// Buffer-slot layout, grouped by destination node: channel `c`'s VC
    /// buffers occupy slots `chan_slot[c] .. chan_slot[c] + num_vcs`, and
    /// node `v`'s input slots are the contiguous range
    /// `node_slot_off[v] .. node_slot_off[v + 1]` (in-channels ascending,
    /// VCs ascending) — so a phase-2 candidate scan is one linear walk.
    pub(crate) chan_slot: Vec<u32>,
    pub(crate) node_slot_off: Vec<u32>,
    /// Owning channel of each buffer slot.
    pub(crate) slot_channel: Vec<u32>,
    /// Bit index of each slot within its node's group, for the requester
    /// masks (valid only when `masks_ok`).
    slot_bit: Vec<u8>,
    /// Whether every node's input-slot group fits a 64-bit requester mask;
    /// when false, phase 2 falls back to scanning the slot range.
    masks_ok: bool,
    /// Per-node router radix (for end-of-run idle energy).
    pub(crate) radix: Vec<usize>,
    /// Per-node switch traversal energy at `flit_bits`.
    pub(crate) switch_energy: Vec<Energy>,
    /// Per-channel link traversal energy at `flit_bits`.
    pub(crate) link_energy: Vec<Energy>,
    /// Compiled routes: route `r` covers channel ids
    /// `route_chan[route_off[r]..route_off[r + 1]]` with per-hop VCs in
    /// `route_vc` at the same indices.
    pub(crate) route_chan: Vec<u32>,
    pub(crate) route_vc: Vec<u32>,
    pub(crate) route_off: Vec<u32>,
    /// Dense `src * n + dst` tables of compiled route ids (`NO_ROUTE` when
    /// the pair is unroutable).
    pair_primary: Vec<u32>,
    pair_alt: Vec<u32>,
    policy: RoutePolicy,
    /// Whether the model has *any* alternate routes (the stochastic policy
    /// falls back to the primary table when it has none).
    has_alt: bool,
}

impl SimCore {
    /// Lowers `model` into flat tables. Panics (like the reference loop
    /// would lazily) if a route hop is not a channel.
    pub(crate) fn compile(model: &NocModel, config: SimConfig, energy: EnergyModel) -> SimCore {
        let pairs: Vec<(NodeId, NodeId)> = model.links().map(|(c, _)| c).collect();
        let channel_index: std::collections::BTreeMap<(NodeId, NodeId), u32> = pairs
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        let n = model.node_count();
        let num_vcs = model.num_vcs().max(1);

        let mut in_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &(_, d)) in pairs.iter().enumerate() {
            in_lists[d.index()].push(i as u32);
        }
        let mut chan_slot = vec![0u32; pairs.len()];
        let mut slot_channel = Vec::with_capacity(pairs.len() * num_vcs);
        let mut node_slot_off = Vec::with_capacity(n + 1);
        node_slot_off.push(0u32);
        for l in &in_lists {
            for &c in l {
                chan_slot[c as usize] = slot_channel.len() as u32;
                slot_channel.extend(std::iter::repeat_n(c, num_vcs));
            }
            node_slot_off.push(slot_channel.len() as u32);
        }
        let mut slot_bit = vec![0u8; slot_channel.len()];
        let mut masks_ok = true;
        for v in 0..n {
            let (lo, hi) = (node_slot_off[v] as usize, node_slot_off[v + 1] as usize);
            masks_ok &= hi - lo <= 64;
            for (b, sb) in slot_bit[lo..hi].iter_mut().enumerate() {
                *sb = (b & 63) as u8;
            }
        }

        let radix: Vec<usize> = (0..n).map(|v| model.node_radix(NodeId(v))).collect();
        let switch_energy = radix
            .iter()
            .map(|&r| energy.switch_event_energy_radix(config.flit_bits as f64, r))
            .collect();
        let link_energy = pairs
            .iter()
            .map(|&(a, b)| {
                energy.link_event_energy(config.flit_bits as f64, model.link_length_mm(a, b))
            })
            .collect();

        let mut route_chan = Vec::new();
        let mut route_vc = Vec::new();
        let mut route_off = vec![0u32];
        let mut pair_primary = vec![NO_ROUTE; n * n];
        let mut pair_alt = vec![NO_ROUTE; n * n];
        let mut compile_route = |path: &[NodeId], vcs: &[usize]| -> u32 {
            debug_assert_eq!(path.len() - 1, vcs.len(), "one VC per hop");
            let id = route_off.len() as u32 - 1;
            for (w, &vc) in path.windows(2).zip(vcs) {
                route_chan.push(
                    *channel_index
                        .get(&(w[0], w[1]))
                        .expect("route hop is a channel"),
                );
                route_vc.push(vc as u32);
            }
            // End-of-route sentinel: a head whose route index reaches it
            // reads `HEAD_EJECT` as its "requested channel" directly.
            route_chan.push(HEAD_EJECT);
            route_vc.push(0);
            route_off.push(route_chan.len() as u32);
            id
        };
        for (&(s, d), path) in model.routes_map() {
            if let Some(vcs) = model.vcs_map().get(&(s, d)) {
                pair_primary[s.index() * n + d.index()] = compile_route(path, vcs);
            }
        }
        for (&(s, d), path) in model.alt_routes_map() {
            if let Some(vcs) = model.alt_vcs_map().get(&(s, d)) {
                pair_alt[s.index() * n + d.index()] = compile_route(path, vcs);
            }
        }

        SimCore {
            name: model.name().to_string(),
            config,
            energy,
            n_nodes: n,
            num_vcs,
            channels: pairs
                .iter()
                .map(|&(a, b)| (a.index() as u32, b.index() as u32))
                .collect(),
            chan_slot,
            node_slot_off,
            slot_channel,
            slot_bit,
            masks_ok,
            radix,
            switch_energy,
            link_energy,
            route_chan,
            route_vc,
            route_off,
            pair_primary,
            pair_alt,
            policy: model.policy(),
            has_alt: !model.alt_routes_map().is_empty(),
        }
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Channel-id range of compiled route `r` (`links` excludes the
    /// end-of-route sentinel entry).
    #[inline]
    pub(crate) fn route_span(&self, r: u32) -> (usize, usize) {
        let off = self.route_off[r as usize] as usize;
        (off, self.route_off[r as usize + 1] as usize - off - 1)
    }

    /// Replicates `NocModel::route_for_packet`'s per-packet route choice on
    /// the compiled tables.
    pub(crate) fn route_id_for(&self, src: usize, dst: usize, packet_idx: usize) -> Option<u32> {
        let primary = self.pair_primary[src * self.n_nodes + dst];
        let pick_primary = match self.policy {
            RoutePolicy::Fixed => true,
            RoutePolicy::Stochastic { seed } => {
                let mut h = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(packet_idx as u64);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                h & 1 == 0 || !self.has_alt
            }
        };
        let id = if pick_primary {
            primary
        } else {
            self.pair_alt[src * self.n_nodes + dst]
        };
        (id != NO_ROUTE).then_some(id)
    }
}

/// The mutable half of a simulation: one flat slab of ring buffers plus
/// the scheduling state. Reusable across runs (and across sweep points /
/// phases) without reallocation; `SimCore::run` resets it first.
#[derive(Debug, Default)]
pub(crate) struct SimState {
    /// Ring-buffer slab, indexed `slot * buffer_flits + k` with slots in
    /// the core's node-grouped layout (`SimCore::chan_slot`).
    buf: Vec<FlitSlot>,
    /// Ring head position per buffer slot.
    buf_head: Vec<u32>,
    /// Occupancy per buffer slot.
    buf_len: Vec<u32>,
    /// Cycle stamp of each slot's latest arrival. `buf_len` includes
    /// same-cycle arrivals (so it doubles as the credit count), and this
    /// stamp keeps an arrival from becoming a *visible* head before
    /// phase 3: a pop that leaves only a flit stamped with the current
    /// cycle defers the reveal.
    fresh: Vec<u64>,
    /// Wormhole locks per `(channel, vc)`: `(port << 32) | packet`.
    locks: Vec<u64>,
    /// Output channel the current head flit of each `(channel, vc)` buffer
    /// requests — a cache of `route_chan[off + hop]`, refreshed only when
    /// the head changes, so a phase-2 probe is one compare instead of a
    /// route-table walk. [`HEAD_NONE`] when empty, [`HEAD_EJECT`] when the
    /// head has finished its route.
    head_out: Vec<u32>,
    /// Copy of the current head flit per slot (valid when the slot is
    /// non-empty), so probes and pops skip the ring indexing.
    head_flit: Vec<FlitSlot>,
    /// Round-robin pointers per output channel.
    rr: Vec<u32>,
    /// Channels with an ejectable head flit.
    eject: ActiveSet,
    /// Output channels with a possible requester.
    outs: ActiveSet,
    /// Per-output-channel bitmask of requesting input slots, with bit `b`
    /// standing for slot `node_slot_off[src(c)] + b`. Maintained by
    /// `refresh_head` so a phase-2 visit iterates exactly its requesters.
    req_mask: Vec<u64>,
    /// `(slot, requested channel)` of slots whose sole flit arrived this
    /// cycle — either stored into an empty slot at grant time, or stranded
    /// as the last remaining flit by a later pop. The flit, its occupancy
    /// and the `head_flit` cache land immediately; phase 3 only publishes
    /// `head_out` (what probes read), keeping the arrival invisible until
    /// then.
    arrivals: Vec<(u32, u32)>,
    /// Phase-2 scratch candidate list.
    cands: Vec<Candidate>,
    /// Per-node pending packet ids ordered by `(release, id)`; `cursor`
    /// marks the current front.
    pending: Vec<Vec<u32>>,
    cursor: Vec<u32>,
    /// First-hop channel requested by each node's *released* front packet
    /// ([`HEAD_NONE`] when the front is missing or not yet released) — the
    /// local-port analogue of `head_out`, refreshed at release wakes and
    /// tail injections.
    local_out: Vec<u32>,
    /// First-hop route index of the released front (valid like `local_vc`).
    local_ri: Vec<u32>,
    /// Packet id and flit count of the released front (valid like
    /// `local_vc`), caching the pending-queue and packet-table lookups out
    /// of the per-visit path.
    local_pid: Vec<u32>,
    local_flits: Vec<u32>,
    /// Flits already emitted of each node's front packet.
    emit: Vec<u32>,
    /// Next-release heap of `(release_cycle, node)` for idle skipping.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Per-run packet table.
    pkts: Vec<PacketRun>,
    /// Scratch for the release-order sort.
    order: Vec<u32>,
    /// State of the credit-based router model — untouched (and empty) when
    /// the configured fidelity is [`RouterFidelity::Ideal`].
    credit: crate::router::CreditState,
}

impl SimState {
    fn reset(&mut self, core: &SimCore, packets: usize) {
        let ncvc = core.channels.len() * core.num_vcs;
        self.buf.clear();
        self.buf
            .resize(ncvc * core.config.buffer_flits, FlitSlot::default());
        self.buf_head.clear();
        self.buf_head.resize(ncvc, 0);
        self.buf_len.clear();
        self.buf_len.resize(ncvc, 0);
        self.fresh.clear();
        self.fresh.resize(ncvc, u64::MAX);
        self.locks.clear();
        self.locks.resize(ncvc, LOCK_NONE);
        self.head_out.clear();
        self.head_out.resize(ncvc, HEAD_NONE);
        self.head_flit.clear();
        self.head_flit.resize(ncvc, FlitSlot::default());
        self.rr.clear();
        self.rr.resize(core.channels.len(), 0);
        self.eject.reset(core.channels.len());
        self.outs.reset(core.channels.len());
        self.req_mask.clear();
        self.req_mask.resize(core.channels.len(), 0);
        self.arrivals.clear();
        self.cands.clear();
        self.pending.resize(core.n_nodes, Vec::new());
        for q in &mut self.pending {
            q.clear();
        }
        self.cursor.clear();
        self.cursor.resize(core.n_nodes, 0);
        self.local_out.clear();
        self.local_out.resize(core.n_nodes, HEAD_NONE);
        self.local_ri.clear();
        self.local_ri.resize(core.n_nodes, 0);
        self.local_pid.clear();
        self.local_pid.resize(core.n_nodes, 0);
        self.local_flits.clear();
        self.local_flits.resize(core.n_nodes, 0);
        self.emit.clear();
        self.emit.resize(core.n_nodes, 0);
        self.heap.clear();
        self.pkts.clear();
        self.pkts.reserve(packets);
        self.order.clear();
    }
}

impl SimCore {
    /// Recomputes the cached head request of buffer `cvc` after a pop. A
    /// sole remaining flit that arrived this `cycle` is not yet a head:
    /// its `head_flit` cache is filled here, but `head_out` stays
    /// [`HEAD_NONE`] and the slot re-enters `arrivals`, publishing in
    /// phase 3 instead.
    #[inline]
    fn refresh_head(&self, st: &mut SimState, cvc: usize, cycle: u64) {
        let old = st.head_out[cvc];
        let len = st.buf_len[cvc];
        if len == 0 || (len == 1 && st.fresh[cvc] == cycle) {
            st.head_out[cvc] = HEAD_NONE;
            if len == 1 {
                let head = st.buf[cvc * self.config.buffer_flits + st.buf_head[cvc] as usize];
                st.head_flit[cvc] = head;
                st.arrivals
                    .push((cvc as u32, self.route_chan[head.ri as usize]));
            }
        } else {
            let head = st.buf[cvc * self.config.buffer_flits + st.buf_head[cvc] as usize];
            st.head_flit[cvc] = head;
            st.head_out[cvc] = self.route_chan[head.ri as usize];
        }
        // Keep the requester masks in sync (channel ids are the only
        // `head_out` values below the sentinels).
        let new = st.head_out[cvc];
        if self.masks_ok && old != new {
            let bit = 1u64 << self.slot_bit[cvc];
            if old < HEAD_EJECT {
                st.req_mask[old as usize] &= !bit;
            }
            if new < HEAD_EJECT {
                st.req_mask[new as usize] |= bit;
            }
        }
    }

    /// Runs `events` to completion on `state`, producing a report
    /// bit-identical to [`crate::reference::run_reference`].
    pub(crate) fn run(
        &self,
        st: &mut SimState,
        events: &[TrafficEvent],
    ) -> Result<SimReport, SimError> {
        let tel = noc_telemetry::active();
        let _span = tel.map(|t| {
            t.span("sim.run")
                .field("model", self.name.as_str())
                .field("packets", events.len())
        });
        assert!(
            events.len() < u32::MAX as usize,
            "packet count must fit the engine's 32-bit ids"
        );
        if let RouterFidelity::Credit(pipe) = self.config.router {
            return crate::router::run_credit(self, pipe, &mut st.credit, events, tel);
        }
        st.reset(self, events.len());
        let vcs = self.num_vcs;
        let cap = self.config.buffer_flits;
        let cap32 = cap as u32;

        // Build the packet table (route choice is per packet — O1TURN).
        for (idx, ev) in events.iter().enumerate() {
            let route = self
                .route_id_for(ev.src.index(), ev.dst.index(), idx)
                .ok_or(SimError::NoRoute {
                    src: ev.src,
                    dst: ev.dst,
                })?;
            let payload_flits = ev.payload_bits.div_ceil(self.config.flit_bits) as usize;
            let flits = (self.config.header_flits + payload_flits) as u32;
            assert!(
                flits < IDX_TAIL,
                "packet flit count must leave the tail-marker bit free"
            );
            st.pkts.push(PacketRun {
                route,
                flits,
                release: ev.release_cycle,
                inject: u64::MAX,
                payload_bits: ev.payload_bits,
            });
        }

        // Per-node pending queues ordered by (release, id), then one heap
        // entry per non-empty queue for release wakeups.
        st.order.extend(0..events.len() as u32);
        st.order.sort_by_key(|&i| (st.pkts[i as usize].release, i));
        for i in 0..st.order.len() {
            let id = st.order[i];
            st.pending[events[id as usize].src.index()].push(id);
        }
        for (u, q) in st.pending.iter().enumerate() {
            if let Some(&first) = q.first() {
                st.heap
                    .push(Reverse((st.pkts[first as usize].release, u as u32)));
            }
        }

        let total = st.pkts.len();
        let mut energy = EnergyBreakdown::default();
        let mut delivered = 0usize;
        let mut flits_ejected: u64 = 0;
        let mut flits_injected: u64 = 0;
        let mut cycle: u64 = 0;
        let mut last_progress_cycle: u64 = 0;
        let mut latency_sum: u64 = 0;
        let mut network_latency_sum: u64 = 0;
        let mut idle_cycles_skipped: u64 = 0;

        while delivered < total {
            if cycle >= self.config.max_cycles {
                return Err(SimError::Watchdog {
                    max_cycles: self.config.max_cycles,
                });
            }
            if cycle.saturating_sub(last_progress_cycle) > self.config.stall_cycles {
                return Err(SimError::Deadlock {
                    cycle,
                    undelivered: total - delivered,
                    blocked: self.blocked_snapshot(st),
                });
            }

            // Wake nodes whose next pending packet has been released.
            while let Some(&Reverse((r, u))) = st.heap.peek() {
                if r > cycle {
                    break;
                }
                st.heap.pop();
                let u = u as usize;
                if let Some(&front) = st.pending[u].get(st.cursor[u] as usize) {
                    let rel = st.pkts[front as usize].release;
                    if rel <= cycle {
                        let (off, _) = self.route_span(st.pkts[front as usize].route);
                        st.local_out[u] = self.route_chan[off];
                        st.local_ri[u] = off as u32;
                        st.local_pid[u] = front;
                        st.local_flits[u] = st.pkts[front as usize].flits;
                        st.outs.set(self.route_chan[off] as usize);
                    } else {
                        st.heap.push(Reverse((rel, u as u32)));
                    }
                }
            }

            // Both active sets empty ⇒ the network is empty and no packet
            // is releasable: nothing can move before the next release, so
            // skip straight to it — unless the reference loop's stall
            // counter or watchdog would fire first, in which case produce
            // the identical error at the identical cycle.
            if st.eject.is_empty() && st.outs.is_empty() {
                let fire = last_progress_cycle
                    .saturating_add(self.config.stall_cycles)
                    .saturating_add(1)
                    .min(self.config.max_cycles);
                match st.heap.peek() {
                    Some(&Reverse((r, _))) if r < fire => {
                        idle_cycles_skipped += r - cycle;
                        cycle = r;
                        continue;
                    }
                    _ => {
                        return if fire >= self.config.max_cycles {
                            Err(SimError::Watchdog {
                                max_cycles: self.config.max_cycles,
                            })
                        } else {
                            Err(SimError::Deadlock {
                                cycle: fire,
                                undelivered: total - delivered,
                                blocked: self.blocked_snapshot(st),
                            })
                        };
                    }
                }
            }

            let mut moved = false;

            // Phase 1: ejection. Pop every head flit that finished its
            // route; reveal the next head's request when one remains.
            let mut pos = 0usize;
            while let Some(c) = st.eject.next_at_or_after(pos) {
                pos = c + 1;
                st.eject.clear(c);
                let dst = self.channels[c].1 as usize;
                let base = self.chan_slot[c] as usize;
                for cvc in base..base + vcs {
                    loop {
                        match st.head_out[cvc] {
                            HEAD_NONE => break,
                            HEAD_EJECT => {}
                            oc => {
                                // Still forwarding: it requests a channel.
                                st.outs.set(oc as usize);
                                break;
                            }
                        }
                        let slot = st.head_flit[cvc];
                        let was_full = st.buf_len[cvc] == cap32;
                        st.buf_head[cvc] += 1;
                        if st.buf_head[cvc] == cap32 {
                            st.buf_head[cvc] = 0;
                        }
                        st.buf_len[cvc] -= 1;
                        self.refresh_head(st, cvc, cycle);
                        // Re-arm the channel only when this pop freed its
                        // first credit: a requester can be waiting on the
                        // pop only if it was credit-blocked, which needs
                        // the VC full — lock-blocked requesters unblock
                        // solely through grants on this channel, which
                        // keep its bit set themselves.
                        if was_full {
                            st.outs.set(c);
                        }
                        energy.switch += self.switch_energy[dst];
                        flits_ejected += 1;
                        moved = true;
                        if slot.idx & IDX_TAIL != 0 {
                            let p = &st.pkts[slot.pkt as usize];
                            delivered += 1;
                            latency_sum += cycle - p.release;
                            network_latency_sum += cycle - p.inject;
                        }
                    }
                }
            }

            // Phase 2: switch allocation, one grant per active output
            // channel. Candidates are built local-port-first then input
            // channels ascending, VCs ascending — already the order the
            // reference loop's sort produces, so no sort is needed.
            let mut pos = 0usize;
            while let Some(out_c) = st.outs.next_at_or_after(pos) {
                pos = out_c + 1;
                let u = self.channels[out_c].0 as usize;
                st.cands.clear();

                let out_c32 = out_c as u32;
                if st.local_out[u] == out_c32 {
                    let idx = st.emit[u];
                    let tail = if idx + 1 == st.local_flits[u] {
                        IDX_TAIL
                    } else {
                        0
                    };
                    st.cands.push(Candidate {
                        port: LOCAL_PORT,
                        slot: FlitSlot {
                            pkt: st.local_pid[u],
                            idx: idx | tail,
                            ri: st.local_ri[u],
                        },
                    });
                }
                let lo = self.node_slot_off[u] as usize;
                if self.masks_ok {
                    // Iterate exactly the requesting slots, lowest bit
                    // first — in-channels ascending then VCs ascending,
                    // the reference loop's sorted candidate order.
                    let mut m = st.req_mask[out_c];
                    while m != 0 {
                        let cvc = lo + m.trailing_zeros() as usize;
                        m &= m - 1;
                        st.cands.push(Candidate {
                            port: cvc as u32,
                            slot: st.head_flit[cvc],
                        });
                    }
                } else {
                    // Node group too wide for a mask: walk the contiguous
                    // slot range, comparing each cached head request (the
                    // sentinels never match). Same order as above.
                    for cvc in lo..self.node_slot_off[u + 1] as usize {
                        if st.head_out[cvc] != out_c32 {
                            continue;
                        }
                        st.cands.push(Candidate {
                            port: cvc as u32,
                            slot: st.head_flit[cvc],
                        });
                    }
                }
                if st.cands.is_empty() {
                    // No possible requester left: deactivate until one of
                    // the reveal points re-arms the channel.
                    st.outs.clear(out_c);
                    continue;
                }

                // Round-robin arbitration with the wormhole lock and
                // credit discipline of the reference loop. The wraparound
                // is compare-and-reset rather than `%` — same values, no
                // per-visit division.
                let nc = st.cands.len();
                let dbase = self.chan_slot[out_c] as usize;
                let mut idx = st.rr[out_c] as usize;
                if idx >= nc {
                    idx %= nc;
                }
                let mut granted: Option<(Candidate, usize)> = None;
                for _ in 0..nc {
                    let cand = st.cands[idx];
                    let mut next = idx + 1;
                    if next == nc {
                        next = 0;
                    }
                    let out_cvc = dbase + self.route_vc[cand.slot.ri as usize] as usize;
                    let lock = st.locks[out_cvc];
                    let eligible = if lock == LOCK_NONE {
                        cand.slot.idx & IDX_MASK == 0 // only heads may acquire
                    } else {
                        lock == ((cand.port as u64) << 32 | cand.slot.pkt as u64)
                    };
                    if eligible && st.buf_len[out_cvc] < cap32 {
                        granted = Some((cand, out_cvc));
                        st.rr[out_c] = next as u32;
                        break;
                    }
                    idx = next;
                }
                let Some((cand, out_cvc)) = granted else {
                    // Candidates exist but all are lock- or credit-blocked.
                    // `rr` does not advance on a grantless visit, so the
                    // visit has no effect at all — deactivate. A grant can
                    // only become possible through a credit-freeing pop on
                    // this channel (which re-arms it), a lock transition
                    // (which only happens on this channel's own grants,
                    // after which the bit is still set), or a new head /
                    // release (the reveal points).
                    st.outs.clear(out_c);
                    continue;
                };

                // Commit: consume from the source port, revealing whatever
                // becomes the new head there.
                let pkt_id = cand.slot.pkt as usize;
                let is_tail = cand.slot.idx & IDX_TAIL != 0;
                if cand.port == LOCAL_PORT {
                    st.emit[u] += 1;
                    if cand.slot.idx & IDX_MASK == 0 {
                        st.pkts[pkt_id].inject = cycle;
                    }
                    flits_injected += 1;
                    if is_tail {
                        st.cursor[u] += 1;
                        st.emit[u] = 0;
                        st.local_out[u] = HEAD_NONE;
                        if let Some(&next) = st.pending[u].get(st.cursor[u] as usize) {
                            let rel = st.pkts[next as usize].release;
                            if rel <= cycle {
                                let (off, _) = self.route_span(st.pkts[next as usize].route);
                                st.local_out[u] = self.route_chan[off];
                                st.local_ri[u] = off as u32;
                                st.local_pid[u] = next;
                                st.local_flits[u] = st.pkts[next as usize].flits;
                                st.outs.set(self.route_chan[off] as usize);
                            } else {
                                st.heap.push(Reverse((rel, u as u32)));
                            }
                        }
                    }
                } else {
                    let cvc = cand.port as usize;
                    let was_full = st.buf_len[cvc] == cap32;
                    st.buf_head[cvc] += 1;
                    if st.buf_head[cvc] == cap32 {
                        st.buf_head[cvc] = 0;
                    }
                    st.buf_len[cvc] -= 1;
                    self.refresh_head(st, cvc, cycle);
                    // First credit freed on the popped channel: re-arm it
                    // for its credit-blocked requesters (see the phase-1
                    // pop for why not-full pops need no re-arm). Live
                    // bitset insertion gives the same visibility the
                    // reference scan has — a channel later in this cycle's
                    // scan order sees the credit now, an earlier one next
                    // cycle.
                    let in_c = self.slot_channel[cvc] as usize;
                    if was_full {
                        st.outs.set(in_c);
                    }
                    match st.head_out[cvc] {
                        HEAD_NONE => {}
                        HEAD_EJECT => st.eject.set(in_c),
                        oc => st.outs.set(oc as usize),
                    }
                }
                if cand.slot.idx & IDX_MASK == 0 {
                    st.locks[out_cvc] = (cand.port as u64) << 32 | cand.slot.pkt as u64;
                }
                if is_tail {
                    st.locks[out_cvc] = LOCK_NONE;
                }
                energy.switch += self.switch_energy[u];
                energy.link += self.link_energy[out_c];
                // Store the moved flit and count it into `buf_len` right
                // away — the occupancy sum the credit check needs is the
                // same either way, the stamp in `fresh` keeps the flit
                // from becoming a visible head before phase 3, and the
                // absolute position `head + len` is invariant under any
                // later same-cycle pop of this slot. This is the slot's
                // only arrival this cycle (one grant per output channel).
                let mut tail = st.buf_head[out_cvc] + st.buf_len[out_cvc];
                if tail >= cap32 {
                    tail -= cap32;
                }
                let arrived = FlitSlot {
                    pkt: cand.slot.pkt,
                    idx: cand.slot.idx,
                    ri: cand.slot.ri + 1,
                };
                st.buf[out_cvc * cap + tail as usize] = arrived;
                st.buf_len[out_cvc] += 1;
                st.fresh[out_cvc] = cycle;
                if st.buf_len[out_cvc] == 1 {
                    // Arrival into an empty slot: it is the head, but
                    // `head_out` (what probes read) publishes in phase 3
                    // — only the private caches fill in now (a pop that
                    // strands an arrival as the sole flit does the same
                    // from `refresh_head`).
                    st.head_flit[out_cvc] = arrived;
                    st.arrivals
                        .push((out_cvc as u32, self.route_chan[arrived.ri as usize]));
                }
                moved = true;
            }

            // Phase 3: reveal the heads of slots whose sole flit arrived
            // this cycle (occupancy already landed at grant time). Slots
            // with an older head keep it; nothing else to do.
            for i in 0..st.arrivals.len() {
                let (cvc32, out) = st.arrivals[i];
                let cvc = cvc32 as usize;
                debug_assert_eq!(st.head_out[cvc], HEAD_NONE);
                debug_assert_eq!(st.buf_len[cvc], 1);
                st.head_out[cvc] = out;
                match out {
                    HEAD_EJECT => st.eject.set(self.slot_channel[cvc] as usize),
                    oc => {
                        if self.masks_ok {
                            st.req_mask[oc as usize] |= 1u64 << self.slot_bit[cvc];
                        }
                        st.outs.set(oc as usize);
                    }
                }
            }
            st.arrivals.clear();
            if moved {
                last_progress_cycle = cycle;
            }
            cycle += 1;
        }

        // Idle/clock energy over the whole run (zero for ASIC profiles) —
        // the same per-node call sequence as the reference loop.
        for &r in &self.radix {
            energy.idle += self.energy.idle_energy(r, cycle);
        }
        if let Some(t) = tel {
            t.add("sim.cycles", cycle);
            t.add("sim.flits", flits_ejected);
            t.add("sim.idle_cycles_skipped", idle_cycles_skipped);
        }
        let total_payload_bits: u64 = st.pkts.iter().map(|p| p.payload_bits).sum();
        Ok(SimReport::assemble(
            self.name.clone(),
            cycle,
            total,
            delivered,
            total_payload_bits,
            latency_sum,
            network_latency_sum,
            flits_injected,
            flits_ejected,
            energy,
            self.energy.profile().clock_hz(),
        ))
    }

    /// The blocked-buffer snapshot attached to deadlock errors: every
    /// occupied (channel, VC) input buffer, channels then VCs ascending.
    fn blocked_snapshot(&self, st: &SimState) -> Vec<BlockedVc> {
        let mut blocked = Vec::new();
        for (c, &(a, b)) in self.channels.iter().enumerate() {
            for vc in 0..self.num_vcs {
                let cvc = self.chan_slot[c] as usize + vc;
                if st.buf_len[cvc] == 0 {
                    continue;
                }
                let head = st.buf[cvc * self.config.buffer_flits + st.buf_head[cvc] as usize];
                blocked.push(BlockedVc {
                    channel: (NodeId(a as usize), NodeId(b as usize)),
                    vc,
                    packet: head.pkt as usize,
                    hop: (head.ri - self.route_off[st.pkts[head.pkt as usize].route as usize])
                        as usize,
                    occupancy: st.buf_len[cvc] as usize,
                    credits_available: None,
                    last_credit_return_cycle: None,
                });
            }
        }
        blocked
    }
}
