//! Packets, flits and traffic events.

use noc_graph::NodeId;

/// A request to send `payload_bits` from `src` to `dst`, released to the
/// source network interface at `release_cycle`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Cycle at which the packet becomes available for injection.
    pub release_cycle: u64,
    /// Source core.
    pub src: NodeId,
    /// Destination core.
    pub dst: NodeId,
    /// Payload size in bits.
    pub payload_bits: u64,
}

impl TrafficEvent {
    /// Creates a traffic event.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (self traffic never enters the network) or
    /// the payload is zero.
    pub fn new(release_cycle: u64, src: NodeId, dst: NodeId, payload_bits: u64) -> Self {
        assert_ne!(src, dst, "self-traffic is not routable");
        assert!(payload_bits > 0, "payload must be non-empty");
        TrafficEvent {
            release_cycle,
            src,
            dst,
            payload_bits,
        }
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit; performs route acquisition (wormhole).
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases the wormhole locks. Single-flit packets use
    /// `Tail` semantics with `is_head` set on the flit.
    Tail,
}

/// One flow-control unit traversing the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Flit {
    /// Owning packet.
    pub packet_id: usize,
    /// Head/body/tail.
    pub kind: FlitKind,
    /// `true` for the first flit of a packet (head duties even when the
    /// packet is a single flit, i.e. `kind == Tail`).
    pub is_head: bool,
    /// Index of the next route hop to take (0 = the first link).
    pub hop: usize,
}

/// A packet in flight: route, virtual channels and bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Dense packet ID (index into the simulator's packet table).
    pub id: usize,
    /// Source core.
    pub src: NodeId,
    /// Destination core.
    pub dst: NodeId,
    /// Vertex route `src … dst`.
    pub route: Vec<NodeId>,
    /// Per-hop virtual channel indices (`route.len() - 1` entries).
    pub vcs: Vec<usize>,
    /// Number of flits (header + payload).
    pub flits: usize,
    /// Payload size in bits (for energy/throughput accounting).
    pub payload_bits: u64,
    /// Cycle the packet was released to the source interface.
    pub release_cycle: u64,
    /// Cycle the head flit entered the network, once injected.
    pub inject_cycle: Option<u64>,
    /// Cycle the tail flit was ejected at the destination, once delivered.
    pub eject_cycle: Option<u64>,
}

impl Packet {
    /// Latency from release to tail ejection, if delivered.
    pub fn latency_cycles(&self) -> Option<u64> {
        self.eject_cycle.map(|e| e - self.release_cycle)
    }

    /// In-network latency from injection to tail ejection, if delivered.
    pub fn network_latency_cycles(&self) -> Option<u64> {
        match (self.inject_cycle, self.eject_cycle) {
            (Some(i), Some(e)) => Some(e - i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_event_validation() {
        let e = TrafficEvent::new(5, NodeId(0), NodeId(3), 128);
        assert_eq!(e.release_cycle, 5);
        assert_eq!(e.payload_bits, 128);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        TrafficEvent::new(0, NodeId(1), NodeId(1), 8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_payload_rejected() {
        TrafficEvent::new(0, NodeId(0), NodeId(1), 0);
    }

    #[test]
    fn packet_latencies() {
        let mut p = Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(1),
            route: vec![NodeId(0), NodeId(1)],
            vcs: vec![0],
            flits: 2,
            payload_bits: 32,
            release_cycle: 10,
            inject_cycle: None,
            eject_cycle: None,
        };
        assert_eq!(p.latency_cycles(), None);
        p.inject_cycle = Some(12);
        p.eject_cycle = Some(20);
        assert_eq!(p.latency_cycles(), Some(10));
        assert_eq!(p.network_latency_cycles(), Some(8));
    }
}
