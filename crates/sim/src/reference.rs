//! The reference cycle loop: the original rescan-everything semantics,
//! kept verbatim as the golden oracle for the event-driven engine.
//!
//! [`run_reference`] is the simulator exactly as first written: per-cycle
//! full scans over every channel, `BTreeMap` route lookups per flit,
//! `VecDeque` buffers and a linear staged-arrival scan in the credit
//! check. It is deliberately *not* optimized — its value is that every
//! behavior (grant order, f64 accumulation order, error cycles) is
//! manifest in straight-line code, so the equivalence suite and the
//! `sim_throughput` bench can hold the fast engine to "bit-identical to
//! this" rather than "close to this".

use std::collections::{BTreeMap, VecDeque};

use noc_energy::{EnergyBreakdown, EnergyModel};
use noc_graph::NodeId;

use crate::{
    BlockedVc, Flit, FlitKind, NocModel, Packet, SimConfig, SimError, SimReport, TrafficEvent,
};

/// Identity of a router input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Port {
    /// The node's local injection interface.
    Local,
    /// An input buffer: (incoming channel index, VC).
    Buffer(usize, usize),
}

/// Runs `events` on `model` with the original full-rescan cycle loop.
///
/// Every [`SimReport`] field — cycles, latencies, flit counts, energy
/// joules — is the baseline the event-driven engine must reproduce
/// bit-for-bit, as are all [`SimError`] variants and their firing cycles.
///
/// # Errors
///
/// Exactly as [`Simulator::run`](crate::Simulator::run): [`SimError::NoRoute`]
/// for an unroutable pair, [`SimError::Deadlock`] / [`SimError::Watchdog`]
/// when progress stops.
pub fn run_reference(
    model: &NocModel,
    config: &SimConfig,
    energy_model: &EnergyModel,
    events: &[TrafficEvent],
) -> Result<SimReport, SimError> {
    // Channel indexing.
    let channels: Vec<(NodeId, NodeId)> = model.links().map(|(c, _)| c).collect();
    let channel_index: BTreeMap<(NodeId, NodeId), usize> =
        channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let num_vcs = model.num_vcs().max(1);
    let n = model.node_count();

    // Build packets (the model's route policy may pick per-packet
    // routes, e.g. O1TURN stochastic dimension ordering).
    let mut packets: Vec<Packet> = Vec::with_capacity(events.len());
    for (idx, ev) in events.iter().enumerate() {
        let (route, vcs) =
            model
                .route_for_packet(ev.src, ev.dst, idx)
                .ok_or(SimError::NoRoute {
                    src: ev.src,
                    dst: ev.dst,
                })?;
        let (route, vcs) = (route.to_vec(), vcs.to_vec());
        let payload_flits = ev.payload_bits.div_ceil(config.flit_bits) as usize;
        packets.push(Packet {
            id: packets.len(),
            src: ev.src,
            dst: ev.dst,
            route,
            vcs,
            flits: config.header_flits + payload_flits,
            payload_bits: ev.payload_bits,
            release_cycle: ev.release_cycle,
            inject_cycle: None,
            eject_cycle: None,
        });
    }

    // Per-node FIFO of pending packet ids, ordered by release then id.
    let mut pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
    let mut order: Vec<usize> = (0..packets.len()).collect();
    order.sort_by_key(|&i| (packets[i].release_cycle, i));
    for i in order {
        pending[packets[i].src.index()].push_back(i);
    }
    // Per-node progress of the packet currently being injected.
    let mut emit_progress: Vec<usize> = vec![0; n];

    // Per-node radix for energy scaling.
    let radix: Vec<usize> = (0..n).map(|v| model.node_radix(NodeId(v))).collect();
    // Input buffers: buffers[channel][vc].
    let mut buffers: Vec<Vec<VecDeque<Flit>>> =
        vec![vec![VecDeque::new(); num_vcs]; channels.len()];
    // Staged arrivals (applied at end of cycle).
    let mut arrivals: Vec<(usize, usize, Flit)> = Vec::new();
    // Wormhole locks per (channel, vc): the input port currently owning
    // the output, plus the packet id (for injection continuity).
    let mut locks: Vec<Vec<Option<(Port, usize)>>> = vec![vec![None; num_vcs]; channels.len()];
    // Round-robin pointers per output channel.
    let mut rr: Vec<usize> = vec![0; channels.len()];

    // Blocked-state snapshot for deadlock reports: every occupied
    // (channel, VC) buffer, channels then VCs ascending.
    let blocked_snapshot = |buffers: &Vec<Vec<VecDeque<Flit>>>| -> Vec<BlockedVc> {
        let mut blocked = Vec::new();
        for (c, chan_buffers) in buffers.iter().enumerate() {
            for (vc, vc_buf) in chan_buffers.iter().enumerate() {
                if let Some(front) = vc_buf.front() {
                    blocked.push(BlockedVc {
                        channel: channels[c],
                        vc,
                        packet: front.packet_id,
                        hop: front.hop,
                        occupancy: vc_buf.len(),
                        credits_available: None,
                        last_credit_return_cycle: None,
                    });
                }
            }
        }
        blocked
    };

    let mut energy = EnergyBreakdown::default();
    let mut delivered = 0usize;
    let mut flits_ejected: u64 = 0;
    let mut flits_injected: u64 = 0;
    let mut cycle: u64 = 0;
    let mut last_progress_cycle: u64 = 0;
    let mut latency_sum: u64 = 0;
    let mut network_latency_sum: u64 = 0;

    while delivered < packets.len() {
        if cycle >= config.max_cycles {
            return Err(SimError::Watchdog {
                max_cycles: config.max_cycles,
            });
        }
        if cycle.saturating_sub(last_progress_cycle) > config.stall_cycles {
            return Err(SimError::Deadlock {
                cycle,
                undelivered: packets.len() - delivered,
                blocked: blocked_snapshot(&buffers),
            });
        }
        let mut moved = false;

        // Phase 1: ejection. A head-of-buffer flit whose hop index
        // equals the route's link count has arrived.
        for (c, chan_buffers) in buffers.iter_mut().enumerate() {
            let (_, dst_node) = channels[c];
            for vc_buf in chan_buffers.iter_mut() {
                while let Some(front) = vc_buf.front() {
                    let pkt = &packets[front.packet_id];
                    if front.hop < pkt.route.len() - 1 {
                        break; // still needs to traverse links
                    }
                    let flit = vc_buf.pop_front().expect("checked non-empty");
                    // Final switch traversal at the destination.
                    energy.switch += energy_model.switch_event_energy_radix(
                        config.flit_bits as f64,
                        radix[dst_node.index()],
                    );
                    flits_ejected += 1;
                    moved = true;
                    if flit.kind == FlitKind::Tail {
                        let pkt = &mut packets[flit.packet_id];
                        pkt.eject_cycle = Some(cycle);
                        delivered += 1;
                        latency_sum += pkt.latency_cycles().expect("just delivered");
                        network_latency_sum +=
                            pkt.network_latency_cycles().expect("just delivered");
                    }
                }
            }
        }

        // Phase 2: switch allocation, one grant per output channel.
        for (out_c, &(u, _w)) in channels.iter().enumerate() {
            // Gather candidate input ports at node u whose head flit
            // requests output channel out_c, with the VC it wants.
            let mut candidates: Vec<(Port, Flit, usize)> = Vec::new();

            // Local injection port.
            if let Some(&pid) = pending[u.index()].front() {
                let pkt = &packets[pid];
                if pkt.release_cycle <= cycle {
                    let first_link = (pkt.route[0], pkt.route[1]);
                    if channel_index[&first_link] == out_c {
                        let emitted = emit_progress[u.index()];
                        let kind = if emitted + 1 == pkt.flits {
                            FlitKind::Tail
                        } else if emitted == 0 {
                            FlitKind::Head
                        } else {
                            FlitKind::Body
                        };
                        let flit = Flit {
                            packet_id: pid,
                            kind,
                            is_head: emitted == 0,
                            hop: 0,
                        };
                        candidates.push((Port::Local, flit, pkt.vcs[0]));
                    }
                }
            }

            // Input buffers of channels arriving at u.
            for (in_c, &(_, mid)) in channels.iter().enumerate() {
                if mid != u {
                    continue;
                }
                #[allow(clippy::needless_range_loop)]
                for vc in 0..num_vcs {
                    if let Some(front) = buffers[in_c][vc].front() {
                        let pkt = &packets[front.packet_id];
                        if front.hop >= pkt.route.len() - 1 {
                            continue; // ejecting, not forwarding
                        }
                        let next_link = (pkt.route[front.hop], pkt.route[front.hop + 1]);
                        if channel_index[&next_link] == out_c {
                            candidates.push((
                                Port::Buffer(in_c, vc),
                                front.clone(),
                                pkt.vcs[front.hop],
                            ));
                        }
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            candidates.sort_by_key(|(p, _, _)| *p);

            // Try candidates in round-robin order; grant at most one.
            let start = rr[out_c] % candidates.len();
            let mut granted: Option<(Port, Flit, usize)> = None;
            for k in 0..candidates.len() {
                let (port, flit, out_vc) = &candidates[(start + k) % candidates.len()];
                // Wormhole lock discipline.
                match locks[out_c][*out_vc] {
                    Some((owner, owner_pkt)) => {
                        if owner != *port || owner_pkt != flit.packet_id {
                            continue;
                        }
                    }
                    None => {
                        if !flit.is_head {
                            continue; // only heads may acquire
                        }
                    }
                }
                // Credit check: downstream buffer space, counting flits
                // already staged this cycle.
                let staged = arrivals
                    .iter()
                    .filter(|(c, v, _)| *c == out_c && *v == *out_vc)
                    .count();
                if buffers[out_c][*out_vc].len() + staged >= config.buffer_flits {
                    continue;
                }
                granted = Some((*port, flit.clone(), *out_vc));
                rr[out_c] = (start + k + 1) % candidates.len();
                break;
            }
            let Some((port, mut flit, out_vc)) = granted else {
                continue;
            };

            // Commit the move: consume from the source port.
            match port {
                Port::Local => {
                    let pid = flit.packet_id;
                    emit_progress[u.index()] += 1;
                    if flit.is_head {
                        packets[pid].inject_cycle = Some(cycle);
                    }
                    flits_injected += 1;
                    if flit.kind == FlitKind::Tail {
                        pending[u.index()].pop_front();
                        emit_progress[u.index()] = 0;
                    }
                }
                Port::Buffer(in_c, vc) => {
                    buffers[in_c][vc].pop_front();
                }
            }
            // Lock management.
            if flit.is_head {
                locks[out_c][out_vc] = Some((port, flit.packet_id));
            }
            if flit.kind == FlitKind::Tail {
                locks[out_c][out_vc] = None;
            }
            // Energy: switch traversal at u + link traversal.
            energy.switch +=
                energy_model.switch_event_energy_radix(config.flit_bits as f64, radix[u.index()]);
            let (a, b) = channels[out_c];
            energy.link +=
                energy_model.link_event_energy(config.flit_bits as f64, model.link_length_mm(a, b));
            flit.hop += 1;
            arrivals.push((out_c, out_vc, flit));
            moved = true;
        }

        // Phase 3: arrivals land.
        for (c, vc, flit) in arrivals.drain(..) {
            buffers[c][vc].push_back(flit);
        }

        if moved {
            last_progress_cycle = cycle;
        }
        cycle += 1;
    }

    // Idle/clock energy over the whole run (zero for ASIC profiles).
    for &r in &radix {
        energy.idle += energy_model.idle_energy(r, cycle);
    }
    let total_payload_bits: u64 = packets.iter().map(|p| p.payload_bits).sum();
    Ok(SimReport::assemble(
        model.name().to_string(),
        cycle,
        packets.len(),
        delivered,
        total_payload_bits,
        latency_sum,
        network_latency_sum,
        flits_injected,
        flits_ejected,
        energy,
        energy_model.profile().clock_hz(),
    ))
}
