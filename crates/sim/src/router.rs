//! Credit-based virtual-channel router pipeline (RC → VA → SA → ST).
//!
//! This is the high-fidelity router model behind
//! [`RouterFidelity::Credit`](crate::RouterFidelity::Credit). It runs on
//! the same compiled [`SimCore`] tables as the ideal engine — channels,
//! routes, per-hop VCs and energy constants are shared — but replaces the
//! one-cycle-per-hop grant loop with an explicit pipeline:
//!
//! * **RC (route computation)** — a newly revealed *head* flit dwells
//!   [`CreditConfig::rc_cycles`] cycles before it may arbitrate (routes
//!   are precompiled, so RC models latency only). Body and tail flits
//!   inherit the head's route and skip RC. RC at the source router is
//!   folded into packet release.
//! * **VA (virtual-channel allocation)** — a head must win its requested
//!   output (channel, VC) before competing for the switch: one grant per
//!   output VC per cycle, round-robin among the requesting input ports,
//!   held until the tail traverses the switch. This is the wormhole lock
//!   made an explicit, separately arbitrated resource — losers stall at
//!   their buffer front and head-of-line block everything behind them.
//! * **SA (switch allocation)** — one flit per output channel per cycle
//!   (link bandwidth), round-robin among the input ports whose front flit
//!   holds the output VC, is RC-complete, and has a credit available.
//! * **ST (switch + link traversal)** — a granted flit is in flight for
//!   [`CreditConfig::st_cycles`] cycles before landing downstream.
//!
//! **Credits.** Each (channel, VC) input buffer hands its upstream router
//! `buffer_flits` credits. SA consumes one per grant; a downstream pop
//! (forwarding or ejection) returns one after
//! [`CreditConfig::credit_return_cycles`]. The conservation invariant —
//! per (channel, VC), per cycle:
//!
//! ```text
//! credits_available + buffer_occupancy + flits_in_flight + returns_in_flight
//!     == buffer_flits
//! ```
//!
//! is `debug_assert`ed every cycle of every run, so every debug-mode test
//! that touches credit mode checks it continuously.
//!
//! **Arming invariant for credit returns.** A return is scheduled at the
//! *pop*, never at the eventual grant it unblocks — so the return queue
//! length equals the number of outstanding pops and the invariant above
//! holds cycle-by-cycle with no terminal drain special-case. Returns,
//! landings and releases are the only time-keyed events; when the network
//! is completely empty the loop jumps straight to the next release like
//! the ideal engine (or raises the identical stall/watchdog error at the
//! identical cycle).
//!
//! Error semantics match the ideal engine: the stall detector raises
//! [`SimError::Deadlock`] after `stall_cycles` without movement, and the
//! snapshot additionally reports, per blocked head, the credits available
//! toward its requested next hop and the last credit-return cycle seen
//! there — the two facts that distinguish a credit-starvation stall from
//! a protocol deadlock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use noc_energy::EnergyBreakdown;
use noc_graph::NodeId;
use noc_telemetry::Telemetry;

use crate::engine::{
    FlitSlot, PacketRun, SimCore, HEAD_EJECT, HEAD_NONE, IDX_MASK, IDX_TAIL, LOCAL_PORT, LOCK_NONE,
};
use crate::{BlockedVc, CreditConfig, SimError, SimReport, TrafficEvent};

/// In-flight flit record: `(land_cycle, dest cvc, pkt, idx, ri)`,
/// min-ordered by landing cycle.
type Flight = Reverse<(u64, u32, u32, u32, u32)>;

/// "No output VC held" sentinel for the per-port hold registers.
const HOLD_NONE: u32 = u32::MAX;
/// "Never" sentinel for the last-credit-return stamps.
const NEVER: u64 = u64::MAX;

/// The mutable state of a credit-mode run, reusable across runs without
/// reallocation (the sweep and phased drivers carry it inside
/// [`SimState`](crate::engine::SimState)).
#[derive(Debug, Default)]
pub(crate) struct CreditState {
    // Per-run packet table and per-node injection queues (mirrors the
    // ideal engine's layout).
    pkts: Vec<PacketRun>,
    order: Vec<u32>,
    pending: Vec<Vec<u32>>,
    cursor: Vec<u32>,
    emit: Vec<u32>,
    local_out: Vec<u32>,
    local_ri: Vec<u32>,
    local_pid: Vec<u32>,
    local_flits: Vec<u32>,
    /// Output (channel, VC) slot held by the node's front head via VA.
    local_hold: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,

    // Per-(channel, VC) input buffers, flat ring slab like the engine's.
    buf: Vec<FlitSlot>,
    buf_head: Vec<u32>,
    buf_len: Vec<u32>,
    /// Cycle at which the current head flit is RC-complete and may
    /// arbitrate (meaningful only while the buffer is non-empty).
    head_ready: Vec<u64>,
    /// Output (channel, VC) slot held by this input's resident packet.
    hold: Vec<u32>,

    // Per-(channel, VC) output-side allocation state.
    vc_lock: Vec<u64>,
    credits: Vec<u32>,
    last_return: Vec<u64>,
    rr_va: Vec<u32>,
    /// Per-output-channel switch-allocation round-robin pointer.
    rr_sa: Vec<u32>,

    // Time-keyed event queues.
    /// Credit returns as `(apply_cycle, cvc)`.
    returns: BinaryHeap<Reverse<(u64, u32)>>,
    /// In-flight flits, min-ordered by landing cycle.
    flights: BinaryHeap<Flight>,

    // Conservation bookkeeping (the debug invariant and snapshots).
    in_flight: Vec<u32>,
    pending_ret: Vec<u32>,

    // Node → output channels, CSR with channels ascending. Lets the
    // arbitration passes scan each node's inputs once instead of once
    // per output.
    out_off: Vec<u32>,
    out_ch: Vec<u32>,
    /// VA request buckets, one per output (channel, VC); filled and
    /// drained every cycle.
    va_req: Vec<Vec<u32>>,
    /// SA request buckets, one per output channel; filled and drained
    /// every cycle.
    sa_req: Vec<Vec<u32>>,
}

impl CreditState {
    fn reset(&mut self, core: &SimCore, packets: usize) {
        let ncvc = core.channels.len() * core.num_vcs;
        self.pkts.clear();
        self.pkts.reserve(packets);
        self.order.clear();
        self.pending.resize(core.n_nodes, Vec::new());
        for q in &mut self.pending {
            q.clear();
        }
        self.cursor.clear();
        self.cursor.resize(core.n_nodes, 0);
        self.emit.clear();
        self.emit.resize(core.n_nodes, 0);
        self.local_out.clear();
        self.local_out.resize(core.n_nodes, HEAD_NONE);
        self.local_ri.clear();
        self.local_ri.resize(core.n_nodes, 0);
        self.local_pid.clear();
        self.local_pid.resize(core.n_nodes, 0);
        self.local_flits.clear();
        self.local_flits.resize(core.n_nodes, 0);
        self.local_hold.clear();
        self.local_hold.resize(core.n_nodes, HOLD_NONE);
        self.heap.clear();
        self.buf.clear();
        self.buf
            .resize(ncvc * core.config.buffer_flits, FlitSlot::default());
        self.buf_head.clear();
        self.buf_head.resize(ncvc, 0);
        self.buf_len.clear();
        self.buf_len.resize(ncvc, 0);
        self.head_ready.clear();
        self.head_ready.resize(ncvc, NEVER);
        self.hold.clear();
        self.hold.resize(ncvc, HOLD_NONE);
        self.vc_lock.clear();
        self.vc_lock.resize(ncvc, LOCK_NONE);
        self.credits.clear();
        self.credits.resize(ncvc, core.config.buffer_flits as u32);
        self.last_return.clear();
        self.last_return.resize(ncvc, NEVER);
        self.rr_va.clear();
        self.rr_va.resize(ncvc, 0);
        self.rr_sa.clear();
        self.rr_sa.resize(core.channels.len(), 0);
        self.returns.clear();
        self.flights.clear();
        self.in_flight.clear();
        self.in_flight.resize(ncvc, 0);
        self.pending_ret.clear();
        self.pending_ret.resize(ncvc, 0);
        self.out_off.clear();
        self.out_off.resize(core.n_nodes + 1, 0);
        for &(a, _) in &core.channels {
            self.out_off[a as usize + 1] += 1;
        }
        for u in 0..core.n_nodes {
            self.out_off[u + 1] += self.out_off[u];
        }
        self.out_ch.clear();
        self.out_ch.resize(core.channels.len(), 0);
        let mut fill: Vec<u32> = self.out_off[..core.n_nodes].to_vec();
        for (c, &(a, _)) in core.channels.iter().enumerate() {
            self.out_ch[fill[a as usize] as usize] = c as u32;
            fill[a as usize] += 1;
        }
        self.va_req.resize_with(ncvc, Vec::new);
        for q in &mut self.va_req {
            q.clear();
        }
        self.sa_req.resize_with(core.channels.len(), Vec::new);
        for q in &mut self.sa_req {
            q.clear();
        }
    }

    /// The front flit of buffer `cvc` (caller guarantees non-empty).
    #[inline]
    fn front(&self, core: &SimCore, cvc: usize) -> FlitSlot {
        self.buf[cvc * core.config.buffer_flits + self.buf_head[cvc] as usize]
    }
}

/// VC-lock key for `port` feeding `pkt` (the engine's lock encoding).
#[inline]
fn lock_key(port: u32, pkt: u32) -> u64 {
    (port as u64) << 32 | pkt as u64
}

/// Runs `events` under the credit-based router model.
pub(crate) fn run_credit(
    core: &SimCore,
    pipe: CreditConfig,
    st: &mut CreditState,
    events: &[TrafficEvent],
    tel: Option<&'static Telemetry>,
) -> Result<SimReport, SimError> {
    st.reset(core, events.len());
    let vcs = core.num_vcs;
    let cap = core.config.buffer_flits;
    let cap32 = cap as u32;

    // Packet table (route choice is per packet — O1TURN), identical to
    // the ideal engine's build.
    for (idx, ev) in events.iter().enumerate() {
        let route = core
            .route_id_for(ev.src.index(), ev.dst.index(), idx)
            .ok_or(SimError::NoRoute {
                src: ev.src,
                dst: ev.dst,
            })?;
        let payload_flits = ev.payload_bits.div_ceil(core.config.flit_bits) as usize;
        let flits = (core.config.header_flits + payload_flits) as u32;
        assert!(
            flits < IDX_TAIL,
            "packet flit count must leave the tail-marker bit free"
        );
        st.pkts.push(PacketRun {
            route,
            flits,
            release: ev.release_cycle,
            inject: u64::MAX,
            payload_bits: ev.payload_bits,
        });
    }
    st.order.extend(0..events.len() as u32);
    st.order.sort_by_key(|&i| (st.pkts[i as usize].release, i));
    for i in 0..st.order.len() {
        let id = st.order[i];
        st.pending[events[id as usize].src.index()].push(id);
    }
    for (u, q) in st.pending.iter().enumerate() {
        if let Some(&first) = q.first() {
            st.heap
                .push(Reverse((st.pkts[first as usize].release, u as u32)));
        }
    }

    let total = st.pkts.len();
    let mut energy = EnergyBreakdown::default();
    let mut delivered = 0usize;
    let mut flits_ejected: u64 = 0;
    let mut flits_injected: u64 = 0;
    let mut cycle: u64 = 0;
    let mut last_progress_cycle: u64 = 0;
    let mut latency_sum: u64 = 0;
    let mut network_latency_sum: u64 = 0;
    let mut idle_cycles_skipped: u64 = 0;
    let mut credit_stalls: u64 = 0;
    let mut vc_conflicts: u64 = 0;
    // Buffered flits network-wide and nodes with an active (released,
    // unfinished) front packet — the emptiness test for idle skipping.
    let mut occupied: usize = 0;
    let mut fronts_active: usize = 0;

    while delivered < total {
        if cycle >= core.config.max_cycles {
            return Err(SimError::Watchdog {
                max_cycles: core.config.max_cycles,
            });
        }
        if cycle.saturating_sub(last_progress_cycle) > core.config.stall_cycles {
            return Err(SimError::Deadlock {
                cycle,
                undelivered: total - delivered,
                blocked: blocked_snapshot(core, st),
            });
        }

        // Wake nodes whose next pending packet has been released.
        while let Some(&Reverse((r, u))) = st.heap.peek() {
            if r > cycle {
                break;
            }
            st.heap.pop();
            let u = u as usize;
            if let Some(&front) = st.pending[u].get(st.cursor[u] as usize) {
                let rel = st.pkts[front as usize].release;
                if rel <= cycle {
                    let (off, _) = core.route_span(st.pkts[front as usize].route);
                    st.local_out[u] = core.route_chan[off];
                    st.local_ri[u] = off as u32;
                    st.local_pid[u] = front;
                    st.local_flits[u] = st.pkts[front as usize].flits;
                    st.local_hold[u] = HOLD_NONE;
                    fronts_active += 1;
                } else {
                    st.heap.push(Reverse((rel, u as u32)));
                }
            }
        }

        // Apply credit returns due this cycle.
        while let Some(&Reverse((t, cvc))) = st.returns.peek() {
            if t > cycle {
                break;
            }
            st.returns.pop();
            let cvc = cvc as usize;
            st.credits[cvc] += 1;
            st.pending_ret[cvc] -= 1;
            st.last_return[cvc] = t;
        }

        // Land in-flight flits due this cycle (ST complete).
        let mut landed = false;
        while let Some(&Reverse((t, cvc, pkt, idx, ri))) = st.flights.peek() {
            if t > cycle {
                break;
            }
            st.flights.pop();
            let cvc = cvc as usize;
            let mut tail = st.buf_head[cvc] + st.buf_len[cvc];
            if tail >= cap32 {
                tail -= cap32;
            }
            st.buf[cvc * cap + tail as usize] = FlitSlot { pkt, idx, ri };
            st.buf_len[cvc] += 1;
            st.in_flight[cvc] -= 1;
            occupied += 1;
            landed = true;
            if st.buf_len[cvc] == 1 {
                st.head_ready[cvc] = if idx & IDX_MASK == 0 {
                    cycle + pipe.rc_cycles
                } else {
                    cycle
                };
            }
        }

        let mut moved = landed;

        // Network completely empty and no front releasable: jump to the
        // next release — or raise the stall/watchdog error the cycle the
        // per-cycle loop would have.
        if !landed && occupied == 0 && st.flights.is_empty() && fronts_active == 0 {
            let fire = last_progress_cycle
                .saturating_add(core.config.stall_cycles)
                .saturating_add(1)
                .min(core.config.max_cycles);
            match st.heap.peek() {
                Some(&Reverse((r, _))) if r < fire => {
                    idle_cycles_skipped += r - cycle;
                    cycle = r;
                    continue;
                }
                _ => {
                    return if fire >= core.config.max_cycles {
                        Err(SimError::Watchdog {
                            max_cycles: core.config.max_cycles,
                        })
                    } else {
                        Err(SimError::Deadlock {
                            cycle: fire,
                            undelivered: total - delivered,
                            blocked: blocked_snapshot(core, st),
                        })
                    };
                }
            }
        }

        // Ejection: unbounded sink bandwidth, no arbitration — pop every
        // route-complete head (including ones revealed by the pop) and
        // return its credit upstream.
        for c in 0..core.channels.len() {
            let dst = core.channels[c].1 as usize;
            let base = core.chan_slot[c] as usize;
            for cvc in base..base + vcs {
                while st.buf_len[cvc] > 0 {
                    let head = st.front(core, cvc);
                    if core.route_chan[head.ri as usize] != HEAD_EJECT {
                        break;
                    }
                    st.buf_head[cvc] += 1;
                    if st.buf_head[cvc] == cap32 {
                        st.buf_head[cvc] = 0;
                    }
                    st.buf_len[cvc] -= 1;
                    occupied -= 1;
                    st.pending_ret[cvc] += 1;
                    st.returns
                        .push(Reverse((cycle + pipe.credit_return_cycles, cvc as u32)));
                    energy.switch += core.switch_energy[dst];
                    flits_ejected += 1;
                    moved = true;
                    if head.idx & IDX_TAIL != 0 {
                        let p = &st.pkts[head.pkt as usize];
                        delivered += 1;
                        latency_sum += cycle - p.release;
                        network_latency_sum += cycle - p.inject;
                        st.hold[cvc] = HOLD_NONE;
                    }
                    if st.buf_len[cvc] > 0 {
                        let next = st.front(core, cvc);
                        st.head_ready[cvc] = if next.idx & IDX_MASK == 0 {
                            cycle + pipe.rc_cycles
                        } else {
                            cycle
                        };
                    }
                }
            }
        }

        // VA: one grant per output (channel, VC) per cycle, round-robin
        // over the requesting ports (local injection first, then input
        // buffers ascending — the engine's candidate order). A head
        // requests once it is RC-complete; denied requests (VC busy, or
        // lost the arbitration) count as allocation conflicts. Each
        // requester names exactly one output (channel, VC), so the
        // requests are bucketed in a single pass over each node's inputs
        // and grants across outputs stay independent — same winners as
        // scanning the inputs once per output, at a fraction of the cost.
        for u in 0..core.n_nodes {
            let mut any = false;
            if (st.local_out[u] as usize) < core.channels.len()
                && st.emit[u] == 0
                && st.local_hold[u] == HOLD_NONE
            {
                let ri = st.local_ri[u] as usize;
                let out_cvc =
                    core.chan_slot[st.local_out[u] as usize] as usize + core.route_vc[ri] as usize;
                st.va_req[out_cvc].push(LOCAL_PORT);
                any = true;
            }
            let (lo, hi) = (
                core.node_slot_off[u] as usize,
                core.node_slot_off[u + 1] as usize,
            );
            for cvc in lo..hi {
                if st.buf_len[cvc] == 0 || st.hold[cvc] != HOLD_NONE || st.head_ready[cvc] > cycle {
                    continue;
                }
                let head = st.front(core, cvc);
                if head.idx & IDX_MASK != 0 {
                    continue;
                }
                let rc = core.route_chan[head.ri as usize];
                debug_assert_ne!(rc, HEAD_EJECT, "eject heads drain in the ejection pass");
                let out_cvc =
                    core.chan_slot[rc as usize] as usize + core.route_vc[head.ri as usize] as usize;
                st.va_req[out_cvc].push(cvc as u32);
                any = true;
            }
            if !any {
                continue;
            }
            let (olo, ohi) = (st.out_off[u] as usize, st.out_off[u + 1] as usize);
            for oi in olo..ohi {
                let c = st.out_ch[oi] as usize;
                for v in 0..vcs {
                    let out_cvc = core.chan_slot[c] as usize + v;
                    let n = st.va_req[out_cvc].len();
                    if n == 0 {
                        continue;
                    }
                    if st.vc_lock[out_cvc] != LOCK_NONE {
                        vc_conflicts += n as u64;
                        st.va_req[out_cvc].clear();
                        continue;
                    }
                    let winner = st.va_req[out_cvc][st.rr_va[out_cvc] as usize % n];
                    st.va_req[out_cvc].clear();
                    st.rr_va[out_cvc] = (st.rr_va[out_cvc] as usize % n + 1) as u32;
                    vc_conflicts += (n - 1) as u64;
                    if winner == LOCAL_PORT {
                        st.vc_lock[out_cvc] = lock_key(LOCAL_PORT, st.local_pid[u]);
                        st.local_hold[u] = out_cvc as u32;
                    } else {
                        let head = st.front(core, winner as usize);
                        st.vc_lock[out_cvc] = lock_key(winner, head.pkt);
                        st.hold[winner as usize] = out_cvc as u32;
                    }
                }
            }
        }

        // SA: one flit per output channel per cycle among the ports whose
        // front flit holds the output VC, is ready, and has a credit.
        // Credit-blocked holders are the credit-stall telemetry. Bucketed
        // exactly like VA: every holder competes for the one channel its
        // held VC lives on, and a grant never changes another channel's
        // candidate set within the cycle (pops land `st_cycles` later,
        // credits and locks are per-output), so build-then-grant picks
        // the same winners as the per-output scan.
        for u in 0..core.n_nodes {
            let mut any = false;
            if st.local_hold[u] != HOLD_NONE {
                let out_cvc = st.local_hold[u] as usize;
                if st.credits[out_cvc] > 0 {
                    st.sa_req[st.local_out[u] as usize].push(LOCAL_PORT);
                    any = true;
                } else {
                    credit_stalls += 1;
                }
            }
            let (lo, hi) = (
                core.node_slot_off[u] as usize,
                core.node_slot_off[u + 1] as usize,
            );
            for cvc in lo..hi {
                if st.buf_len[cvc] == 0 || st.hold[cvc] == HOLD_NONE || st.head_ready[cvc] > cycle {
                    continue;
                }
                let head = st.front(core, cvc);
                let out_cvc = st.hold[cvc] as usize;
                debug_assert_eq!(st.vc_lock[out_cvc], lock_key(cvc as u32, head.pkt));
                if st.credits[out_cvc] > 0 {
                    st.sa_req[core.route_chan[head.ri as usize] as usize].push(cvc as u32);
                    any = true;
                } else {
                    credit_stalls += 1;
                }
            }
            if !any {
                continue;
            }
            let (olo, ohi) = (st.out_off[u] as usize, st.out_off[u + 1] as usize);
            for oi in olo..ohi {
                let c = st.out_ch[oi] as usize;
                let n = st.sa_req[c].len();
                if n == 0 {
                    continue;
                }
                let winner = st.sa_req[c][st.rr_sa[c] as usize % n];
                st.sa_req[c].clear();
                st.rr_sa[c] = (st.rr_sa[c] as usize % n + 1) as u32;

                let (flit, out_cvc) = if winner == LOCAL_PORT {
                    let idx = st.emit[u];
                    let tail = if idx + 1 == st.local_flits[u] {
                        IDX_TAIL
                    } else {
                        0
                    };
                    let flit = FlitSlot {
                        pkt: st.local_pid[u],
                        idx: idx | tail,
                        ri: st.local_ri[u],
                    };
                    let out_cvc = st.local_hold[u] as usize;
                    st.emit[u] += 1;
                    if idx == 0 {
                        st.pkts[flit.pkt as usize].inject = cycle;
                    }
                    flits_injected += 1;
                    if tail != 0 {
                        st.cursor[u] += 1;
                        st.emit[u] = 0;
                        st.local_out[u] = HEAD_NONE;
                        st.local_hold[u] = HOLD_NONE;
                        fronts_active -= 1;
                        if let Some(&next) = st.pending[u].get(st.cursor[u] as usize) {
                            let rel = st.pkts[next as usize].release;
                            if rel <= cycle {
                                let (off, _) = core.route_span(st.pkts[next as usize].route);
                                st.local_out[u] = core.route_chan[off];
                                st.local_ri[u] = off as u32;
                                st.local_pid[u] = next;
                                st.local_flits[u] = st.pkts[next as usize].flits;
                                fronts_active += 1;
                            } else {
                                st.heap.push(Reverse((rel, u as u32)));
                            }
                        }
                    }
                    (flit, out_cvc)
                } else {
                    let cvc = winner as usize;
                    let flit = st.front(core, cvc);
                    let out_cvc = st.hold[cvc] as usize;
                    st.buf_head[cvc] += 1;
                    if st.buf_head[cvc] == cap32 {
                        st.buf_head[cvc] = 0;
                    }
                    st.buf_len[cvc] -= 1;
                    occupied -= 1;
                    st.pending_ret[cvc] += 1;
                    st.returns
                        .push(Reverse((cycle + pipe.credit_return_cycles, cvc as u32)));
                    if flit.idx & IDX_TAIL != 0 {
                        st.hold[cvc] = HOLD_NONE;
                    }
                    if st.buf_len[cvc] > 0 {
                        let next = st.front(core, cvc);
                        st.head_ready[cvc] = if next.idx & IDX_MASK == 0 {
                            cycle + pipe.rc_cycles
                        } else {
                            cycle
                        };
                    }
                    (flit, out_cvc)
                };
                if flit.idx & IDX_TAIL != 0 {
                    st.vc_lock[out_cvc] = LOCK_NONE;
                }
                st.credits[out_cvc] -= 1;
                st.in_flight[out_cvc] += 1;
                st.flights.push(Reverse((
                    cycle + pipe.st_cycles,
                    out_cvc as u32,
                    flit.pkt,
                    flit.idx,
                    flit.ri + 1,
                )));
                energy.switch += core.switch_energy[u];
                energy.link += core.link_energy[c];
                moved = true;
            }
        }

        // Credit conservation, per (channel, VC), per cycle: what the
        // upstream allocator can spend plus everything already spent but
        // not yet returned is exactly the buffer depth.
        #[cfg(debug_assertions)]
        for cvc in 0..st.credits.len() {
            debug_assert_eq!(
                st.credits[cvc] + st.buf_len[cvc] + st.in_flight[cvc] + st.pending_ret[cvc],
                cap32,
                "credit conservation violated at (channel, vc) slot {cvc}, cycle {cycle}"
            );
        }

        if moved {
            last_progress_cycle = cycle;
        }
        cycle += 1;
    }

    for &r in &core.radix {
        energy.idle += core.energy_model().idle_energy(r, cycle);
    }
    if let Some(t) = tel {
        t.add("sim.cycles", cycle);
        t.add("sim.flits", flits_ejected);
        t.add("sim.idle_cycles_skipped", idle_cycles_skipped);
        t.add("sim.credit_stall_cycles", credit_stalls);
        t.add("sim.vc_alloc_conflicts", vc_conflicts);
    }
    let total_payload_bits: u64 = st.pkts.iter().map(|p| p.payload_bits).sum();
    Ok(SimReport::assemble(
        core.name.clone(),
        cycle,
        total,
        delivered,
        total_payload_bits,
        latency_sum,
        network_latency_sum,
        flits_injected,
        flits_ejected,
        energy,
        core.energy_model().profile().clock_hz(),
    ))
}

/// The blocked-buffer snapshot for credit-mode deadlock errors: every
/// occupied (channel, VC) buffer, channels then VCs ascending, with the
/// credit state toward each forwarding head's requested next hop.
fn blocked_snapshot(core: &SimCore, st: &CreditState) -> Vec<BlockedVc> {
    let mut blocked = Vec::new();
    for (c, &(a, b)) in core.channels.iter().enumerate() {
        for vc in 0..core.num_vcs {
            let cvc = core.chan_slot[c] as usize + vc;
            if st.buf_len[cvc] == 0 {
                continue;
            }
            let head = st.front(core, cvc);
            let req = core.route_chan[head.ri as usize];
            let (credits_available, last_credit_return_cycle) = if req == HEAD_EJECT {
                (None, None)
            } else {
                let out_cvc = core.chan_slot[req as usize] as usize
                    + core.route_vc[head.ri as usize] as usize;
                (
                    Some(st.credits[out_cvc] as usize),
                    (st.last_return[out_cvc] != NEVER).then_some(st.last_return[out_cvc]),
                )
            };
            blocked.push(BlockedVc {
                channel: (NodeId(a as usize), NodeId(b as usize)),
                vc,
                packet: head.pkt as usize,
                hop: (head.ri - core.route_off[st.pkts[head.pkt as usize].route as usize]) as usize,
                occupancy: st.buf_len[cvc] as usize,
                credits_available,
                last_credit_return_cycle,
            });
        }
    }
    blocked
}

#[cfg(test)]
mod tests {
    use noc_energy::{EnergyModel, TechnologyProfile};
    use noc_graph::{DiGraph, NodeId};

    use crate::{
        CreditConfig, NocModel, RouterFidelity, SimConfig, SimError, Simulator, TrafficEvent,
    };

    fn energy() -> EnergyModel {
        EnergyModel::new(TechnologyProfile::cmos_180nm())
    }

    fn credit_cfg() -> SimConfig {
        SimConfig {
            router: RouterFidelity::Credit(CreditConfig::default()),
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_hop_latency_matches_ideal() {
        // One hop has no intermediate router, so the pipeline adds
        // nothing: head injects at 0, lands and ejects at 1, tail at 2.
        let m = NocModel::mesh(2, 1, 1.0);
        let report = Simulator::new(&m, credit_cfg(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        assert_eq!(report.packets_delivered, 1);
        assert_eq!(report.avg_packet_latency_cycles, 2.0);
        assert_eq!(report.flits_injected, 2);
        assert_eq!(report.flits_ejected, 2);
    }

    #[test]
    fn each_intermediate_router_adds_rc_cycles() {
        // On a line, every intermediate router charges the head RC before
        // it can arbitrate: latency = ideal + rc * (hops - 1).
        for rc in [1u64, 3] {
            let cfg = SimConfig {
                router: RouterFidelity::Credit(CreditConfig {
                    rc_cycles: rc,
                    ..CreditConfig::default()
                }),
                ..SimConfig::default()
            };
            let m = NocModel::mesh(4, 1, 1.0);
            let ideal = Simulator::new(&m, SimConfig::default(), energy())
                .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
                .unwrap();
            let credit = Simulator::new(&m, cfg, energy())
                .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
                .unwrap();
            assert_eq!(
                credit.avg_packet_latency_cycles,
                ideal.avg_packet_latency_cycles + (rc * 2) as f64,
                "rc={rc}"
            );
        }
    }

    #[test]
    fn st_depth_stretches_the_flight_time() {
        let slow = SimConfig {
            router: RouterFidelity::Credit(CreditConfig {
                st_cycles: 4,
                ..CreditConfig::default()
            }),
            ..SimConfig::default()
        };
        let m = NocModel::mesh(2, 1, 1.0);
        let fast = Simulator::new(&m, credit_cfg(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        let stretched = Simulator::new(&m, slow, energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        // Each flit's single hop takes 3 extra cycles in flight.
        assert_eq!(
            stretched.avg_packet_latency_cycles,
            fast.avg_packet_latency_cycles + 3.0
        );
    }

    #[test]
    fn credit_mode_is_deterministic_and_conserves_flits() {
        let m = NocModel::mesh(4, 4, 2.0);
        let events = crate::traffic::uniform_random(16, 200, 128, 42);
        let a = Simulator::new(&m, credit_cfg(), energy())
            .run(events.clone())
            .unwrap();
        let b = Simulator::new(&m, credit_cfg(), energy())
            .run(events)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.packets_delivered, 200);
        assert_eq!(a.flits_injected, a.flits_ejected);
    }

    #[test]
    fn contention_raises_credit_mode_latency_above_ideal() {
        let m = NocModel::mesh(4, 4, 2.0);
        let events = crate::traffic::uniform_random(16, 300, 128, 7);
        let ideal = Simulator::new(&m, SimConfig::default(), energy())
            .run(events.clone())
            .unwrap();
        let credit = Simulator::new(&m, credit_cfg(), energy())
            .run(events)
            .unwrap();
        assert_eq!(credit.packets_delivered, ideal.packets_delivered);
        assert!(credit.avg_packet_latency_cycles > ideal.avg_packet_latency_cycles);
    }

    #[test]
    fn head_of_line_blocking_delays_traffic_to_a_free_output() {
        // A fork: 0 -> 1, then 1 -> 2 and 1 -> 3. P0 (0->2) monopolizes
        // (1,2) long enough that P1 (0->3) queues behind it in the (0,1)
        // buffer even though its own output (1,3) is idle — the blocked
        // head must delay P1 beyond its uncontended latency.
        let topo = DiGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        let mut routes = std::collections::BTreeMap::new();
        routes.insert(
            (NodeId(0), NodeId(2)),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        routes.insert(
            (NodeId(0), NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(3)],
        );
        let m = NocModel::from_parts("fork", topo, routes, std::collections::BTreeMap::new(), 1.0);
        let cfg = SimConfig {
            buffer_flits: 2,
            ..credit_cfg()
        };
        let alone = Simulator::new(&m, cfg, energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
            .unwrap();
        let behind = Simulator::new(&m, cfg, energy())
            .run(vec![
                TrafficEvent::new(0, NodeId(0), NodeId(2), 512),
                TrafficEvent::new(0, NodeId(0), NodeId(3), 32),
            ])
            .unwrap();
        // Mean latency with the 17-flit P0 ahead far exceeds P1 alone.
        assert!(behind.avg_packet_latency_cycles > alone.avg_packet_latency_cycles);
        assert_eq!(behind.packets_delivered, 2);
    }

    #[test]
    fn forced_credit_exhaustion_reports_the_stall_reason() {
        // Two sources feed a shared link (2,3) with single-flit buffers
        // and a credit-return latency far beyond the stall budget. P0's
        // head takes the (2,3) VC and drains; P0's tail starves at the
        // source (its first-hop credit never returns), so P1's head sits
        // in the (1,2) buffer holding nothing, VC-blocked, with zero
        // credits visible toward (2,3) and no return ever seen.
        let topo = DiGraph::from_edges(4, [(0, 2), (1, 2), (2, 3)]).unwrap();
        let mut routes = std::collections::BTreeMap::new();
        routes.insert(
            (NodeId(0), NodeId(3)),
            vec![NodeId(0), NodeId(2), NodeId(3)],
        );
        routes.insert(
            (NodeId(1), NodeId(3)),
            vec![NodeId(1), NodeId(2), NodeId(3)],
        );
        let m = NocModel::from_parts(
            "shared-link",
            topo,
            routes,
            std::collections::BTreeMap::new(),
            1.0,
        );
        let cfg = SimConfig {
            buffer_flits: 1,
            stall_cycles: 50,
            router: RouterFidelity::Credit(CreditConfig {
                credit_return_cycles: 1_000_000,
                ..CreditConfig::default()
            }),
            ..SimConfig::default()
        };
        let err = Simulator::new(&m, cfg, energy())
            .run(vec![
                TrafficEvent::new(0, NodeId(0), NodeId(3), 32),
                TrafficEvent::new(0, NodeId(1), NodeId(3), 32),
            ])
            .unwrap_err();
        let SimError::Deadlock { blocked, .. } = err else {
            panic!("expected a credit-starvation deadlock, got {err:?}");
        };
        let stuck = blocked
            .iter()
            .find(|b| b.channel == (NodeId(1), NodeId(2)))
            .expect("P1's head is stuck in the (1,2) buffer");
        assert_eq!(stuck.occupancy, 1);
        assert_eq!(stuck.credits_available, Some(0));
        assert_eq!(stuck.last_credit_return_cycle, None);
    }

    #[test]
    fn ideal_mode_snapshots_carry_no_credit_fields() {
        // The ideal engine has no credit counters: its deadlock snapshots
        // must report `None` for both credit fields (and bit-match the
        // reference loop, which the equivalence suite enforces).
        let topo = DiGraph::cycle(4);
        let mut routes = std::collections::BTreeMap::new();
        for s in 0..4usize {
            let d = (s + 2) % 4;
            routes.insert(
                (NodeId(s), NodeId(d)),
                vec![NodeId(s), NodeId((s + 1) % 4), NodeId(d)],
            );
        }
        let m = NocModel::from_parts("ring", topo, routes, std::collections::BTreeMap::new(), 1.0);
        let cfg = SimConfig {
            buffer_flits: 1,
            stall_cycles: 200,
            ..SimConfig::default()
        };
        let events: Vec<_> = (0..4)
            .map(|s| TrafficEvent::new(0, NodeId(s), NodeId((s + 2) % 4), 256))
            .collect();
        let err = Simulator::new(&m, cfg, energy()).run(events).unwrap_err();
        let SimError::Deadlock { blocked, .. } = err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert!(!blocked.is_empty());
        assert!(blocked
            .iter()
            .all(|b| b.credits_available.is_none() && b.last_credit_return_cycle.is_none()));
    }

    #[test]
    fn empty_traffic_and_release_gaps_behave_like_ideal() {
        let m = NocModel::mesh(2, 1, 1.0);
        let empty = Simulator::new(&m, credit_cfg(), energy())
            .run(Vec::new())
            .unwrap();
        assert_eq!(empty.total_cycles, 0);
        // A release gap longer than the stall budget raises the same
        // empty-snapshot deadlock at the same cycle as the ideal engine.
        let cfg = SimConfig {
            stall_cycles: 50,
            ..credit_cfg()
        };
        let err = Simulator::new(&m, cfg, energy())
            .run(vec![TrafficEvent::new(200, NodeId(0), NodeId(1), 32)])
            .unwrap_err();
        match err {
            SimError::Deadlock {
                cycle,
                undelivered,
                blocked,
            } => {
                assert_eq!(cycle, 51);
                assert_eq!(undelivered, 1);
                assert!(blocked.is_empty());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_fires_in_credit_mode() {
        let m = NocModel::mesh(4, 4, 1.0);
        let cfg = SimConfig {
            max_cycles: 3,
            ..credit_cfg()
        };
        let events = crate::traffic::uniform_random(16, 50, 256, 1);
        let err = Simulator::new(&m, cfg, energy()).run(events).unwrap_err();
        assert_eq!(err, SimError::Watchdog { max_cycles: 3 });
    }
}
