//! The cycle loop: wormhole switching with credit flow control.
//!
//! Each cycle runs three phases:
//!
//! 1. **Ejection** — flits that finished their route leave the network
//!    (counted as the final switch traversal of Equation 1).
//! 2. **Switch allocation** — per output channel, a round-robin arbiter
//!    picks among the local injection port and the input buffers whose head
//!    flit requests that output. Wormhole semantics: a head flit locks the
//!    (channel, VC) for its packet until the tail passes; a flit only moves
//!    if the downstream buffer has a free slot (credit).
//! 3. **Arrival** — flits granted in phase 2 appear in the downstream
//!    buffer at the next cycle (one cycle per hop: router + link).
//!
//! Simplifications (documented in `DESIGN.md`): ejection bandwidth is
//! unbounded, and router pipeline depth is one cycle per hop; contention,
//! serialization and queueing — the effects the Section 5.2 comparison
//! hinges on — are modeled faithfully.

use std::collections::{BTreeMap, VecDeque};

use noc_energy::{EnergyBreakdown, EnergyModel};
use noc_graph::NodeId;

use crate::{Flit, FlitKind, NocModel, Packet, SimReport, TrafficEvent};

/// Simulator tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Flit width in bits (also the channel width).
    pub flit_bits: u64,
    /// Input buffer depth per (channel, VC), in flits.
    pub buffer_flits: usize,
    /// Header overhead per packet, in flits.
    pub header_flits: usize,
    /// Hard cycle cap (a watchdog against livelock).
    pub max_cycles: u64,
    /// Declare deadlock after this many cycles without any flit movement
    /// while traffic is still in flight.
    pub stall_cycles: u64,
}

impl Default for SimConfig {
    /// 32-bit flits, 4-flit buffers, 1 header flit — a typical lightweight
    /// 2005-era NoC router configuration.
    fn default() -> Self {
        SimConfig {
            flit_bits: 32,
            buffer_flits: 4,
            header_flits: 1,
            max_cycles: 10_000_000,
            stall_cycles: 10_000,
        }
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A traffic event's pair has no route in the model.
    NoRoute {
        /// Source of the unroutable event.
        src: NodeId,
        /// Destination of the unroutable event.
        dst: NodeId,
    },
    /// No flit moved for `stall_cycles` while packets were in flight.
    Deadlock {
        /// Cycle at which deadlock was declared.
        cycle: u64,
        /// Packets not yet delivered.
        undelivered: usize,
    },
    /// The cycle cap was reached.
    Watchdog {
        /// The configured cap.
        max_cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoRoute { src, dst } => write!(f, "no route from {src} to {dst}"),
            SimError::Deadlock { cycle, undelivered } => {
                write!(
                    f,
                    "deadlock at cycle {cycle} with {undelivered} packets undelivered"
                )
            }
            SimError::Watchdog { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Identity of a router input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Port {
    /// The node's local injection interface.
    Local,
    /// An input buffer: (incoming channel index, VC).
    Buffer(usize, usize),
}

/// The cycle-accurate simulator. Create per run; borrow the model.
#[derive(Debug)]
pub struct Simulator<'a> {
    model: &'a NocModel,
    config: SimConfig,
    energy_model: EnergyModel,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `model` with per-event energy accounting
    /// through `energy_model`.
    pub fn new(model: &'a NocModel, config: SimConfig, energy_model: EnergyModel) -> Self {
        Simulator {
            model,
            config,
            energy_model,
        }
    }

    /// The model under simulation.
    pub fn model(&self) -> &NocModel {
        self.model
    }

    /// The energy model used for event accounting.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    pub(crate) fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Runs the traffic to completion and reports.
    ///
    /// # Errors
    ///
    /// [`SimError::NoRoute`] if an event's pair is unroutable;
    /// [`SimError::Deadlock`] / [`SimError::Watchdog`] if the network stops
    /// making progress (cannot happen with the deadlock-free route/VC sets
    /// produced by the synthesis crate or the XY mesh).
    pub fn run(&self, events: Vec<TrafficEvent>) -> Result<SimReport, SimError> {
        // Channel indexing.
        let channels: Vec<(NodeId, NodeId)> = self.model.links().map(|(c, _)| c).collect();
        let channel_index: BTreeMap<(NodeId, NodeId), usize> =
            channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let num_vcs = self.model.num_vcs().max(1);
        let n = self.model.node_count();

        // Build packets (the model's route policy may pick per-packet
        // routes, e.g. O1TURN stochastic dimension ordering).
        let mut packets: Vec<Packet> = Vec::with_capacity(events.len());
        for (idx, ev) in events.iter().enumerate() {
            let (route, vcs) =
                self.model
                    .route_for_packet(ev.src, ev.dst, idx)
                    .ok_or(SimError::NoRoute {
                        src: ev.src,
                        dst: ev.dst,
                    })?;
            let (route, vcs) = (route.to_vec(), vcs.to_vec());
            let payload_flits = ev.payload_bits.div_ceil(self.config.flit_bits) as usize;
            packets.push(Packet {
                id: packets.len(),
                src: ev.src,
                dst: ev.dst,
                route,
                vcs,
                flits: self.config.header_flits + payload_flits,
                payload_bits: ev.payload_bits,
                release_cycle: ev.release_cycle,
                inject_cycle: None,
                eject_cycle: None,
            });
        }

        // Per-node FIFO of pending packet ids, ordered by release then id.
        let mut pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
        let mut order: Vec<usize> = (0..packets.len()).collect();
        order.sort_by_key(|&i| (packets[i].release_cycle, i));
        for i in order {
            pending[packets[i].src.index()].push_back(i);
        }
        // Per-node progress of the packet currently being injected.
        let mut emit_progress: Vec<usize> = vec![0; n];

        // Per-node radix for energy scaling.
        let radix: Vec<usize> = (0..n).map(|v| self.model.node_radix(NodeId(v))).collect();
        // Input buffers: buffers[channel][vc].
        let mut buffers: Vec<Vec<VecDeque<Flit>>> =
            vec![vec![VecDeque::new(); num_vcs]; channels.len()];
        // Staged arrivals (applied at end of cycle).
        let mut arrivals: Vec<(usize, usize, Flit)> = Vec::new();
        // Wormhole locks per (channel, vc): the input port currently owning
        // the output, plus the packet id (for injection continuity).
        let mut locks: Vec<Vec<Option<(Port, usize)>>> = vec![vec![None; num_vcs]; channels.len()];
        // Round-robin pointers per output channel.
        let mut rr: Vec<usize> = vec![0; channels.len()];

        let mut energy = EnergyBreakdown::default();
        let mut delivered = 0usize;
        let mut flits_ejected: u64 = 0;
        let mut flits_injected: u64 = 0;
        let mut cycle: u64 = 0;
        let mut last_progress_cycle: u64 = 0;
        let mut latency_sum: u64 = 0;
        let mut network_latency_sum: u64 = 0;

        while delivered < packets.len() {
            if cycle >= self.config.max_cycles {
                return Err(SimError::Watchdog {
                    max_cycles: self.config.max_cycles,
                });
            }
            if cycle.saturating_sub(last_progress_cycle) > self.config.stall_cycles {
                return Err(SimError::Deadlock {
                    cycle,
                    undelivered: packets.len() - delivered,
                });
            }
            let mut moved = false;

            // Phase 1: ejection. A head-of-buffer flit whose hop index
            // equals the route's link count has arrived.
            for (c, chan_buffers) in buffers.iter_mut().enumerate() {
                let (_, dst_node) = channels[c];
                for vc_buf in chan_buffers.iter_mut() {
                    while let Some(front) = vc_buf.front() {
                        let pkt = &packets[front.packet_id];
                        if front.hop < pkt.route.len() - 1 {
                            break; // still needs to traverse links
                        }
                        let flit = vc_buf.pop_front().expect("checked non-empty");
                        // Final switch traversal at the destination.
                        energy.switch += self.energy_model.switch_event_energy_radix(
                            self.config.flit_bits as f64,
                            radix[dst_node.index()],
                        );
                        flits_ejected += 1;
                        moved = true;
                        if flit.kind == FlitKind::Tail {
                            let pkt = &mut packets[flit.packet_id];
                            pkt.eject_cycle = Some(cycle);
                            delivered += 1;
                            latency_sum += pkt.latency_cycles().expect("just delivered");
                            network_latency_sum +=
                                pkt.network_latency_cycles().expect("just delivered");
                        }
                    }
                }
            }

            // Phase 2: switch allocation, one grant per output channel.
            for (out_c, &(u, _w)) in channels.iter().enumerate() {
                // Gather candidate input ports at node u whose head flit
                // requests output channel out_c, with the VC it wants.
                let mut candidates: Vec<(Port, Flit, usize)> = Vec::new();

                // Local injection port.
                if let Some(&pid) = pending[u.index()].front() {
                    let pkt = &packets[pid];
                    if pkt.release_cycle <= cycle {
                        let first_link = (pkt.route[0], pkt.route[1]);
                        if channel_index[&first_link] == out_c {
                            let emitted = emit_progress[u.index()];
                            let kind = if emitted + 1 == pkt.flits {
                                FlitKind::Tail
                            } else if emitted == 0 {
                                FlitKind::Head
                            } else {
                                FlitKind::Body
                            };
                            let flit = Flit {
                                packet_id: pid,
                                kind,
                                is_head: emitted == 0,
                                hop: 0,
                            };
                            candidates.push((Port::Local, flit, pkt.vcs[0]));
                        }
                    }
                }

                // Input buffers of channels arriving at u.
                for (in_c, &(_, mid)) in channels.iter().enumerate() {
                    if mid != u {
                        continue;
                    }
                    #[allow(clippy::needless_range_loop)]
                    for vc in 0..num_vcs {
                        if let Some(front) = buffers[in_c][vc].front() {
                            let pkt = &packets[front.packet_id];
                            if front.hop >= pkt.route.len() - 1 {
                                continue; // ejecting, not forwarding
                            }
                            let next_link = (pkt.route[front.hop], pkt.route[front.hop + 1]);
                            if channel_index[&next_link] == out_c {
                                candidates.push((
                                    Port::Buffer(in_c, vc),
                                    front.clone(),
                                    pkt.vcs[front.hop],
                                ));
                            }
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                candidates.sort_by_key(|(p, _, _)| *p);

                // Try candidates in round-robin order; grant at most one.
                let start = rr[out_c] % candidates.len();
                let mut granted: Option<(Port, Flit, usize)> = None;
                for k in 0..candidates.len() {
                    let (port, flit, out_vc) = &candidates[(start + k) % candidates.len()];
                    // Wormhole lock discipline.
                    match locks[out_c][*out_vc] {
                        Some((owner, owner_pkt)) => {
                            if owner != *port || owner_pkt != flit.packet_id {
                                continue;
                            }
                        }
                        None => {
                            if !flit.is_head {
                                continue; // only heads may acquire
                            }
                        }
                    }
                    // Credit check: downstream buffer space, counting flits
                    // already staged this cycle.
                    let staged = arrivals
                        .iter()
                        .filter(|(c, v, _)| *c == out_c && *v == *out_vc)
                        .count();
                    if buffers[out_c][*out_vc].len() + staged >= self.config.buffer_flits {
                        continue;
                    }
                    granted = Some((*port, flit.clone(), *out_vc));
                    rr[out_c] = (start + k + 1) % candidates.len();
                    break;
                }
                let Some((port, mut flit, out_vc)) = granted else {
                    continue;
                };

                // Commit the move: consume from the source port.
                match port {
                    Port::Local => {
                        let pid = flit.packet_id;
                        emit_progress[u.index()] += 1;
                        if flit.is_head {
                            packets[pid].inject_cycle = Some(cycle);
                        }
                        flits_injected += 1;
                        if flit.kind == FlitKind::Tail {
                            pending[u.index()].pop_front();
                            emit_progress[u.index()] = 0;
                        }
                    }
                    Port::Buffer(in_c, vc) => {
                        buffers[in_c][vc].pop_front();
                    }
                }
                // Lock management.
                if flit.is_head {
                    locks[out_c][out_vc] = Some((port, flit.packet_id));
                }
                if flit.kind == FlitKind::Tail {
                    locks[out_c][out_vc] = None;
                }
                // Energy: switch traversal at u + link traversal.
                energy.switch += self
                    .energy_model
                    .switch_event_energy_radix(self.config.flit_bits as f64, radix[u.index()]);
                let (a, b) = channels[out_c];
                energy.link += self.energy_model.link_event_energy(
                    self.config.flit_bits as f64,
                    self.model.link_length_mm(a, b),
                );
                flit.hop += 1;
                arrivals.push((out_c, out_vc, flit));
                moved = true;
            }

            // Phase 3: arrivals land.
            for (c, vc, flit) in arrivals.drain(..) {
                buffers[c][vc].push_back(flit);
            }

            if moved {
                last_progress_cycle = cycle;
            }
            cycle += 1;
        }

        // Idle/clock energy over the whole run (zero for ASIC profiles).
        for &r in &radix {
            energy.idle += self.energy_model.idle_energy(r, cycle);
        }
        let total_payload_bits: u64 = packets.iter().map(|p| p.payload_bits).sum();
        Ok(SimReport::assemble(
            self.model.name().to_string(),
            cycle,
            packets.len(),
            delivered,
            total_payload_bits,
            latency_sum,
            network_latency_sum,
            flits_injected,
            flits_ejected,
            energy,
            self.energy_model.profile().clock_hz(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_energy::TechnologyProfile;

    fn energy() -> EnergyModel {
        EnergyModel::new(TechnologyProfile::cmos_180nm())
    }

    fn single_hop_model() -> NocModel {
        NocModel::mesh(2, 1, 1.0)
    }

    #[test]
    fn single_packet_single_hop() {
        let m = single_hop_model();
        let events = vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)];
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(report.packets_delivered, 1);
        // 2 flits (header + 1 payload), 1 hop each: head moves at cycle 0,
        // arrives cycle 1, ejects cycle 1; tail moves cycle 1, ejects cycle 2.
        assert_eq!(report.avg_packet_latency_cycles, 2.0);
        assert_eq!(report.flits_injected, 2);
        assert_eq!(report.flits_ejected, 2);
    }

    #[test]
    fn latency_grows_with_distance() {
        let m = NocModel::mesh(4, 1, 1.0);
        let near = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        let far = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
            .unwrap();
        assert!(far.avg_packet_latency_cycles > near.avg_packet_latency_cycles);
    }

    #[test]
    fn larger_payload_serializes() {
        let m = single_hop_model();
        let small = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        let big = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 256)])
            .unwrap();
        // 256 bits = 8 payload flits: 7 extra cycles of serialization.
        assert_eq!(
            big.avg_packet_latency_cycles,
            small.avg_packet_latency_cycles + 7.0
        );
    }

    #[test]
    fn contention_delays_one_packet() {
        // Two packets to the same destination from the same source: the
        // second serializes behind the first.
        let m = single_hop_model();
        let events = vec![
            TrafficEvent::new(0, NodeId(0), NodeId(1), 32),
            TrafficEvent::new(0, NodeId(0), NodeId(1), 32),
        ];
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(report.packets_delivered, 2);
        // First: latency 2; second: waits 2 cycles then 2 = 4. Mean 3.
        assert_eq!(report.avg_packet_latency_cycles, 3.0);
    }

    #[test]
    fn flit_conservation_on_mesh_random_traffic() {
        let m = NocModel::mesh(4, 4, 2.0);
        let events = crate::traffic::uniform_random(16, 200, 128, 42);
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(report.packets_delivered, 200);
        assert_eq!(report.flits_injected, report.flits_ejected);
        assert!(report.total_cycles > 0);
        assert!(report.energy.total().joules() > 0.0);
    }

    #[test]
    fn no_route_is_reported() {
        let topo = noc_graph::DiGraph::from_edges(2, [(0, 1)]).unwrap();
        let m = NocModel::from_parts(
            "one-way",
            topo,
            std::collections::BTreeMap::new(),
            std::collections::BTreeMap::new(),
            1.0,
        );
        let err = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 8)])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::NoRoute {
                src: NodeId(0),
                dst: NodeId(1)
            }
        );
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn energy_matches_hand_count() {
        let m = single_hop_model();
        let cfg = SimConfig::default();
        let report = Simulator::new(&m, cfg, energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        // 2 flits x (2 switch traversals + 1 link of 1.0 mm) at 32 bits.
        let em = energy();
        let expect_switch = em.switch_event_energy(32.0) * 4.0;
        let expect_link = em.link_event_energy(32.0, 1.0) * 2.0;
        assert!((report.energy.switch.joules() - expect_switch.joules()).abs() < 1e-18);
        assert!((report.energy.link.joules() - expect_link.joules()).abs() < 1e-18);
    }

    #[test]
    fn release_time_is_respected() {
        let m = single_hop_model();
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(100, NodeId(0), NodeId(1), 32)])
            .unwrap();
        // Latency counts from release, so still 2; makespan covers the wait.
        assert_eq!(report.avg_packet_latency_cycles, 2.0);
        assert!(report.total_cycles >= 102);
    }

    #[test]
    fn empty_traffic_is_trivial() {
        let m = single_hop_model();
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(Vec::new())
            .unwrap();
        assert_eq!(report.packets_delivered, 0);
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.avg_packet_latency_cycles, 0.0);
    }

    #[test]
    fn watchdog_fires_on_tiny_budget() {
        let m = NocModel::mesh(4, 4, 1.0);
        let cfg = SimConfig {
            max_cycles: 3,
            ..SimConfig::default()
        };
        let events = crate::traffic::uniform_random(16, 50, 256, 1);
        let err = Simulator::new(&m, cfg, energy()).run(events).unwrap_err();
        assert_eq!(err, SimError::Watchdog { max_cycles: 3 });
    }

    #[test]
    fn deterministic_runs() {
        let m = NocModel::mesh(3, 3, 1.0);
        let events = crate::traffic::uniform_random(9, 100, 64, 9);
        let a = Simulator::new(&m, SimConfig::default(), energy())
            .run(events.clone())
            .unwrap();
        let b = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.avg_packet_latency_cycles, b.avg_packet_latency_cycles);
    }
}
