//! The simulator facade: wormhole switching with credit flow control.
//!
//! Each cycle runs three phases:
//!
//! 1. **Ejection** — flits that finished their route leave the network
//!    (counted as the final switch traversal of Equation 1).
//! 2. **Switch allocation** — per output channel, a round-robin arbiter
//!    picks among the local injection port and the input buffers whose head
//!    flit requests that output. Wormhole semantics: a head flit locks the
//!    (channel, VC) for its packet until the tail passes; a flit only moves
//!    if the downstream buffer has a free slot (credit).
//! 3. **Arrival** — flits granted in phase 2 appear in the downstream
//!    buffer at the next cycle (one cycle per hop: router + link).
//!
//! Simplifications (documented in `DESIGN.md`): ejection bandwidth is
//! unbounded, and router pipeline depth is one cycle per hop; contention,
//! serialization and queueing — the effects the Section 5.2 comparison
//! hinges on — are modeled faithfully.
//!
//! The cycle loop itself lives in the event-driven [`crate::engine`];
//! [`Simulator::new`] compiles the model once into a
//! [`SimCore`](crate::engine::SimCore) that is reused across runs, sweep
//! points and phases. The original full-rescan loop is preserved verbatim
//! in [`crate::reference`] and the two are held bit-identical by the
//! equivalence test suite.

use noc_energy::EnergyModel;
use noc_graph::NodeId;

use crate::engine::{SimCore, SimState};
use crate::{NocModel, SimReport, TrafficEvent};

/// Pipeline depths and latencies of the credit-based router model
/// ([`RouterFidelity::Credit`]). All fields are cycle counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditConfig {
    /// Route-computation (RC) depth: cycles a newly revealed *head* flit
    /// spends in a router before it may request VC allocation. Body and
    /// tail flits inherit the head's route and skip RC.
    pub rc_cycles: u64,
    /// Switch-traversal + link (ST) depth: cycles between a switch-
    /// allocation grant and the flit landing in the downstream buffer.
    pub st_cycles: u64,
    /// Credit-return latency: cycles between a downstream buffer pop and
    /// the freed credit becoming visible to the upstream allocator.
    pub credit_return_cycles: u64,
}

impl Default for CreditConfig {
    /// A 3-stage-visible pipeline: 1-cycle RC, 1-cycle ST, 1-cycle credit
    /// return (VA and SA arbitrate within the grant cycle).
    fn default() -> Self {
        CreditConfig {
            rc_cycles: 1,
            st_cycles: 1,
            credit_return_cycles: 1,
        }
    }
}

/// Which router model the simulator runs.
///
/// `Ideal` is the seed-compatible model: one cycle per hop, VC allocation
/// folded into switch allocation, credits implicit in downstream occupancy.
/// Every report it produces is bit-identical to the preserved reference
/// loop (enforced by the equivalence suite). `Credit` is the explicit
/// RC → VA → SA → ST pipeline with per-(channel, VC) credit counters and
/// return latency — the `router` module's source docs describe the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RouterFidelity {
    /// Idealized wormhole flow control (the seed semantics).
    #[default]
    Ideal,
    /// Credit-based virtual-channel router with explicit pipeline stages.
    Credit(CreditConfig),
}

impl RouterFidelity {
    /// Stable lowercase label ("ideal" / "credit") used by campaign
    /// reports and benchmark rows.
    pub fn label(&self) -> &'static str {
        match self {
            RouterFidelity::Ideal => "ideal",
            RouterFidelity::Credit(_) => "credit",
        }
    }
}

/// Simulator tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Flit width in bits (also the channel width).
    pub flit_bits: u64,
    /// Input buffer depth per (channel, VC), in flits.
    pub buffer_flits: usize,
    /// Header overhead per packet, in flits.
    pub header_flits: usize,
    /// Hard cycle cap (a watchdog against livelock).
    pub max_cycles: u64,
    /// Declare deadlock after this many cycles without any flit movement
    /// while traffic is still in flight.
    pub stall_cycles: u64,
    /// Router model fidelity (ideal wormhole vs. credit-based pipeline).
    pub router: RouterFidelity,
}

impl Default for SimConfig {
    /// 32-bit flits, 4-flit buffers, 1 header flit — a typical lightweight
    /// 2005-era NoC router configuration — under the ideal router model.
    fn default() -> Self {
        SimConfig {
            flit_bits: 32,
            buffer_flits: 4,
            header_flits: 1,
            max_cycles: 10_000_000,
            stall_cycles: 10_000,
            router: RouterFidelity::Ideal,
        }
    }
}

/// One stalled (channel, virtual channel) input buffer in a
/// [`SimError::Deadlock`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedVc {
    /// The channel whose input buffer holds the stalled flits.
    pub channel: (NodeId, NodeId),
    /// The virtual channel index within that buffer.
    pub vc: usize,
    /// Packet owning the buffer's head flit (the wormhole occupant).
    pub packet: usize,
    /// The head flit's next route hop index — which link it is waiting
    /// for.
    pub hop: usize,
    /// Flits occupying the buffer.
    pub occupancy: usize,
    /// Credits available toward the head's requested next-hop
    /// (channel, VC) at the declaring cycle. `None` under
    /// [`RouterFidelity::Ideal`] (where credits are implicit in downstream
    /// occupancy) and for heads waiting to eject.
    pub credits_available: Option<usize>,
    /// Cycle at which the last credit for that next-hop buffer was
    /// returned upstream — `None` in ideal mode, for ejecting heads, or
    /// when no credit was ever returned.
    pub last_credit_return_cycle: Option<u64>,
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A traffic event's pair has no route in the model.
    NoRoute {
        /// Source of the unroutable event.
        src: NodeId,
        /// Destination of the unroutable event.
        dst: NodeId,
    },
    /// No flit moved for `stall_cycles` while packets were in flight.
    Deadlock {
        /// Cycle at which deadlock was declared.
        cycle: u64,
        /// Packets not yet delivered.
        undelivered: usize,
        /// Every occupied (channel, VC) buffer at the declaring cycle —
        /// the wait-for state a deadlock-freedom gate needs to explain
        /// *which* cyclic dependency stalled (empty when the stall is a
        /// release gap with nothing in flight).
        blocked: Vec<BlockedVc>,
    },
    /// The cycle cap was reached.
    Watchdog {
        /// The configured cap.
        max_cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoRoute { src, dst } => write!(f, "no route from {src} to {dst}"),
            SimError::Deadlock {
                cycle,
                undelivered,
                blocked,
            } => {
                write!(
                    f,
                    "deadlock at cycle {cycle} with {undelivered} packets undelivered \
                     ({} blocked buffers)",
                    blocked.len()
                )
            }
            SimError::Watchdog { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The cycle-accurate simulator. Construction compiles the model into a
/// reusable `SimCore`; one simulator serves many runs.
#[derive(Debug)]
pub struct Simulator<'a> {
    model: &'a NocModel,
    config: SimConfig,
    core: SimCore,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `model` with per-event energy accounting
    /// through `energy_model`. Compiles the model's channels, routes and
    /// energy constants once, up front.
    pub fn new(model: &'a NocModel, config: SimConfig, energy_model: EnergyModel) -> Self {
        Simulator {
            model,
            config,
            core: SimCore::compile(model, config, energy_model),
        }
    }

    /// The model under simulation.
    pub fn model(&self) -> &NocModel {
        self.model
    }

    /// The simulator configuration.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// The energy model used for event accounting.
    pub fn energy_model(&self) -> &EnergyModel {
        self.core.energy_model()
    }

    pub(crate) fn model_name(&self) -> &str {
        self.core.name()
    }

    /// Runs the traffic to completion and reports.
    ///
    /// # Errors
    ///
    /// [`SimError::NoRoute`] if an event's pair is unroutable;
    /// [`SimError::Deadlock`] / [`SimError::Watchdog`] if the network stops
    /// making progress (cannot happen with the deadlock-free route/VC sets
    /// produced by the synthesis crate or the XY mesh).
    pub fn run(&self, events: Vec<TrafficEvent>) -> Result<SimReport, SimError> {
        let mut state = SimState::default();
        self.core.run(&mut state, &events)
    }

    /// Runs on a caller-provided state, reusing its allocations — the
    /// sweep and phased drivers call this across points/phases.
    pub(crate) fn run_in(
        &self,
        state: &mut SimState,
        events: &[TrafficEvent],
    ) -> Result<SimReport, SimError> {
        self.core.run(state, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_energy::TechnologyProfile;

    fn energy() -> EnergyModel {
        EnergyModel::new(TechnologyProfile::cmos_180nm())
    }

    fn single_hop_model() -> NocModel {
        NocModel::mesh(2, 1, 1.0)
    }

    #[test]
    fn single_packet_single_hop() {
        let m = single_hop_model();
        let events = vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)];
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(report.packets_delivered, 1);
        // 2 flits (header + 1 payload), 1 hop each: head moves at cycle 0,
        // arrives cycle 1, ejects cycle 1; tail moves cycle 1, ejects cycle 2.
        assert_eq!(report.avg_packet_latency_cycles, 2.0);
        assert_eq!(report.flits_injected, 2);
        assert_eq!(report.flits_ejected, 2);
    }

    #[test]
    fn latency_grows_with_distance() {
        let m = NocModel::mesh(4, 1, 1.0);
        let near = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        let far = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(3), 32)])
            .unwrap();
        assert!(far.avg_packet_latency_cycles > near.avg_packet_latency_cycles);
    }

    #[test]
    fn larger_payload_serializes() {
        let m = single_hop_model();
        let small = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        let big = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 256)])
            .unwrap();
        // 256 bits = 8 payload flits: 7 extra cycles of serialization.
        assert_eq!(
            big.avg_packet_latency_cycles,
            small.avg_packet_latency_cycles + 7.0
        );
    }

    #[test]
    fn contention_delays_one_packet() {
        // Two packets to the same destination from the same source: the
        // second serializes behind the first.
        let m = single_hop_model();
        let events = vec![
            TrafficEvent::new(0, NodeId(0), NodeId(1), 32),
            TrafficEvent::new(0, NodeId(0), NodeId(1), 32),
        ];
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(report.packets_delivered, 2);
        // First: latency 2; second: waits 2 cycles then 2 = 4. Mean 3.
        assert_eq!(report.avg_packet_latency_cycles, 3.0);
    }

    #[test]
    fn flit_conservation_on_mesh_random_traffic() {
        let m = NocModel::mesh(4, 4, 2.0);
        let events = crate::traffic::uniform_random(16, 200, 128, 42);
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(report.packets_delivered, 200);
        assert_eq!(report.flits_injected, report.flits_ejected);
        assert!(report.total_cycles > 0);
        assert!(report.energy.total().joules() > 0.0);
    }

    #[test]
    fn no_route_is_reported() {
        let topo = noc_graph::DiGraph::from_edges(2, [(0, 1)]).unwrap();
        let m = NocModel::from_parts(
            "one-way",
            topo,
            std::collections::BTreeMap::new(),
            std::collections::BTreeMap::new(),
            1.0,
        );
        let err = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 8)])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::NoRoute {
                src: NodeId(0),
                dst: NodeId(1)
            }
        );
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn energy_matches_hand_count() {
        let m = single_hop_model();
        let cfg = SimConfig::default();
        let report = Simulator::new(&m, cfg, energy())
            .run(vec![TrafficEvent::new(0, NodeId(0), NodeId(1), 32)])
            .unwrap();
        // 2 flits x (2 switch traversals + 1 link of 1.0 mm) at 32 bits.
        let em = energy();
        let expect_switch = em.switch_event_energy(32.0) * 4.0;
        let expect_link = em.link_event_energy(32.0, 1.0) * 2.0;
        assert!((report.energy.switch.joules() - expect_switch.joules()).abs() < 1e-18);
        assert!((report.energy.link.joules() - expect_link.joules()).abs() < 1e-18);
    }

    #[test]
    fn release_time_is_respected() {
        let m = single_hop_model();
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(vec![TrafficEvent::new(100, NodeId(0), NodeId(1), 32)])
            .unwrap();
        // Latency counts from release, so still 2; makespan covers the wait.
        assert_eq!(report.avg_packet_latency_cycles, 2.0);
        assert!(report.total_cycles >= 102);
    }

    #[test]
    fn empty_traffic_is_trivial() {
        let m = single_hop_model();
        let report = Simulator::new(&m, SimConfig::default(), energy())
            .run(Vec::new())
            .unwrap();
        assert_eq!(report.packets_delivered, 0);
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.avg_packet_latency_cycles, 0.0);
    }

    #[test]
    fn watchdog_fires_on_tiny_budget() {
        let m = NocModel::mesh(4, 4, 1.0);
        let cfg = SimConfig {
            max_cycles: 3,
            ..SimConfig::default()
        };
        let events = crate::traffic::uniform_random(16, 50, 256, 1);
        let err = Simulator::new(&m, cfg, energy()).run(events).unwrap_err();
        assert_eq!(err, SimError::Watchdog { max_cycles: 3 });
    }

    #[test]
    fn deterministic_runs() {
        let m = NocModel::mesh(3, 3, 1.0);
        let events = crate::traffic::uniform_random(9, 100, 64, 9);
        let a = Simulator::new(&m, SimConfig::default(), energy())
            .run(events.clone())
            .unwrap();
        let b = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.avg_packet_latency_cycles, b.avg_packet_latency_cycles);
    }

    #[test]
    fn one_simulator_serves_many_runs() {
        // The compiled core is reusable: repeated runs on one simulator
        // match fresh-simulator runs exactly.
        let m = NocModel::mesh(3, 3, 1.0);
        let sim = Simulator::new(&m, SimConfig::default(), energy());
        let events = crate::traffic::uniform_random(9, 80, 64, 5);
        let a = sim.run(events.clone()).unwrap();
        let b = sim.run(events.clone()).unwrap();
        let fresh = Simulator::new(&m, SimConfig::default(), energy())
            .run(events)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, fresh);
    }

    #[test]
    fn release_gap_stall_reports_an_empty_snapshot() {
        // A release gap longer than `stall_cycles` trips the stall
        // detector with nothing in flight: the deadlock error fires at
        // the same cycle the rescan loop would reach, and its snapshot
        // is empty because no buffer holds a flit.
        let m = single_hop_model();
        let cfg = SimConfig {
            stall_cycles: 50,
            ..SimConfig::default()
        };
        let events = vec![TrafficEvent::new(200, NodeId(0), NodeId(1), 32)];
        let err = Simulator::new(&m, cfg, energy()).run(events).unwrap_err();
        match err {
            SimError::Deadlock {
                cycle,
                undelivered,
                blocked,
            } => {
                assert_eq!(cycle, 51);
                assert_eq!(undelivered, 1);
                assert!(blocked.is_empty());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // A genuinely blocked-buffer snapshot (cyclic routes) is covered
        // by the wormhole and equivalence suites.
    }
}
