//! Property tests for the bit-energy model: monotonicity and linearity
//! invariants Equation 1 must satisfy for any technology.

use noc_energy::{EnergyModel, TechnologyProfile};
use proptest::prelude::*;

fn profiles() -> Vec<TechnologyProfile> {
    vec![
        TechnologyProfile::cmos_180nm(),
        TechnologyProfile::cmos_130nm(),
        TechnologyProfile::cmos_100nm(),
        TechnologyProfile::fpga_virtex2(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Link energy is monotone in wire length.
    #[test]
    fn link_energy_monotone(a in 0.0f64..20.0, b in 0.0f64..20.0) {
        let (short, long) = if a <= b { (a, b) } else { (b, a) };
        for p in profiles() {
            prop_assert!(p.link_energy(short) <= p.link_energy(long), "{}", p.name());
        }
    }

    /// Route energy grows when a link is appended (more switches + wire).
    #[test]
    fn route_energy_monotone_in_links(
        lens in proptest::collection::vec(0.1f64..5.0, 1..6),
        extra in 0.1f64..5.0,
    ) {
        for p in profiles() {
            let m = EnergyModel::new(p);
            let base = m.route_energy_per_bit(&lens);
            let mut longer = lens.clone();
            longer.push(extra);
            prop_assert!(m.route_energy_per_bit(&longer) > base);
        }
    }

    /// Transfer energy is linear in volume.
    #[test]
    fn transfer_linear_in_volume(
        lens in proptest::collection::vec(0.1f64..5.0, 1..4),
        v in 1.0f64..1e4,
        k in 2.0f64..8.0,
    ) {
        let m = EnergyModel::new(TechnologyProfile::cmos_180nm());
        let e1 = m.transfer_energy(v, &lens).joules();
        let ek = m.transfer_energy(k * v, &lens).joules();
        prop_assert!((ek - k * e1).abs() <= 1e-9 * ek.abs().max(1e-30));
    }

    /// The direct-transfer lower bound never exceeds the energy of any
    /// route whose total length covers the distance.
    #[test]
    fn lower_bound_is_admissible(
        segments in proptest::collection::vec(0.1f64..4.0, 1..6),
        volume in 1.0f64..512.0,
    ) {
        let distance: f64 = segments.iter().sum();
        for p in profiles() {
            let m = EnergyModel::new(p);
            let lb = m.direct_transfer_lower_bound(volume, distance);
            let real = m.transfer_energy(volume, &segments);
            prop_assert!(
                lb.joules() <= real.joules() + 1e-24,
                "lb {} > real {} for {} segments",
                lb,
                real,
                segments.len()
            );
        }
    }

    /// Radix scaling is monotone in radix and anchored at the reference.
    #[test]
    fn radix_scaling_monotone(r1 in 1usize..10, r2 in 1usize..10) {
        let p = TechnologyProfile::fpga_virtex2();
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(p.switch_energy_for_radix(lo) <= p.switch_energy_for_radix(hi));
        prop_assert_eq!(
            p.switch_energy_for_radix(p.reference_radix()),
            p.switch_energy()
        );
    }

    /// Idle energy is linear in cycles.
    #[test]
    fn idle_linear_in_cycles(radix in 1usize..8, cycles in 1u64..100_000) {
        let m = EnergyModel::new(TechnologyProfile::fpga_virtex2());
        let one = m.idle_energy(radix, 1).joules();
        let many = m.idle_energy(radix, cycles).joules();
        prop_assert!((many - one * cycles as f64).abs() <= 1e-9 * many.max(1e-30));
    }
}
