//! Energy quantity newtype.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An energy quantity in joules.
///
/// The newtype prevents mixing energies with other `f64` quantities (link
/// lengths, volumes, bandwidths) flowing through the synthesis cost
/// functions. Display picks a human scale:
///
/// ```
/// use noc_energy::Energy;
/// assert_eq!(Energy::from_picojoules(0.5).to_string(), "0.500 pJ");
/// assert_eq!(Energy::from_joules(2.5e-6).to_string(), "2.500 uJ");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or NaN.
    pub fn from_joules(joules: f64) -> Self {
        assert!(
            joules >= 0.0 && joules.is_finite(),
            "energy must be finite and non-negative, got {joules}"
        );
        Energy(joules)
    }

    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy::from_joules(pj * 1e-12)
    }

    /// The value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// The value in picojoules.
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// The value in microjoules.
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative.
    fn sub(self, rhs: Energy) -> Energy {
        debug_assert!(self.0 >= rhs.0, "energy subtraction would go negative");
        Energy((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy::from_joules(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        rhs * self
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    /// Ratio of two energies (dimensionless).
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Energy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let j = self.0;
        if j == 0.0 {
            write!(f, "0 J")
        } else if j < 1e-9 {
            write!(f, "{:.3} pJ", j * 1e12)
        } else if j < 1e-6 {
            write!(f, "{:.3} nJ", j * 1e9)
        } else if j < 1e-3 {
            write!(f, "{:.3} uJ", j * 1e6)
        } else {
            write!(f, "{:.3} J", j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let e = Energy::from_picojoules(284.0);
        assert!((e.picojoules() - 284.0).abs() < 1e-9);
        assert!((e.joules() - 284.0e-12).abs() < 1e-20);
        assert!((Energy::from_joules(5.1e-6).microjoules() - 5.1).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_picojoules(1.0);
        let b = Energy::from_picojoules(2.0);
        assert_eq!(a + b, Energy::from_picojoules(3.0));
        assert_eq!(b * 2.0, Energy::from_picojoules(4.0));
        assert_eq!(2.0 * b, Energy::from_picojoules(4.0));
        assert!((b / a - 2.0).abs() < 1e-12);
        let mut c = a;
        c += b;
        assert_eq!(c, Energy::from_picojoules(3.0));
        assert_eq!(b - a, Energy::from_picojoules(1.0));
    }

    #[test]
    fn sum_of_energies() {
        let total: Energy = (1..=4).map(|i| Energy::from_picojoules(i as f64)).sum();
        assert!((total.picojoules() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        Energy::from_joules(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Energy::ZERO.to_string(), "0 J");
        assert_eq!(Energy::from_joules(3.2e-10).to_string(), "320.000 pJ");
        assert_eq!(Energy::from_joules(4.5e-8).to_string(), "45.000 nJ");
        assert_eq!(Energy::from_joules(5.1e-6).to_string(), "5.100 uJ");
        assert_eq!(Energy::from_joules(0.25).to_string(), "0.250 J");
    }
}
