//! Technology profiles: per-bit switch/link energies and wiring budgets.
//!
//! "ES-bit values for different process technologies, voltage levels,
//! operating frequencies are also stored in the library" (Section 3). Each
//! profile also carries the wiring-resource budgets used by the constraint
//! checks of Section 4.2: the maximum per-link bandwidth and the maximum
//! bisection bandwidth the metal stack can provide.

use crate::Energy;

/// Per-technology energy and wiring parameters.
///
/// Construct via the presets ([`TechnologyProfile::cmos_180nm`], …) or
/// [`TechnologyProfile::builder`]. All energies are per bit.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyProfile {
    name: String,
    switch_energy: Energy,
    link_energy_per_mm: Energy,
    repeater_energy: Energy,
    repeater_spacing_mm: f64,
    link_bandwidth_bps: f64,
    max_bisection_links: usize,
    clock_hz: f64,
    radix_exponent: f64,
    reference_radix: usize,
    idle_energy_unit: Energy,
}

impl TechnologyProfile {
    /// Starts building a custom profile from the 180 nm preset defaults.
    pub fn builder(name: impl Into<String>) -> TechnologyProfileBuilder {
        TechnologyProfileBuilder {
            profile: TechnologyProfile {
                name: name.into(),
                ..TechnologyProfile::cmos_180nm()
            },
        }
    }

    /// 180 nm CMOS, 1.8 V: the technology node contemporary with the
    /// paper. Switch energy 0.284 pJ/bit (the value used by Hu &
    /// Marculescu, reference 4 of the paper) and 0.224 pJ/bit/mm of wire,
    /// repeaters every 2 mm.
    pub fn cmos_180nm() -> Self {
        TechnologyProfile {
            name: "cmos-180nm".into(),
            switch_energy: Energy::from_picojoules(0.284),
            link_energy_per_mm: Energy::from_picojoules(0.224),
            repeater_energy: Energy::from_picojoules(0.035),
            repeater_spacing_mm: 2.0,
            link_bandwidth_bps: 3.2e9, // 32-bit links at 100 MHz
            max_bisection_links: 16,
            clock_hz: 100.0e6,
            radix_exponent: 0.0,
            reference_radix: 5,
            idle_energy_unit: Energy::ZERO,
        }
    }

    /// 130 nm CMOS, 1.2 V.
    pub fn cmos_130nm() -> Self {
        TechnologyProfile {
            name: "cmos-130nm".into(),
            switch_energy: Energy::from_picojoules(0.158),
            link_energy_per_mm: Energy::from_picojoules(0.135),
            repeater_energy: Energy::from_picojoules(0.021),
            repeater_spacing_mm: 1.5,
            link_bandwidth_bps: 6.4e9,
            max_bisection_links: 24,
            clock_hz: 200.0e6,
            radix_exponent: 0.0,
            reference_radix: 5,
            idle_energy_unit: Energy::ZERO,
        }
    }

    /// 100 nm CMOS, 1.0 V.
    pub fn cmos_100nm() -> Self {
        TechnologyProfile {
            name: "cmos-100nm".into(),
            switch_energy: Energy::from_picojoules(0.098),
            link_energy_per_mm: Energy::from_picojoules(0.079),
            repeater_energy: Energy::from_picojoules(0.014),
            repeater_spacing_mm: 1.0,
            link_bandwidth_bps: 12.8e9,
            max_bisection_links: 32,
            clock_hz: 400.0e6,
            radix_exponent: 0.0,
            reference_radix: 5,
            idle_energy_unit: Energy::ZERO,
        }
    }

    /// A profile calibrated so that simulating the paper's 16-node AES mesh
    /// prototype (Virtex-2, 100 MHz, ~2 mm inter-tile wires) lands near the
    /// measured 5.1 uJ per 128-bit block. FPGA fabric burns far more energy
    /// per bit than ASIC wires, and — unlike the ASIC presets — a large
    /// share of FPGA prototype power is router complexity and clock load,
    /// so this profile enables radix-dependent switch energy (exponent 2,
    /// Orion-style crossbar/clock area scaling) and a per-cycle idle term.
    /// These model exactly the effect the paper's comparison exploits: the
    /// mesh replicates one uniform 5-port router, while the customized
    /// architecture instantiates degree-sized switches.
    pub fn fpga_virtex2() -> Self {
        TechnologyProfile {
            name: "fpga-virtex2".into(),
            switch_energy: Energy::from_picojoules(15.0),
            link_energy_per_mm: Energy::from_picojoules(6.0),
            repeater_energy: Energy::ZERO,
            repeater_spacing_mm: f64::INFINITY,
            link_bandwidth_bps: 3.2e9,
            max_bisection_links: 16,
            clock_hz: 100.0e6,
            radix_exponent: 2.0,
            reference_radix: 5,
            idle_energy_unit: Energy::from_picojoules(40.0),
        }
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Switch (router) traversal energy per bit, `E_Sbit`.
    pub fn switch_energy(&self) -> Energy {
        self.switch_energy
    }

    /// Wire energy per bit per millimetre.
    pub fn link_energy_per_mm(&self) -> Energy {
        self.link_energy_per_mm
    }

    /// Link energy per bit for a wire of `length_mm`, including the
    /// repeaters inserted every [`repeater spacing`](Self::repeater_spacing_mm):
    /// `E_Lbit(l) = l * e_wire + ⌊l / s⌋ * e_rep`.
    ///
    /// # Panics
    ///
    /// Panics if `length_mm` is negative or NaN.
    pub fn link_energy(&self, length_mm: f64) -> Energy {
        assert!(
            length_mm >= 0.0 && length_mm.is_finite(),
            "link length must be finite and non-negative, got {length_mm}"
        );
        let repeaters = if self.repeater_spacing_mm.is_finite() {
            (length_mm / self.repeater_spacing_mm).floor()
        } else {
            0.0
        };
        self.link_energy_per_mm * length_mm + self.repeater_energy * repeaters
    }

    /// Energy of one repeater stage per bit.
    pub fn repeater_energy(&self) -> Energy {
        self.repeater_energy
    }

    /// Distance between repeaters in millimetres (`inf` = unrepeated).
    pub fn repeater_spacing_mm(&self) -> f64 {
        self.repeater_spacing_mm
    }

    /// Maximum sustainable bandwidth of one link, bits/second.
    pub fn link_bandwidth_bps(&self) -> f64 {
        self.link_bandwidth_bps
    }

    /// Maximum number of links the technology allows across a chip
    /// bisection (the Section 4.2 wiring-resource budget).
    pub fn max_bisection_links(&self) -> usize {
        self.max_bisection_links
    }

    /// Maximum bisection bandwidth in bits/second.
    pub fn max_bisection_bandwidth_bps(&self) -> f64 {
        self.max_bisection_links as f64 * self.link_bandwidth_bps
    }

    /// Nominal clock frequency, Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Per-bit switch energy for a router with `radix` ports:
    /// `E_Sbit * (radix / reference_radix) ^ radix_exponent`.
    ///
    /// The ASIC presets use exponent 0 (radix-independent, plain
    /// Equation 1); the FPGA profile uses exponent 2 to capture
    /// crossbar/clock scaling with router size.
    pub fn switch_energy_for_radix(&self, radix: usize) -> Energy {
        if self.radix_exponent == 0.0 {
            return self.switch_energy;
        }
        let ratio = radix as f64 / self.reference_radix as f64;
        self.switch_energy * ratio.powf(self.radix_exponent)
    }

    /// Idle/clock energy one router of the given radix burns per cycle:
    /// `idle_unit * radix^2` (router area grows roughly quadratically with
    /// port count). Zero for the ASIC presets.
    pub fn router_idle_energy_per_cycle(&self, radix: usize) -> Energy {
        self.idle_energy_unit * (radix * radix) as f64
    }

    /// The radix at which [`Self::switch_energy_for_radix`] equals the base
    /// switch energy.
    pub fn reference_radix(&self) -> usize {
        self.reference_radix
    }
}

/// Builder for custom [`TechnologyProfile`]s; see
/// [`TechnologyProfile::builder`].
#[derive(Debug, Clone)]
pub struct TechnologyProfileBuilder {
    profile: TechnologyProfile,
}

impl TechnologyProfileBuilder {
    /// Sets the switch energy per bit.
    #[must_use]
    pub fn switch_energy(mut self, e: Energy) -> Self {
        self.profile.switch_energy = e;
        self
    }

    /// Sets the wire energy per bit per millimetre.
    #[must_use]
    pub fn link_energy_per_mm(mut self, e: Energy) -> Self {
        self.profile.link_energy_per_mm = e;
        self
    }

    /// Sets the repeater energy per bit and spacing in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if `spacing_mm <= 0`.
    #[must_use]
    pub fn repeaters(mut self, e: Energy, spacing_mm: f64) -> Self {
        assert!(spacing_mm > 0.0, "repeater spacing must be positive");
        self.profile.repeater_energy = e;
        self.profile.repeater_spacing_mm = spacing_mm;
        self
    }

    /// Sets the per-link bandwidth in bits/second.
    #[must_use]
    pub fn link_bandwidth_bps(mut self, bps: f64) -> Self {
        self.profile.link_bandwidth_bps = bps;
        self
    }

    /// Sets the bisection wiring budget in links.
    #[must_use]
    pub fn max_bisection_links(mut self, links: usize) -> Self {
        self.profile.max_bisection_links = links;
        self
    }

    /// Sets the nominal clock frequency in Hz.
    #[must_use]
    pub fn clock_hz(mut self, hz: f64) -> Self {
        self.profile.clock_hz = hz;
        self
    }

    /// Enables radix-dependent switch energy with the given exponent and
    /// reference radix.
    ///
    /// # Panics
    ///
    /// Panics if `reference_radix == 0` or the exponent is negative.
    #[must_use]
    pub fn radix_scaling(mut self, exponent: f64, reference_radix: usize) -> Self {
        assert!(reference_radix > 0, "reference radix must be positive");
        assert!(exponent >= 0.0, "radix exponent must be non-negative");
        self.profile.radix_exponent = exponent;
        self.profile.reference_radix = reference_radix;
        self
    }

    /// Sets the per-cycle idle energy unit (multiplied by radix^2).
    #[must_use]
    pub fn idle_energy_unit(mut self, e: Energy) -> Self {
        self.profile.idle_energy_unit = e;
        self
    }

    /// Finalizes the profile.
    pub fn build(self) -> TechnologyProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_down_with_feature_size() {
        let e180 = TechnologyProfile::cmos_180nm();
        let e130 = TechnologyProfile::cmos_130nm();
        let e100 = TechnologyProfile::cmos_100nm();
        assert!(e180.switch_energy() > e130.switch_energy());
        assert!(e130.switch_energy() > e100.switch_energy());
        assert!(e180.link_energy_per_mm() > e130.link_energy_per_mm());
    }

    #[test]
    fn link_energy_includes_repeaters() {
        let t = TechnologyProfile::cmos_180nm();
        // 1 mm: no repeater.
        let e1 = t.link_energy(1.0);
        assert_eq!(e1, Energy::from_picojoules(0.224));
        // 5 mm: two repeaters (at 2 mm and 4 mm).
        let e5 = t.link_energy(5.0);
        let expect = Energy::from_picojoules(0.224 * 5.0 + 0.035 * 2.0);
        assert!((e5.joules() - expect.joules()).abs() < 1e-20);
    }

    #[test]
    fn zero_length_link_is_free() {
        let t = TechnologyProfile::cmos_180nm();
        assert_eq!(t.link_energy(0.0), Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_panics() {
        TechnologyProfile::cmos_180nm().link_energy(-1.0);
    }

    #[test]
    fn fpga_profile_is_unrepeated() {
        let t = TechnologyProfile::fpga_virtex2();
        assert_eq!(t.link_energy(10.0), t.link_energy_per_mm() * 10.0);
        assert_eq!(t.name(), "fpga-virtex2");
    }

    #[test]
    fn asic_presets_are_radix_independent() {
        let t = TechnologyProfile::cmos_180nm();
        for radix in [2usize, 5, 9] {
            assert_eq!(t.switch_energy_for_radix(radix), t.switch_energy());
            assert_eq!(t.router_idle_energy_per_cycle(radix), Energy::ZERO);
        }
    }

    #[test]
    fn fpga_switch_energy_scales_quadratically() {
        let t = TechnologyProfile::fpga_virtex2();
        let e5 = t.switch_energy_for_radix(5);
        let e3 = t.switch_energy_for_radix(3);
        assert_eq!(e5, t.switch_energy()); // reference radix
        assert!((e3.joules() / e5.joules() - 0.36).abs() < 1e-12); // (3/5)^2
                                                                   // Idle grows with radix^2.
        let i3 = t.router_idle_energy_per_cycle(3);
        let i5 = t.router_idle_energy_per_cycle(5);
        assert!((i5.joules() / i3.joules() - 25.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn builder_radix_and_idle() {
        let t = TechnologyProfile::builder("r")
            .radix_scaling(1.0, 4)
            .idle_energy_unit(Energy::from_picojoules(2.0))
            .build();
        assert_eq!(t.reference_radix(), 4);
        assert_eq!(t.switch_energy_for_radix(8), t.switch_energy() * 2.0);
        assert_eq!(
            t.router_idle_energy_per_cycle(2),
            Energy::from_picojoules(8.0)
        );
    }

    #[test]
    fn builder_overrides() {
        let t = TechnologyProfile::builder("custom")
            .switch_energy(Energy::from_picojoules(1.0))
            .link_energy_per_mm(Energy::from_picojoules(2.0))
            .repeaters(Energy::from_picojoules(0.5), 1.0)
            .link_bandwidth_bps(1e9)
            .max_bisection_links(8)
            .clock_hz(50e6)
            .build();
        assert_eq!(t.name(), "custom");
        assert_eq!(t.switch_energy(), Energy::from_picojoules(1.0));
        assert_eq!(t.max_bisection_bandwidth_bps(), 8e9);
        assert_eq!(t.clock_hz(), 50e6);
        // 3 mm with 1 mm spacing: 3 repeaters.
        let e = t.link_energy(3.0);
        assert!((e.picojoules() - (6.0 + 1.5)).abs() < 1e-9);
    }
}
