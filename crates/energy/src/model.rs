//! The Equation-1 energy model over routes.

use crate::{Energy, TechnologyProfile};

/// Computes bit and transfer energies for routes over a floorplanned
/// topology (Equation 1 of the paper).
///
/// A route is described by the lengths (mm) of its links; the number of
/// switches traversed is `links + 1` (source and destination network
/// interfaces both switch the bit).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    profile: TechnologyProfile,
}

impl EnergyModel {
    /// Creates a model over the given technology.
    pub fn new(profile: TechnologyProfile) -> Self {
        EnergyModel { profile }
    }

    /// The underlying technology profile.
    pub fn profile(&self) -> &TechnologyProfile {
        &self.profile
    }

    /// `E_bit` for a route with the given link lengths:
    /// `n_hops * E_Sbit + Σ E_Lbit(l)` with `n_hops = links + 1`.
    ///
    /// An empty route (source = destination) costs nothing.
    pub fn route_energy_per_bit(&self, link_lengths_mm: &[f64]) -> Energy {
        if link_lengths_mm.is_empty() {
            return Energy::ZERO;
        }
        let hops = link_lengths_mm.len() + 1;
        let switch = self.profile.switch_energy() * hops as f64;
        let wires: Energy = link_lengths_mm
            .iter()
            .map(|&l| self.profile.link_energy(l))
            .sum();
        switch + wires
    }

    /// Energy to move `volume_bits` along the route.
    pub fn transfer_energy(&self, volume_bits: f64, link_lengths_mm: &[f64]) -> Energy {
        self.route_energy_per_bit(link_lengths_mm) * volume_bits
    }

    /// Energy of one bit crossing a single switch (used by the flit-level
    /// simulator for per-event accounting).
    pub fn switch_event_energy(&self, bits: f64) -> Energy {
        self.profile.switch_energy() * bits
    }

    /// Switch traversal energy scaled by router radix
    /// ([`TechnologyProfile::switch_energy_for_radix`]). Equals
    /// [`EnergyModel::switch_event_energy`] when the profile's radix
    /// exponent is zero (the ASIC presets).
    pub fn switch_event_energy_radix(&self, bits: f64, radix: usize) -> Energy {
        self.profile.switch_energy_for_radix(radix) * bits
    }

    /// Idle/clock energy a router of the given radix burns over `cycles`
    /// cycles. Zero for the ASIC presets.
    pub fn idle_energy(&self, radix: usize, cycles: u64) -> Energy {
        self.profile.router_idle_energy_per_cycle(radix) * cycles as f64
    }

    /// Energy of `bits` crossing one link of `length_mm`.
    pub fn link_event_energy(&self, bits: f64, length_mm: f64) -> Energy {
        self.profile.link_energy(length_mm) * bits
    }

    /// A lower bound on the energy of delivering `volume_bits` from a core
    /// to another separated by `distance_mm`: any path uses at least two
    /// switches and at least `distance_mm` of wire. Used as the admissible
    /// remaining-cost bound in the branch-and-bound (`DESIGN.md`,
    /// decision 2).
    pub fn direct_transfer_lower_bound(&self, volume_bits: f64, distance_mm: f64) -> Energy {
        let per_bit = self.profile.switch_energy() * 2.0 + self.profile.link_energy(distance_mm);
        per_bit * volume_bits
    }
}

/// An energy total split into switch, link and idle components, convenient
/// for reporting (the paper's Table-style comparisons quote both dynamic
/// terms; idle captures the clock/leakage share of prototype measurements).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy dissipated switching flits through routers.
    pub switch: Energy,
    /// Energy dissipated in links (wires + repeaters).
    pub link: Energy,
    /// Router idle/clock energy accumulated over the run's cycles.
    pub idle: Energy,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Energy {
        self.switch + self.link + self.idle
    }

    /// Accumulates another breakdown.
    pub fn accumulate(&mut self, other: EnergyBreakdown) {
        self.switch += other.switch;
        self.link += other.link;
        self.idle += other.idle;
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {} (switch {}, link {}, idle {})",
            self.total(),
            self.switch,
            self.link,
            self.idle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(TechnologyProfile::cmos_180nm())
    }

    #[test]
    fn empty_route_is_free() {
        assert_eq!(model().route_energy_per_bit(&[]), Energy::ZERO);
    }

    #[test]
    fn single_link_route_uses_two_switches() {
        let m = model();
        let e = m.route_energy_per_bit(&[1.0]);
        let expect = m.profile().switch_energy() * 2.0 + m.profile().link_energy(1.0);
        assert!((e.joules() - expect.joules()).abs() < 1e-22);
    }

    #[test]
    fn equation_one_shape() {
        // E = nhops * ES + (nhops - 1) * EL for uniform unit links.
        let m = model();
        for links in 1usize..6 {
            let lens = vec![1.0; links];
            let e = m.route_energy_per_bit(&lens);
            let nhops = (links + 1) as f64;
            let expect =
                m.profile().switch_energy() * nhops + m.profile().link_energy(1.0) * (nhops - 1.0);
            assert!(
                (e.joules() - expect.joules()).abs() < 1e-20,
                "links = {links}"
            );
        }
    }

    #[test]
    fn transfer_scales_with_volume() {
        let m = model();
        let e1 = m.transfer_energy(1.0, &[2.0]);
        let e128 = m.transfer_energy(128.0, &[2.0]);
        assert!((e128.joules() - 128.0 * e1.joules()).abs() < 1e-18);
    }

    #[test]
    fn longer_routes_cost_more() {
        let m = model();
        let short = m.route_energy_per_bit(&[1.0]);
        let long = m.route_energy_per_bit(&[1.0, 1.0, 1.0]);
        assert!(long > short);
    }

    #[test]
    fn lower_bound_is_below_any_real_route() {
        let m = model();
        let lb = m.direct_transfer_lower_bound(64.0, 3.0);
        // Any real route covering >= 3.0 mm: e.g. 2 links of 1.5 mm + 3
        // switches.
        let real = m.transfer_energy(64.0, &[1.5, 1.5]);
        assert!(lb <= real);
        // Even the direct link (2 switches) matches the bound exactly.
        let direct = m.transfer_energy(64.0, &[3.0]);
        assert!((lb.joules() - direct.joules()).abs() < 1e-18);
    }

    #[test]
    fn event_energies() {
        let m = model();
        assert_eq!(
            m.switch_event_energy(32.0),
            m.profile().switch_energy() * 32.0
        );
        assert_eq!(
            m.link_event_energy(32.0, 2.0),
            m.profile().link_energy(2.0) * 32.0
        );
    }

    #[test]
    fn breakdown_accumulates_and_displays() {
        let mut b = EnergyBreakdown::default();
        b.accumulate(EnergyBreakdown {
            switch: Energy::from_picojoules(2.0),
            link: Energy::from_picojoules(1.0),
            idle: Energy::from_picojoules(0.25),
        });
        b.accumulate(EnergyBreakdown {
            switch: Energy::from_picojoules(1.0),
            link: Energy::from_picojoules(0.5),
            idle: Energy::from_picojoules(0.25),
        });
        assert!((b.total().picojoules() - 5.0).abs() < 1e-9);
        assert_eq!(
            b.to_string(),
            "total 5.000 pJ (switch 3.000 pJ, link 1.500 pJ, idle 0.500 pJ)"
        );
    }
}
