//! Bit-energy model for NoC communication (Equation 1 of the paper).
//!
//! The energy consumed by moving one bit from network node `i` to node `j`
//! is
//!
//! ```text
//! E_bit(i, j) = n_hops * E_Sbit + Σ_links E_Lbit(l)
//! ```
//!
//! where `n_hops` is the number of *switches* traversed (one more than the
//! number of links), `E_Sbit` the switch energy per bit, and `E_Lbit(l)` the
//! link energy per bit for a link of length `l` — which, unlike in regular
//! grids, must account for the actual floorplan distance and any repeaters
//! the wire needs ("EL-bit per unit length is stored in the library and the
//! EL-bit can be obtained from this data given the actual link length and
//! also taking the repeaters into account", Section 3).
//!
//! # Example
//!
//! ```
//! use noc_energy::{EnergyModel, TechnologyProfile};
//!
//! let model = EnergyModel::new(TechnologyProfile::cmos_180nm());
//! // A two-link route (3 switches) over 2 mm + 3 mm of wire:
//! let per_bit = model.route_energy_per_bit(&[2.0, 3.0]);
//! let per_128b = model.transfer_energy(128.0, &[2.0, 3.0]);
//! assert!((per_128b.joules() - 128.0 * per_bit.joules()).abs() < 1e-18);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod model;
mod profile;
mod units;

pub use model::{EnergyBreakdown, EnergyModel};
pub use profile::TechnologyProfile;
pub use units::Energy;
