//! `noc-telemetry`: structured observability for the NoC synthesis
//! workspace — scoped spans with monotonic timing, lock-free atomic
//! counters/gauges/histograms, and a bounded event log that drains to a
//! JSON-Lines trace.
//!
//! # Design
//!
//! A [`Telemetry`] handle is either **recording** (an `Arc`-shared state
//! block) or **disabled** (a `None` inner — every operation is a branch
//! and a return). The crate holds one process-wide slot, empty by
//! default: instrumented layers ask [`active()`] for the global handle
//! and do nothing when none is installed, so *disabled telemetry costs
//! one relaxed atomic load per instrumented operation* — and the
//! instrumented operations are run/scenario/wave-grained, never
//! per-search-node. The `decompose_scaling` bench measures this fast
//! path and CI asserts the disabled overhead stays under 2% of an n=30
//! decomposition.
//!
//! Three instrument families, one event log:
//!
//! * **Spans** ([`Telemetry::span`]) time a scope monotonically
//!   ([`std::time::Instant`]) and record a `span` event on drop;
//!   [`Telemetry::span_event`] records an externally-timed duration (the
//!   decomposer's phase accumulators already own their timing).
//! * **Counters/gauges/histograms** are plain `AtomicU64` cells behind
//!   cloneable handles — updates are lock-free; the registry lookup by
//!   name takes a short lock, so hot paths should hold a handle.
//! * **Events** ([`Telemetry::event`]) record point-in-time occurrences
//!   with typed fields.
//!
//! The event log is bounded ([`Telemetry::with_capacity`]): a full log
//! drops new events and counts the drops, so a runaway campaign cannot
//! eat the heap. [`Telemetry::take_trace`] drains the log and appends a
//! snapshot of every counter/gauge/histogram (plus a
//! `telemetry.dropped` counter if anything was lost) — the JSON-Lines
//! document written beside campaign reports by `explore … --trace`.
//!
//! # Example
//!
//! ```
//! use noc_telemetry::{summarize, Telemetry};
//!
//! let telemetry = Telemetry::recording();
//! {
//!     let _span = telemetry.span("demo.work").field("items", 3u64);
//!     telemetry.add("demo.items", 3);
//! }
//! let events = telemetry.take_trace();
//! assert_eq!(events[0].name, "demo.work");
//! let text = noc_telemetry::write_jsonl(&events);
//! let reread = noc_telemetry::read_jsonl(&text).unwrap();
//! assert_eq!(noc_telemetry::write_jsonl(&reread), text);
//! println!("{}", summarize(&reread).render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod summary;

pub use event::{read_jsonl, write_jsonl, Event, EventKind, Field, ParseError};
pub use summary::{summarize, HistSummary, SpanSummary, StreamSummary};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default bound on the in-memory event log.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// A telemetry handle: recording (shared, cloneable) or disabled (every
/// operation is a no-op). See the [crate docs](crate).
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("events", &inner.log.lock().expect("telemetry log").len())
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("capacity", &self.capacity)
            .finish()
    }
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    log: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCells>>>,
}

/// Lock-free cells behind a [`Histogram`] handle.
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free counter handle (no-op when obtained from a disabled
/// handle). Cache it outside loops to skip the by-name registry lookup.
#[derive(Debug, Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A lock-free gauge handle: a last-write-wins level (queue depths,
/// fleet sizes).
#[derive(Debug, Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current level (0 when disabled).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A lock-free histogram handle: count/sum/min/max of recorded values
/// (typically microseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Option<Arc<HistCells>>);

impl std::fmt::Debug for HistCells {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistCells")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(cells) = &self.0 {
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
            cells.min.fetch_min(v, Ordering::Relaxed);
            cells.max.fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// A scoped span: created by [`Telemetry::span`], records a `span` event
/// with its monotonic duration when dropped. Inert (no clock reads) when
/// the handle is disabled.
#[derive(Debug)]
pub struct Span {
    active: Option<SpanActive>,
}

#[derive(Debug)]
struct SpanActive {
    inner: Arc<Inner>,
    name: String,
    fields: Vec<(String, Field)>,
    start: Instant,
}

impl Span {
    /// Attaches a field (builder form).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Field>) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attaches a field in place — for values only known mid-scope.
    pub fn add_field(&mut self, key: &str, value: impl Into<Field>) {
        if let Some(active) = &mut self.active {
            active.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let dur = active.start.elapsed();
            active.inner.push(
                EventKind::Span,
                &active.name,
                Some(dur.as_micros() as u64),
                None,
                active.fields,
            );
        }
    }
}

impl Telemetry {
    /// A recording handle with the default event-log bound.
    pub fn recording() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recording handle bounding the event log at `capacity` events
    /// (further events are dropped and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                log: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The disabled handle: every operation no-ops.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A counter handle (no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            inner
                .counters
                .lock()
                .expect("telemetry counters")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        }))
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Current value of the named counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter(name).value()
    }

    /// A gauge handle (no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            inner
                .gauges
                .lock()
                .expect("telemetry gauges")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone()
        }))
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// A histogram handle (no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            inner
                .hists
                .lock()
                .expect("telemetry histograms")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistCells::new()))
                .clone()
        }))
    }

    /// Records one sample into the named histogram.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Records a point-in-time event with typed fields.
    pub fn event(&self, name: &str, fields: &[(&str, Field)]) {
        if let Some(inner) = &self.inner {
            let owned = fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            inner.push(EventKind::Event, name, None, None, owned);
        }
    }

    /// Opens a scoped span; its monotonic duration is recorded as a
    /// `span` event when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        Span {
            active: self.inner.as_ref().map(|inner| SpanActive {
                inner: inner.clone(),
                name: name.to_string(),
                fields: Vec::new(),
                start: Instant::now(),
            }),
        }
    }

    /// Records a span whose duration was measured externally (e.g. the
    /// decomposer's thread-local phase accumulators).
    pub fn span_event(&self, name: &str, duration: Duration, fields: &[(&str, Field)]) {
        if let Some(inner) = &self.inner {
            let owned = fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            inner.push(
                EventKind::Span,
                name,
                Some(duration.as_micros() as u64),
                None,
                owned,
            );
        }
    }

    /// Events dropped so far by the bounded log.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Drains the event log (counters/gauges/histograms keep
    /// accumulating).
    pub fn drain(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.log.lock().expect("telemetry log")),
            None => Vec::new(),
        }
    }

    /// Drains the event log and appends a snapshot of every counter,
    /// gauge and histogram (sorted by name, deterministic) — the full
    /// trace document for [`write_jsonl`]. A nonzero drop count appends
    /// a final `telemetry.dropped` counter record.
    pub fn take_trace(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events = self.drain();
        let t_us = inner.now_us();
        let mut push = |kind, name: &str, value, fields| {
            events.push(Event {
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                t_us,
                kind,
                name: name.to_string(),
                dur_us: None,
                value,
                fields,
            });
        };
        for (name, cell) in inner.counters.lock().expect("telemetry counters").iter() {
            push(
                EventKind::Counter,
                name,
                Some(cell.load(Ordering::Relaxed)),
                Vec::new(),
            );
        }
        for (name, cell) in inner.gauges.lock().expect("telemetry gauges").iter() {
            push(
                EventKind::Gauge,
                name,
                Some(cell.load(Ordering::Relaxed)),
                Vec::new(),
            );
        }
        for (name, cells) in inner.hists.lock().expect("telemetry histograms").iter() {
            let count = cells.count.load(Ordering::Relaxed);
            let fields = vec![
                ("count".to_string(), Field::U64(count)),
                (
                    "min".to_string(),
                    Field::U64(if count == 0 {
                        0
                    } else {
                        cells.min.load(Ordering::Relaxed)
                    }),
                ),
                (
                    "max".to_string(),
                    Field::U64(cells.max.load(Ordering::Relaxed)),
                ),
                (
                    "sum".to_string(),
                    Field::U64(cells.sum.load(Ordering::Relaxed)),
                ),
            ];
            push(EventKind::Hist, name, None, fields);
        }
        let dropped = inner.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            push(
                EventKind::Counter,
                "telemetry.dropped",
                Some(dropped),
                Vec::new(),
            );
        }
        events
    }
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn push(
        &self,
        kind: EventKind,
        name: &str,
        dur_us: Option<u64>,
        value: Option<u64>,
        fields: Vec<(String, Field)>,
    ) {
        let mut log = self.log.lock().expect("telemetry log");
        if log.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.now_us(),
            kind,
            name: name.to_string(),
            dur_us,
            value,
            fields,
        };
        log.push(event);
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Installs `telemetry` as the process-wide handle that [`active()`]
/// hands to instrumented layers. First enabled install wins; returns
/// `false` (and changes nothing) on a disabled handle or a second
/// install.
pub fn install(telemetry: Telemetry) -> bool {
    if !telemetry.is_enabled() {
        return false;
    }
    let installed = GLOBAL.set(telemetry).is_ok();
    if installed {
        ACTIVE.store(true, Ordering::Release);
    }
    installed
}

/// Whether a global handle is installed — the single relaxed load on
/// every disabled-telemetry fast path.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The installed global handle, if any. Instrumented layers call this
/// once per run/scenario/wave — never per inner-loop iteration.
pub fn active() -> Option<&'static Telemetry> {
    if !is_active() {
        return None;
    }
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_noops_everything() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.add("c", 5);
        t.gauge_set("g", 9);
        t.record("h", 100);
        t.event("e", &[("k", Field::U64(1))]);
        let span = t.span("s").field("k", 2u64);
        drop(span);
        t.span_event("s2", Duration::from_millis(1), &[]);
        assert_eq!(t.counter_value("c"), 0);
        assert!(t.take_trace().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let t = Telemetry::recording();
        let c = t.counter("work.items");
        c.add(3);
        t.add("work.items", 4);
        assert_eq!(t.counter_value("work.items"), 7);

        t.gauge_set("queue", 5);
        t.gauge_set("queue", 2);
        assert_eq!(t.gauge("queue").value(), 2);

        let h = t.histogram("lat");
        h.record(10);
        h.record(30);
        let trace = t.take_trace();
        let hist = trace
            .iter()
            .find(|e| e.kind == EventKind::Hist && e.name == "lat")
            .unwrap();
        assert_eq!(hist.field("count"), Some(&Field::U64(2)));
        assert_eq!(hist.field("min"), Some(&Field::U64(10)));
        assert_eq!(hist.field("max"), Some(&Field::U64(30)));
        assert_eq!(hist.field("sum"), Some(&Field::U64(40)));
    }

    #[test]
    fn spans_record_duration_and_fields() {
        let t = Telemetry::recording();
        {
            let mut span = t.span("outer").field("static", "yes");
            std::thread::sleep(Duration::from_millis(5));
            span.add_field("late", 7u64);
        }
        let events = t.drain();
        assert_eq!(events.len(), 1);
        let span = &events[0];
        assert_eq!(span.kind, EventKind::Span);
        assert_eq!(span.name, "outer");
        assert!(span.dur_us.unwrap() >= 4_000, "dur {:?}", span.dur_us);
        assert_eq!(span.field("static").unwrap().as_str(), Some("yes"));
        assert_eq!(span.field("late"), Some(&Field::U64(7)));
    }

    #[test]
    fn sequence_numbers_are_strictly_increasing() {
        let t = Telemetry::recording();
        for i in 0..10u64 {
            t.event("tick", &[("i", Field::U64(i))]);
        }
        let events = t.take_trace();
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn bounded_log_drops_and_counts() {
        let t = Telemetry::with_capacity(3);
        for _ in 0..5 {
            t.event("e", &[]);
        }
        assert_eq!(t.dropped(), 2);
        let trace = t.take_trace();
        assert_eq!(trace.iter().filter(|e| e.name == "e").count(), 3);
        let drop_note = trace
            .iter()
            .find(|e| e.name == "telemetry.dropped")
            .expect("drop counter recorded");
        assert_eq!(drop_note.value, Some(2));
    }

    #[test]
    fn drain_keeps_counters() {
        let t = Telemetry::recording();
        t.add("kept", 2);
        t.event("gone", &[]);
        assert_eq!(t.drain().len(), 1);
        assert!(t.drain().is_empty());
        assert_eq!(t.counter_value("kept"), 2);
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        let t = Telemetry::recording();
        t.event("a", &[("rate", Field::F64(0.5))]);
        t.add("c", 9);
        t.record("h", 12);
        let events = t.take_trace();
        let text = write_jsonl(&events);
        let reread = read_jsonl(&text).unwrap();
        assert_eq!(reread, events);
        assert_eq!(write_jsonl(&reread), text);
    }

    #[test]
    fn global_slot_installs_once() {
        // Shares process state with nothing else in this crate's tests.
        assert!(active().is_none() || is_active());
        let first = install(Telemetry::disabled());
        assert!(!first, "disabled handles never install");
        let installed = install(Telemetry::recording());
        let second = install(Telemetry::recording());
        assert!(installed || is_active());
        assert!(!second || !installed, "two installs cannot both win");
        assert!(active().is_some());
        active().unwrap().add("global.test", 1);
    }
}
