//! Aggregating an event stream into the phase-time/counter table that
//! `explore events --summarize` renders.

use crate::event::{Event, EventKind};

/// Aggregate of every span event sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Longest single occurrence, microseconds.
    pub max_us: u64,
}

impl SpanSummary {
    /// Mean duration in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / 1e3 / self.count as f64
        }
    }
}

/// A histogram snapshot read back from a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
}

/// Everything [`summarize`] extracts from a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Total records in the stream.
    pub events: usize,
    /// Span aggregates, largest total first.
    pub spans: Vec<SpanSummary>,
    /// Point-event occurrence counts by name, alphabetical.
    pub event_counts: Vec<(String, u64)>,
    /// Final counter values by name (last snapshot wins), alphabetical.
    pub counters: Vec<(String, u64)>,
    /// Final gauge levels by name, alphabetical.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots by name, alphabetical.
    pub hists: Vec<(String, HistSummary)>,
    /// Events the producer dropped (from the `telemetry.dropped`
    /// counter), if any.
    pub dropped: u64,
}

/// Folds a stream into per-name aggregates.
pub fn summarize(events: &[Event]) -> StreamSummary {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<&str, SpanSummary> = BTreeMap::new();
    let mut event_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, u64> = BTreeMap::new();
    let mut hists: BTreeMap<&str, HistSummary> = BTreeMap::new();
    for event in events {
        match event.kind {
            EventKind::Span => {
                let dur = event.dur_us.unwrap_or(0);
                let entry = spans.entry(&event.name).or_insert_with(|| SpanSummary {
                    name: event.name.clone(),
                    count: 0,
                    total_us: 0,
                    max_us: 0,
                });
                entry.count += 1;
                entry.total_us += dur;
                entry.max_us = entry.max_us.max(dur);
            }
            EventKind::Event => *event_counts.entry(&event.name).or_insert(0) += 1,
            EventKind::Counter => {
                counters.insert(&event.name, event.value.unwrap_or(0));
            }
            EventKind::Gauge => {
                gauges.insert(&event.name, event.value.unwrap_or(0));
            }
            EventKind::Hist => {
                let get = |key: &str| event.field(key).and_then(|f| f.as_u64()).unwrap_or(0);
                hists.insert(
                    &event.name,
                    HistSummary {
                        count: get("count"),
                        min: get("min"),
                        max: get("max"),
                        sum: get("sum"),
                    },
                );
            }
        }
    }
    let dropped = counters.get("telemetry.dropped").copied().unwrap_or(0);
    let mut spans: Vec<SpanSummary> = spans.into_values().collect();
    spans.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    StreamSummary {
        events: events.len(),
        spans,
        event_counts: event_counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        counters: counters
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        hists: hists.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        dropped,
    }
}

impl StreamSummary {
    /// Renders the aligned text table `explore events --summarize`
    /// prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} event(s)\n", self.events));
        if self.dropped > 0 {
            out.push_str(&format!(
                "warning: producer dropped {} event(s) at its log bound\n",
                self.dropped
            ));
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "\n{:<40} {:>8} {:>12} {:>12} {:>12}\n",
                "span", "count", "total ms", "mean ms", "max ms"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<40} {:>8} {:>12.2} {:>12.3} {:>12.2}\n",
                    s.name,
                    s.count,
                    s.total_us as f64 / 1e3,
                    s.mean_ms(),
                    s.max_us as f64 / 1e3,
                ));
            }
        }
        if !self.event_counts.is_empty() {
            out.push_str(&format!("\n{:<40} {:>8}\n", "event", "count"));
            for (name, count) in &self.event_counts {
                out.push_str(&format!("{name:<40} {count:>8}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<40} {:>12}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<40} {value:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("\n{:<40} {:>12}\n", "gauge", "last"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<40} {value:>12}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str(&format!(
                "\n{:<40} {:>8} {:>10} {:>10} {:>12}\n",
                "histogram", "count", "min", "max", "sum"
            ));
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "{:<40} {:>8} {:>10} {:>10} {:>12}\n",
                    name, h.count, h.min, h.max, h.sum
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;

    fn span(name: &str, dur_us: u64) -> Event {
        Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Span,
            name: name.into(),
            dur_us: Some(dur_us),
            value: None,
            fields: Vec::new(),
        }
    }

    #[test]
    fn aggregates_spans_counters_and_events() {
        let events = vec![
            span("measure", 1000),
            span("measure", 3000),
            span("synth", 500),
            Event {
                seq: 3,
                t_us: 9,
                kind: EventKind::Event,
                name: "deal".into(),
                dur_us: None,
                value: None,
                fields: Vec::new(),
            },
            Event {
                seq: 4,
                t_us: 9,
                kind: EventKind::Counter,
                name: "nodes".into(),
                dur_us: None,
                value: Some(42),
                fields: Vec::new(),
            },
            Event {
                seq: 5,
                t_us: 9,
                kind: EventKind::Hist,
                name: "lat".into(),
                dur_us: None,
                value: None,
                fields: vec![
                    ("count".into(), Field::U64(2)),
                    ("min".into(), Field::U64(1)),
                    ("max".into(), Field::U64(9)),
                    ("sum".into(), Field::U64(10)),
                ],
            },
        ];
        let summary = summarize(&events);
        assert_eq!(summary.events, 6);
        assert_eq!(summary.spans[0].name, "measure");
        assert_eq!(summary.spans[0].count, 2);
        assert_eq!(summary.spans[0].total_us, 4000);
        assert_eq!(summary.spans[0].max_us, 3000);
        assert_eq!(summary.spans[0].mean_ms(), 2.0);
        assert_eq!(summary.event_counts, vec![("deal".to_string(), 1)]);
        assert_eq!(summary.counters, vec![("nodes".to_string(), 42)]);
        assert_eq!(summary.hists[0].1.sum, 10);
        assert_eq!(summary.dropped, 0);

        let table = summary.render();
        assert!(table.contains("measure"));
        assert!(table.contains("42"));
        assert!(table.contains("histogram"));
    }

    #[test]
    fn dropped_counter_surfaces_as_warning() {
        let events = vec![Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Counter,
            name: "telemetry.dropped".into(),
            dur_us: None,
            value: Some(7),
            fields: Vec::new(),
        }];
        let summary = summarize(&events);
        assert_eq!(summary.dropped, 7);
        assert!(summary.render().contains("dropped 7 event(s)"));
    }
}
