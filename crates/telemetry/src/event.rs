//! The telemetry event model and its JSON-Lines codec.
//!
//! Events are flat, schema-stable records: a fixed header (`seq`, `t_us`,
//! `kind`, `name`), two optional numeric payloads (`dur_us` for spans,
//! `value` for counter/gauge snapshots) and an ordered bag of typed
//! `fields`. The writer emits keys in a fixed order and the reader
//! preserves field order, so `write → read → write` reproduces a stream
//! byte for byte — the invariant the round-trip tests lock.
//!
//! Like every artifact format in this workspace the codec is hand-rolled
//! (the build environment has no registry access, so there is no serde):
//! a small recursive-descent reader over the event grammar, mirroring
//! `noc_explore::json` in spirit but specialized to one schema.

use std::fmt;

/// A typed field value on an [`Event`].
///
/// The closed set keeps the codec exact: `u64` for ids and counts, `f64`
/// for rates and metrics, strings for labels, bools for flags. Non-finite
/// floats serialize as `null` (JSON has no NaN) and read back as NaN.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned integer (ids, counts, ordinals).
    U64(u64),
    /// A float (rates, metric values). Written with a decimal point so it
    /// re-reads as a float.
    F64(f64),
    /// A label or path.
    Str(String),
    /// A flag.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U64(u64::from(v))
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl Field {
    /// The value as a u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Field::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (floats and integers both qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Field::F64(v) => Some(*v),
            Field::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time occurrence (a wave dealt, a cutoff tripped).
    Event,
    /// A scoped duration; carries [`Event::dur_us`].
    Span,
    /// A counter snapshot; carries [`Event::value`].
    Counter,
    /// A gauge snapshot; carries [`Event::value`].
    Gauge,
    /// A histogram snapshot; `count`/`min`/`max`/`sum` ride in the fields.
    Hist,
}

impl EventKind {
    /// The wire label (`"event"`, `"span"`, …).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Hist => "hist",
        }
    }

    /// Parses a wire label back.
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "event" => EventKind::Event,
            "span" => EventKind::Span,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "hist" => EventKind::Hist,
            _ => return None,
        })
    }
}

/// One telemetry record: what happened (`kind` + `name`), when (`t_us`
/// microseconds since the [`Telemetry`](crate::Telemetry) handle's epoch),
/// in what order (`seq`, strictly increasing per handle), and the typed
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Strictly increasing sequence number (deterministic for a
    /// deterministic instrumented program; timestamps are not).
    pub seq: u64,
    /// Microseconds since the emitting handle's epoch.
    pub t_us: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Dotted event name, e.g. `campaign.synthesize`.
    pub name: String,
    /// Span duration in microseconds (spans only).
    pub dur_us: Option<u64>,
    /// Snapshot value (counter/gauge records only).
    pub value: Option<u64>,
    /// Ordered typed fields.
    pub fields: Vec<(String, Field)>,
}

impl Event {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes to one JSON line (no trailing newline), with the fixed
    /// key order the round-trip invariant relies on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"name\":");
        push_json_string(&mut out, &self.name);
        if let Some(dur) = self.dur_us {
            out.push_str(",\"dur_us\":");
            out.push_str(&dur.to_string());
        }
        if let Some(value) = self.value {
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, key);
                out.push(':');
                match value {
                    Field::U64(v) => out.push_str(&v.to_string()),
                    Field::F64(v) => push_json_f64(&mut out, *v),
                    Field::Str(s) => push_json_string(&mut out, s),
                    Field::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first malformed construct.
    pub fn from_json(line: &str) -> Result<Event, ParseError> {
        let mut parser = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let event = parser.parse_event()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after event object"));
        }
        Ok(event)
    }
}

/// Renders events as a JSON-Lines document (one event per line, trailing
/// newline).
pub fn write_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSON-Lines event stream (blank lines ignored).
///
/// # Errors
///
/// Returns the first line-level [`ParseError`], tagged with its line
/// number.
pub fn read_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json(line).map_err(|e| ParseError {
            message: format!("line {}: {}", lineno + 1, e.message),
        })?;
        events.push(event);
    }
    Ok(events)
}

/// A malformed event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float so it re-reads as a float: Rust's shortest-round-trip
/// `Display`, forced to carry a decimal point (or exponent); non-finite
/// values become `null` (read back as NaN).
fn push_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Recursive-descent reader over one event line.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: format!("{message} at byte {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn consume(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_event(&mut self) -> Result<Event, ParseError> {
        let mut seq = None;
        let mut t_us = None;
        let mut kind = None;
        let mut name = None;
        let mut dur_us = None;
        let mut value = None;
        let mut fields = Vec::new();

        self.expect(b'{')?;
        if !self.consume(b'}') {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                match key.as_str() {
                    "seq" => seq = Some(self.parse_u64()?),
                    "t_us" => t_us = Some(self.parse_u64()?),
                    "kind" => {
                        let label = self.parse_string()?;
                        kind = Some(
                            EventKind::from_label(&label)
                                .ok_or_else(|| self.error(&format!("unknown kind '{label}'")))?,
                        );
                    }
                    "name" => name = Some(self.parse_string()?),
                    "dur_us" => dur_us = Some(self.parse_u64()?),
                    "value" => value = Some(self.parse_u64()?),
                    "fields" => fields = self.parse_fields()?,
                    other => return Err(self.error(&format!("unknown event key '{other}'"))),
                }
                if self.consume(b'}') {
                    break;
                }
                self.expect(b',')?;
            }
        }
        Ok(Event {
            seq: seq.ok_or_else(|| self.error("event missing 'seq'"))?,
            t_us: t_us.ok_or_else(|| self.error("event missing 't_us'"))?,
            kind: kind.ok_or_else(|| self.error("event missing 'kind'"))?,
            name: name.ok_or_else(|| self.error("event missing 'name'"))?,
            dur_us,
            value,
            fields,
        })
    }

    fn parse_fields(&mut self) -> Result<Vec<(String, Field)>, ParseError> {
        let mut fields = Vec::new();
        self.expect(b'{')?;
        if self.consume(b'}') {
            return Ok(fields);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_field_value()?;
            fields.push((key, value));
            if self.consume(b'}') {
                return Ok(fields);
            }
            self.expect(b',')?;
        }
    }

    fn parse_field_value(&mut self) -> Result<Field, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Field::Str(self.parse_string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(Field::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Field::Bool(false))
            }
            Some(b'n') => {
                // Non-finite floats serialize as null.
                self.literal("null")?;
                Ok(Field::F64(f64::NAN))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a field value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    /// A number: integers without '.', 'e' or a sign read as `U64`,
    /// everything else as `F64` — matching what the writer emits.
    fn parse_number(&mut self) -> Result<Field, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = self.bytes.get(start) == Some(&b'-');
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Field::F64)
                .map_err(|_| self.error(&format!("invalid float '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Field::U64)
                .map_err(|_| self.error(&format!("invalid integer '{text}'")))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, ParseError> {
        match self.parse_number()? {
            Field::U64(v) => Ok(v),
            _ => Err(self.error("expected an unsigned integer")),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("non-scalar \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.error(&format!("unknown escape '\\{}'", other as char))
                            );
                        }
                    }
                }
                // Multi-byte UTF-8: copy the whole scalar through.
                b if b < 0x80 => out.push(b as char),
                _ => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 7,
            t_us: 1234,
            kind: EventKind::Span,
            name: "campaign.measure".into(),
            dur_us: Some(456),
            value: None,
            fields: vec![
                ("scenario_id".into(), Field::U64(3)),
                ("rate".into(), Field::F64(0.25)),
                ("label".into(), Field::Str("fig5 \"quoted\"\npath".into())),
                ("reused".into(), Field::Bool(true)),
            ],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let events = vec![
            sample(),
            Event {
                seq: 8,
                t_us: 2000,
                kind: EventKind::Counter,
                name: "decompose.nodes_visited".into(),
                dur_us: None,
                value: Some(99),
                fields: Vec::new(),
            },
        ];
        let text = write_jsonl(&events);
        let reread = read_jsonl(&text).unwrap();
        assert_eq!(reread, events);
        assert_eq!(write_jsonl(&reread), text);
    }

    #[test]
    fn integral_floats_keep_their_decimal_point() {
        let event = Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Event,
            name: "x".into(),
            dur_us: None,
            value: None,
            fields: vec![("rate".into(), Field::F64(2.0))],
        };
        let line = event.to_json();
        assert!(line.contains("\"rate\":2.0"), "{line}");
        let reread = Event::from_json(&line).unwrap();
        assert_eq!(reread.field("rate"), Some(&Field::F64(2.0)));
        assert_eq!(reread.to_json(), line);
    }

    #[test]
    fn non_finite_floats_become_null_and_read_back_nan() {
        let event = Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Event,
            name: "x".into(),
            dur_us: None,
            value: None,
            fields: vec![("bad".into(), Field::F64(f64::INFINITY))],
        };
        let line = event.to_json();
        assert!(line.contains("\"bad\":null"), "{line}");
        let reread = Event::from_json(&line).unwrap();
        assert!(reread.field("bad").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(reread.to_json(), line);
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_floats() {
        let line = r#"{"seq":0,"t_us":0,"kind":"event","name":"x","fields":{"a":-2.5,"b":1e3}}"#;
        let event = Event::from_json(line).unwrap();
        assert_eq!(event.field("a"), Some(&Field::F64(-2.5)));
        assert_eq!(event.field("b"), Some(&Field::F64(1000.0)));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        for bad in [
            "{",
            "{}",
            r#"{"seq":1}"#,
            r#"{"seq":1,"t_us":2,"kind":"nope","name":"x"}"#,
            r#"{"seq":1,"t_us":2,"kind":"event","name":"x","bogus":3}"#,
            r#"{"seq":1,"t_us":2,"kind":"event","name":"x"} trailing"#,
        ] {
            assert!(Event::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = format!("\n{}\n\n", sample().to_json());
        assert_eq!(read_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        let event = Event {
            seq: 0,
            t_us: 0,
            kind: EventKind::Event,
            name: "weird\u{0001}name".into(),
            dur_us: None,
            value: None,
            fields: vec![("k".into(), Field::Str("tab\there".into()))],
        };
        let line = event.to_json();
        assert!(line.contains("\\u0001"), "{line}");
        let reread = Event::from_json(&line).unwrap();
        assert_eq!(reread, event);
        assert_eq!(reread.to_json(), line);
    }
}
