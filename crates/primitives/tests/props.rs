//! Property-based tests: every generated primitive is internally consistent.

use noc_graph::NodeId;
use noc_primitives::{Primitive, Schedule};
use proptest::prelude::*;

fn check_invariants(p: &Primitive) {
    // Telephone model holds on the implementation graph.
    p.schedule().validate_telephone(p.implementation()).unwrap();
    // Every representation edge has a route; every route is a simple path
    // over implementation links from src to dst.
    for e in p.representation().edges() {
        let route = p
            .route(e.src, e.dst)
            .unwrap_or_else(|| panic!("{}: no route {} -> {}", p.label(), e.src, e.dst));
        assert_eq!(route.first(), Some(&e.src));
        assert_eq!(route.last(), Some(&e.dst));
        let unique: std::collections::BTreeSet<_> = route.iter().collect();
        assert_eq!(unique.len(), route.len(), "route revisits a vertex");
        for w in route.windows(2) {
            assert!(p.implementation().has_edge(w[0], w[1]));
        }
        // Hop count bounded by the round count (a token moves at most one
        // hop per round).
        assert!(route.len() - 1 <= p.schedule().round_count());
    }
    // Diameter is the max hop count.
    let max_hops = p
        .routes()
        .map(|(_, path)| path.len() - 1)
        .max()
        .unwrap_or(0);
    assert_eq!(p.diameter_hops(), max_hops);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gossip_invariants(n in 2usize..=16) {
        let p = Primitive::gossip(n);
        check_invariants(&p);
        p.schedule().validate_gossip(p.implementation()).unwrap();
        // Gossip time lower bound: ceil(log2 n) rounds.
        let lb = (usize::BITS - (n - 1).leading_zeros()) as usize;
        prop_assert!(p.schedule().round_count() >= lb);
        // Our construction is within +2 of the lower bound.
        prop_assert!(p.schedule().round_count() <= lb + 2);
    }

    #[test]
    fn broadcast_invariants(targets in 1usize..=15) {
        let p = Primitive::broadcast(targets);
        check_invariants(&p);
        p.schedule()
            .validate_broadcast(p.implementation(), NodeId(0))
            .unwrap();
        // Broadcast completes in exactly ceil(log2 (targets + 1)) rounds.
        let n = targets + 1;
        let optimal = (usize::BITS - (n - 1).leading_zeros()) as usize;
        prop_assert_eq!(p.schedule().round_count(), optimal);
        // Binomial tree: minimum possible edges.
        prop_assert_eq!(p.implementation().edge_count(), targets);
    }

    #[test]
    fn ring_invariants(n in 2usize..=16) {
        let p = Primitive::ring(n);
        check_invariants(&p);
        // Proper edge coloring: cycles need 2 rounds (even) or 3 (odd).
        let expect = if n.is_multiple_of(2) { 2 } else { 3 };
        prop_assert_eq!(p.schedule().round_count(), expect);
    }

    #[test]
    fn pipeline_invariants(n in 2usize..=16) {
        let p = Primitive::pipeline(n);
        check_invariants(&p);
        prop_assert!(p.schedule().round_count() <= 2);
    }

    /// Each round of every built-in schedule is a matching: no node busy
    /// twice (re-checked here independently of validate_telephone).
    #[test]
    fn rounds_are_matchings(n in 2usize..=12, kind in 0usize..4) {
        let p = match kind {
            0 => Primitive::gossip(n),
            1 => Primitive::broadcast(n - 1),
            2 => Primitive::ring(n),
            _ => Primitive::pipeline(n),
        };
        for round in p.schedule().rounds() {
            let mut busy = std::collections::BTreeSet::new();
            for call in round {
                prop_assert!(busy.insert(call.from));
                prop_assert!(busy.insert(call.to));
            }
        }
    }

    /// Schedules never reference out-of-range nodes and respect their own
    /// declared node counts.
    #[test]
    fn schedule_nodes_in_range(n in 2usize..=12) {
        let p = Primitive::gossip(n);
        let s: &Schedule = p.schedule();
        prop_assert_eq!(s.node_count(), n);
        for round in s.rounds() {
            for call in round {
                prop_assert!(call.from.index() < n);
                prop_assert!(call.to.index() < n);
            }
        }
    }
}
