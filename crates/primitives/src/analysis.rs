//! Gossip/broadcast theory: lower bounds and schedule-quality analysis.
//!
//! The paper's library entries are "graphs on which broadcasting (and
//! similarly gossiping) can be completed in minimum time with minimum
//! number of edges" (Section 3, citing the Hedetniemi survey and the
//! Hromkovic chapter — refs. [10, 11]). This module provides the classical
//! bounds those references establish, so a library can be *audited*: for
//! every primitive, how far is its schedule from the information-theoretic
//! optimum, and how much link sharing does it achieve?
//!
//! Classical results under the telephone model (full-duplex exchanges,
//! one transaction per node per round):
//!
//! * **broadcast**: informed nodes at most double per round, so
//!   `b(n) >= ceil(log2 n)`; the binomial tree achieves it with the
//!   minimum `n - 1` edges for a designated originator.
//! * **gossip**: `g(n) = ceil(log2 n)` for even `n`, and
//!   `g(n) = ceil(log2 n) + 1` for odd `n >= 3` (Knödel).

use crate::{Primitive, PrimitiveKind};

/// `ceil(log2 n)` for `n >= 1`.
fn ceil_log2(n: usize) -> usize {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Minimum rounds to broadcast from one originator to `n - 1` others under
/// the telephone model: `ceil(log2 n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use noc_primitives::analysis::broadcast_time_lower_bound;
/// assert_eq!(broadcast_time_lower_bound(1), 0);
/// assert_eq!(broadcast_time_lower_bound(4), 2);
/// assert_eq!(broadcast_time_lower_bound(5), 3);
/// ```
pub fn broadcast_time_lower_bound(n: usize) -> usize {
    ceil_log2(n)
}

/// Minimum rounds for all-to-all gossip among `n` nodes under the
/// telephone model (Knödel's theorem): `ceil(log2 n)` for even `n`,
/// `ceil(log2 n) + 1` for odd `n >= 3`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use noc_primitives::analysis::gossip_time_lower_bound;
/// assert_eq!(gossip_time_lower_bound(2), 1);
/// assert_eq!(gossip_time_lower_bound(4), 2);
/// assert_eq!(gossip_time_lower_bound(5), 4); // ceil(log2 5) + 1
/// assert_eq!(gossip_time_lower_bound(8), 3);
/// ```
pub fn gossip_time_lower_bound(n: usize) -> usize {
    assert!(n >= 1);
    if n == 1 {
        0
    } else if n.is_multiple_of(2) {
        ceil_log2(n)
    } else {
        ceil_log2(n) + 1
    }
}

/// How a primitive's schedule and implementation compare to theory.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleQuality {
    /// The primitive's label.
    pub label: String,
    /// Rounds the schedule takes.
    pub rounds: usize,
    /// The theoretical minimum rounds for the primitive's pattern.
    pub optimal_rounds: usize,
    /// `rounds == optimal_rounds`.
    pub is_time_optimal: bool,
    /// Pattern edges covered per physical implementation link (the
    /// link-sharing factor the branch-and-bound's Links bound uses).
    pub compression_ratio: f64,
}

impl std::fmt::Display for ScheduleQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} rounds (optimal {}), {:.2} pattern edges/link{}",
            self.label,
            self.rounds,
            self.optimal_rounds,
            self.compression_ratio,
            if self.is_time_optimal {
                ""
            } else {
                "  [suboptimal time]"
            }
        )
    }
}

/// Audits one primitive against the classical bounds.
///
/// For loops and paths the "optimum" is the chromatic index of the pattern
/// (every edge must fire once, adjacent edges in distinct rounds): 1 for a
/// single edge, 2 for paths and even cycles, 3 for odd cycles.
pub fn audit(primitive: &Primitive) -> ScheduleQuality {
    let optimal_rounds = match primitive.kind() {
        PrimitiveKind::Gossip { nodes } => gossip_time_lower_bound(nodes),
        PrimitiveKind::Broadcast { targets } => broadcast_time_lower_bound(targets + 1),
        PrimitiveKind::Loop { nodes } => {
            // Even cycles (including the 2-cycle, whose two directed edges
            // share both endpoints) 2-color; odd cycles need a third round.
            if nodes.is_multiple_of(2) {
                2
            } else {
                3
            }
        }
        PrimitiveKind::Path { nodes } => {
            if nodes <= 2 {
                1
            } else {
                2
            }
        }
        PrimitiveKind::Custom => {
            // No general bound; a token must still cross the diameter.
            primitive.diameter_hops().max(1)
        }
    };
    let physical_links: std::collections::BTreeSet<(usize, usize)> = primitive
        .implementation()
        .edges()
        .map(|e| {
            let (a, b) = (e.src.index(), e.dst.index());
            (a.min(b), a.max(b))
        })
        .collect();
    let rounds = primitive.schedule().round_count();
    ScheduleQuality {
        label: primitive.label().to_string(),
        rounds,
        optimal_rounds,
        is_time_optimal: rounds == optimal_rounds,
        compression_ratio: primitive.representation().edge_count() as f64
            / physical_links.len().max(1) as f64,
    }
}

/// Audits every primitive in a library.
///
/// # Examples
///
/// ```
/// use noc_primitives::{analysis, CommLibrary};
/// let report = analysis::audit_library(&CommLibrary::standard());
/// // MGG4, G124, G123 and L4 are all time-optimal.
/// assert!(report.iter().all(|q| q.is_time_optimal));
/// ```
pub fn audit_library(library: &crate::CommLibrary) -> Vec<ScheduleQuality> {
    library.iter().map(|(_, p)| audit(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommLibrary;

    #[test]
    fn lower_bounds_match_theory() {
        // Broadcast: doubling argument.
        for (n, expect) in [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
        ] {
            assert_eq!(broadcast_time_lower_bound(n), expect, "b({n})");
        }
        // Gossip: Knödel.
        for (n, expect) in [
            (2, 1),
            (3, 3),
            (4, 2),
            (5, 4),
            (6, 3),
            (7, 4),
            (8, 3),
            (16, 4),
        ] {
            assert_eq!(gossip_time_lower_bound(n), expect, "g({n})");
        }
    }

    #[test]
    fn standard_library_is_time_optimal() {
        for quality in audit_library(&CommLibrary::standard()) {
            assert!(quality.is_time_optimal, "{quality}");
        }
    }

    #[test]
    fn power_of_two_gossips_are_time_optimal() {
        for n in [2usize, 4, 8, 16] {
            let q = audit(&Primitive::gossip(n));
            assert!(q.is_time_optimal, "MGG{n}: {q}");
        }
    }

    #[test]
    fn folded_gossips_are_within_two_rounds_of_optimal() {
        // Non-power-of-two gossip uses the fold construction: at most
        // floor(log2 n) + 2 rounds, i.e. within 2 of the Knödel bound.
        for n in [3usize, 5, 6, 7, 9, 12, 15] {
            let q = audit(&Primitive::gossip(n));
            assert!(
                q.rounds <= q.optimal_rounds + 2,
                "MGG{n}: {} vs optimal {}",
                q.rounds,
                q.optimal_rounds
            );
        }
        // Odd n = 3 is actually optimal under the fold construction.
        assert!(audit(&Primitive::gossip(3)).is_time_optimal);
    }

    #[test]
    fn broadcasts_are_always_optimal() {
        for targets in 1..=12 {
            let q = audit(&Primitive::broadcast(targets));
            assert!(q.is_time_optimal, "G12{targets}: {q}");
            // Binomial tree: one pattern edge per link.
            assert!((q.compression_ratio - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gossip_compression_ratio_drives_the_links_bound() {
        // MGG4: 12 pattern edges over 4 physical links.
        let q = audit(&Primitive::gossip(4));
        assert!((q.compression_ratio - 3.0).abs() < 1e-12);
        // Loops: 1 edge per link.
        let l = audit(&Primitive::ring(4));
        assert!((l.compression_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_flags_suboptimal_schedules() {
        let q = audit(&Primitive::gossip(6)); // fold: log2(4)+2 = 4 > optimal 3
        assert!(!q.is_time_optimal);
        assert!(q.to_string().contains("[suboptimal time]"));
        let opt = audit(&Primitive::gossip(4));
        assert!(!opt.to_string().contains("suboptimal"));
    }
}
