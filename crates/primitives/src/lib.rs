//! Communication-primitive library for NoC topology synthesis.
//!
//! Section 3 of the DATE'05 paper decomposes an application's communication
//! requirements into *generic communication primitives* — gossiping
//! (all-to-all), broadcasting (one-to-all), multicasting (one-to-many),
//! paths and loops — each stored in a library with two graphs:
//!
//! * a **representation graph**: the communication pattern the primitive
//!   covers (e.g. gossip among 4 nodes is the complete digraph `K_4`), the
//!   pattern the decomposition algorithm searches for in the application
//!   graph; and
//! * an **implementation graph**: the physical link structure on which the
//!   primitive completes in optimal time with minimum edges — Minimum
//!   Gossip Graphs (MGG) and Minimum Broadcast Graphs (MBG) from the
//!   gossiping/broadcasting literature (refs. [10, 11] of the paper) —
//!   together with the optimal **round schedule** under the telephone
//!   model (each node participates in at most one transaction per round).
//!
//! The schedule is what makes routing "free": following the paper's
//! Section 4.5, the route from `i` to `j` is read off the round at which
//! `j` first learns `i`'s token, so the synthesized architecture ships with
//! deadlock-analyzable routing tables.
//!
//! # Example
//!
//! ```
//! use noc_primitives::{CommLibrary, Primitive};
//!
//! let lib = CommLibrary::standard();
//! assert_eq!(lib.len(), 4); // MGG4, G124, G123, L4
//!
//! let mgg4 = Primitive::gossip(4);
//! assert_eq!(mgg4.representation().edge_count(), 12); // all-to-all
//! assert_eq!(mgg4.implementation().edge_count(), 8); // 4-cycle, both ways
//! assert_eq!(mgg4.schedule().round_count(), 2); // optimal: log2(4)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod library;
mod primitive;
mod schedule;

pub use library::{CommLibrary, CommLibraryBuilder, PrimitiveId};
pub use primitive::{Primitive, PrimitiveKind};
pub use schedule::{Call, Schedule, ScheduleError};
