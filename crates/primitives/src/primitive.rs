//! Communication primitives: representation + implementation + schedule.

use std::collections::BTreeMap;

use noc_graph::{DiGraph, NodeId};

use crate::schedule::{Call, Schedule, ScheduleError};

/// The family a primitive belongs to (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PrimitiveKind {
    /// All-to-all exchange among `nodes` participants.
    Gossip {
        /// Number of participants.
        nodes: usize,
    },
    /// One originator transmits to `targets` other nodes (covers both
    /// broadcast and multicast patterns).
    Broadcast {
        /// Number of receiving nodes.
        targets: usize,
    },
    /// Circular shift: node `i` sends to node `i + 1 (mod n)`.
    Loop {
        /// Cycle length.
        nodes: usize,
    },
    /// Linear pipeline: node `i` sends to node `i + 1`.
    Path {
        /// Number of pipeline stages.
        nodes: usize,
    },
    /// A user-supplied primitive.
    Custom,
}

/// A library entry: the communication pattern it *covers* (representation
/// graph, what the matcher searches for), the link structure that *realizes*
/// it optimally (implementation graph), and the round schedule proving the
/// realization optimal and inducing routes.
///
/// # Examples
///
/// ```
/// use noc_primitives::Primitive;
/// use noc_graph::NodeId;
///
/// let g = Primitive::gossip(4);
/// // The paper's example: vertex 1 reaches vertex 4 via vertex 3 (0-based
/// // 0 -> 3 via 2) following the optimal 2-round schedule.
/// assert_eq!(g.route(NodeId(0), NodeId(3)).unwrap(), &[NodeId(0), NodeId(2), NodeId(3)]);
/// ```
#[derive(Debug, Clone)]
pub struct Primitive {
    kind: PrimitiveKind,
    label: String,
    representation: DiGraph,
    implementation: DiGraph,
    schedule: Schedule,
    routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl Primitive {
    /// Gossip among `n` nodes (the paper's `MGG-n`).
    ///
    /// * Representation: complete digraph `K_n`.
    /// * Implementation: for powers of two, the recursive-doubling
    ///   (hypercube) minimum gossip structure — for `n = 4` this is exactly
    ///   the paper's MGG-4 four-cycle with its 2-round schedule; for other
    ///   `n`, a fold-gossip-unfold construction finishing in
    ///   `⌊log2 n⌋ + 2` rounds (optimal is `⌈log2 n⌉` for even `n`,
    ///   `⌈log2 n⌉ + 1` for odd — one extra round in the worst case, with
    ///   the benefit of a simple pendant-link structure).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn gossip(n: usize) -> Self {
        assert!(n >= 2, "gossip needs at least 2 nodes");
        let representation = DiGraph::complete(n);
        let (implementation, schedule) = gossip_implementation(n);
        Self::assemble(
            PrimitiveKind::Gossip { nodes: n },
            format!("MGG{n}"),
            representation,
            implementation,
            schedule,
        )
    }

    /// Broadcast from one originator (vertex 0) to `targets` nodes — the
    /// paper's `G12k` entries (`G123` is one-to-three, `G124` one-to-four).
    ///
    /// * Representation: out-star on `targets + 1` vertices.
    /// * Implementation: binomial broadcast tree, completing in the optimal
    ///   `⌈log2 (targets + 1)⌉` rounds with the minimum `targets` edges.
    ///
    /// # Panics
    ///
    /// Panics if `targets == 0`.
    pub fn broadcast(targets: usize) -> Self {
        assert!(targets >= 1, "broadcast needs at least one target");
        let n = targets + 1;
        let representation = DiGraph::out_star(n);
        let (implementation, schedule) = broadcast_implementation(n);
        Self::assemble(
            PrimitiveKind::Broadcast { targets },
            format!("G12{targets}"),
            representation,
            implementation,
            schedule,
        )
    }

    /// Circular shift over `n` nodes (the paper's `L-n` loops).
    ///
    /// Representation and implementation are both the directed cycle; the
    /// schedule is a proper edge coloring of the cycle (2 rounds for even
    /// `n`, 3 for odd).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "a loop needs at least 2 nodes");
        let representation = DiGraph::cycle(n);
        let implementation = DiGraph::cycle(n);
        let rounds = color_edges(n, true);
        let schedule = Schedule::new(n, rounds);
        Self::assemble(
            PrimitiveKind::Loop { nodes: n },
            format!("L{n}"),
            representation,
            implementation,
            schedule,
        )
    }

    /// Linear pipeline over `n` nodes (the paper's `P-n` paths).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn pipeline(n: usize) -> Self {
        assert!(n >= 2, "a path needs at least 2 nodes");
        let representation = DiGraph::path(n);
        let implementation = DiGraph::path(n);
        let rounds = color_edges(n, false);
        let schedule = Schedule::new(n, rounds);
        Self::assemble(
            PrimitiveKind::Path { nodes: n },
            format!("P{n}"),
            representation,
            implementation,
            schedule,
        )
    }

    /// A user-defined primitive.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] if the schedule violates the
    /// telephone model on `implementation`, or fails to deliver some
    /// representation edge's token.
    pub fn custom(
        label: impl Into<String>,
        representation: DiGraph,
        implementation: DiGraph,
        schedule: Schedule,
    ) -> Result<Self, ScheduleError> {
        schedule.validate_telephone(&implementation)?;
        let routes = schedule.derive_routes();
        for e in representation.edges() {
            if !routes.contains_key(&(e.src, e.dst)) {
                return Err(ScheduleError::Incomplete {
                    node: e.dst,
                    missing: e.src,
                });
            }
        }
        let routes = routes
            .into_iter()
            .filter(|((s, d), _)| representation.has_edge(*s, *d))
            .collect();
        Ok(Primitive {
            kind: PrimitiveKind::Custom,
            label: label.into(),
            representation,
            implementation,
            schedule,
            routes,
        })
    }

    fn assemble(
        kind: PrimitiveKind,
        label: String,
        representation: DiGraph,
        implementation: DiGraph,
        schedule: Schedule,
    ) -> Self {
        schedule
            .validate_telephone(&implementation)
            .expect("built-in schedules honor the telephone model");
        let routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>> = schedule
            .derive_routes()
            .into_iter()
            .filter(|((s, d), _)| representation.has_edge(*s, *d))
            .collect();
        for e in representation.edges() {
            assert!(
                routes.contains_key(&(e.src, e.dst)),
                "built-in schedule must deliver {} -> {}",
                e.src,
                e.dst
            );
        }
        Primitive {
            kind,
            label,
            representation,
            implementation,
            schedule,
            routes,
        }
    }

    /// The primitive's family.
    pub fn kind(&self) -> PrimitiveKind {
        self.kind
    }

    /// Human-readable label in the paper's style (`MGG4`, `G123`, `L4`…).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of vertices the primitive spans.
    pub fn node_count(&self) -> usize {
        self.representation.node_count()
    }

    /// The communication pattern covered (searched for by the matcher).
    pub fn representation(&self) -> &DiGraph {
        &self.representation
    }

    /// The optimal physical realization.
    pub fn implementation(&self) -> &DiGraph {
        &self.implementation
    }

    /// The optimal round schedule on the implementation graph.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The schedule-induced route for a covered pair, as a vertex path over
    /// the implementation graph, or `None` if `(src, dst)` is not a
    /// representation edge.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&(src, dst)).map(Vec::as_slice)
    }

    /// Iterates `(covered pair, route)` entries.
    pub fn routes(&self) -> impl Iterator<Item = ((NodeId, NodeId), &[NodeId])> + '_ {
        self.routes.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Maximum hop count over all covered pairs. This bounds the latency
    /// contribution of the primitive (Section 4.3: the customized
    /// architecture's hop count "will be bounded by the largest diameter in
    /// the communication library").
    pub fn diameter_hops(&self) -> usize {
        self.routes
            .values()
            .map(|p| p.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Number of hops on the route covering `(src, dst)`; `None` if the
    /// pair is not covered.
    pub fn route_hops(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.route(src, dst).map(|p| p.len() - 1)
    }
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} pattern edges, {} links, {} rounds)",
            self.label,
            self.node_count(),
            self.representation.edge_count(),
            self.implementation.edge_count(),
            self.schedule.round_count()
        )
    }
}

/// Recursive-doubling gossip for powers of two; fold-gossip-unfold
/// otherwise. Returns the implementation graph and schedule.
fn gossip_implementation(n: usize) -> (DiGraph, Schedule) {
    if n.is_power_of_two() {
        // Exchange across the highest bit first: for n = 4 this reproduces
        // the paper's MGG-4 schedule exactly (round 1 pairs (1,3)/(2,4),
        // round 2 pairs (1,2)/(3,4) in the paper's 1-based labels).
        let mut g = DiGraph::new(n);
        let mut rounds = Vec::new();
        let mut step = n >> 1;
        while step >= 1 {
            let mut round = Vec::new();
            for v in 0..n {
                let peer = v ^ step;
                if v < peer {
                    g.add_edge(NodeId(v), NodeId(peer));
                    g.add_edge(NodeId(peer), NodeId(v));
                    round.push(Call::exchange(NodeId(v), NodeId(peer)));
                }
            }
            rounds.push(round);
            step >>= 1;
        }
        return (g, Schedule::new(n, rounds));
    }
    // Fold: extras (m..n) pair with partners (0..extras); gossip among the
    // power-of-two core; unfold.
    let m = 1usize << (usize::BITS - 1 - n.leading_zeros()); // 2^floor(log2 n)
    let extras = n - m;
    let (core_g, core_s) = gossip_implementation(m);
    let mut g = DiGraph::new(n);
    for e in core_g.edges() {
        g.add_edge(e.src, e.dst);
    }
    let mut rounds = Vec::new();
    let mut fold = Vec::new();
    for i in 0..extras {
        g.add_edge(NodeId(i), NodeId(m + i));
        g.add_edge(NodeId(m + i), NodeId(i));
        fold.push(Call::exchange(NodeId(i), NodeId(m + i)));
    }
    rounds.push(fold);
    rounds.extend(core_s.rounds().map(<[Call]>::to_vec));
    let unfold = (0..extras)
        .map(|i| Call::send(NodeId(i), NodeId(m + i)))
        .collect();
    rounds.push(unfold);
    (g, Schedule::new(n, rounds))
}

/// Binomial-tree broadcast from vertex 0 over `n` vertices.
fn broadcast_implementation(n: usize) -> (DiGraph, Schedule) {
    let mut g = DiGraph::new(n);
    let mut rounds = Vec::new();
    let mut informed = 1usize;
    while informed < n {
        let mut round = Vec::new();
        for v in 0..informed {
            let target = v + informed;
            if target < n {
                g.add_edge(NodeId(v), NodeId(target));
                round.push(Call::send(NodeId(v), NodeId(target)));
            }
        }
        rounds.push(round);
        informed *= 2;
    }
    (g, Schedule::new(n, rounds))
}

/// Proper edge coloring of the cycle (closed = true) or path over `n`
/// vertices: alternating edges go in alternating rounds; odd cycles need a
/// third round for the closing edge.
fn color_edges(n: usize, closed: bool) -> Vec<Vec<Call>> {
    let mut rounds: Vec<Vec<Call>> = vec![Vec::new(), Vec::new()];
    let last = if closed { n } else { n - 1 };
    for u in 0..last {
        let v = (u + 1) % n;
        let call = Call::send(NodeId(u), NodeId(v));
        if u == n - 1 && closed && n % 2 == 1 {
            rounds.push(vec![call]); // closing edge of an odd cycle
        } else {
            rounds[u % 2].push(call);
        }
    }
    rounds.retain(|r| !r.is_empty());
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_power_of_two_is_optimal_time() {
        for n in [2usize, 4, 8, 16] {
            let p = Primitive::gossip(n);
            assert_eq!(p.schedule().round_count(), n.trailing_zeros() as usize);
            p.schedule().validate_gossip(p.implementation()).unwrap();
            assert_eq!(p.representation().edge_count(), n * (n - 1));
        }
    }

    #[test]
    fn gossip_4_matches_paper_mgg4() {
        let p = Primitive::gossip(4);
        // 4-cycle implementation: 4 physical links = 8 directed channels.
        assert_eq!(p.implementation().edge_count(), 8);
        assert_eq!(p.schedule().round_count(), 2);
        assert_eq!(p.label(), "MGG4");
        assert_eq!(p.diameter_hops(), 2);
    }

    #[test]
    fn gossip_non_power_of_two_is_valid_and_near_optimal() {
        for n in [3usize, 5, 6, 7, 12] {
            let p = Primitive::gossip(n);
            p.schedule().validate_gossip(p.implementation()).unwrap();
            let floor_log = usize::BITS as usize - 1 - n.leading_zeros() as usize;
            assert_eq!(p.schedule().round_count(), floor_log + 2, "n = {n}");
        }
    }

    #[test]
    fn broadcast_is_binomial_optimal() {
        for targets in [1usize, 2, 3, 4, 7, 10] {
            let p = Primitive::broadcast(targets);
            let n = targets + 1;
            p.schedule()
                .validate_broadcast(p.implementation(), NodeId(0))
                .unwrap();
            assert_eq!(
                p.schedule().round_count(),
                (usize::BITS - (n - 1).leading_zeros()) as usize, // ceil(log2 n)
                "targets = {targets}"
            );
            // Minimum edges: a spanning tree.
            assert_eq!(p.implementation().edge_count(), targets);
        }
    }

    #[test]
    fn broadcast_labels_match_paper() {
        assert_eq!(Primitive::broadcast(3).label(), "G123");
        assert_eq!(Primitive::broadcast(4).label(), "G124");
    }

    #[test]
    fn ring_even_takes_two_rounds_odd_three() {
        let l4 = Primitive::ring(4);
        assert_eq!(l4.schedule().round_count(), 2);
        assert_eq!(l4.label(), "L4");
        let l5 = Primitive::ring(5);
        assert_eq!(l5.schedule().round_count(), 3);
        for p in [l4, l5] {
            p.schedule().validate_telephone(p.implementation()).unwrap();
            // Each representation edge is a 1-hop route.
            for e in p.representation().edges() {
                assert_eq!(p.route_hops(e.src, e.dst), Some(1));
            }
        }
    }

    #[test]
    fn pipeline_routes_are_single_hops() {
        let p = Primitive::pipeline(5);
        assert_eq!(p.label(), "P5");
        assert!(p.schedule().round_count() <= 2);
        assert_eq!(p.routes().count(), 4);
        assert_eq!(p.diameter_hops(), 1);
    }

    #[test]
    fn routes_cover_exactly_representation_edges() {
        for p in [
            Primitive::gossip(4),
            Primitive::broadcast(4),
            Primitive::ring(6),
            Primitive::pipeline(3),
        ] {
            let covered: std::collections::BTreeSet<_> = p.routes().map(|(pair, _)| pair).collect();
            let repr: std::collections::BTreeSet<_> =
                p.representation().edges().map(|e| (e.src, e.dst)).collect();
            assert_eq!(covered, repr, "{}", p.label());
        }
    }

    #[test]
    fn routes_run_over_implementation_links() {
        for p in [
            Primitive::gossip(8),
            Primitive::broadcast(6),
            Primitive::gossip(5),
        ] {
            for (_, path) in p.routes() {
                for w in path.windows(2) {
                    assert!(
                        p.implementation().has_edge(w[0], w[1]),
                        "{}: hop {} -> {} is not a link",
                        p.label(),
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn gossip_diameter_bounded_by_rounds() {
        for n in [4usize, 8, 16] {
            let p = Primitive::gossip(n);
            assert!(p.diameter_hops() <= p.schedule().round_count());
        }
    }

    #[test]
    fn custom_primitive_validation() {
        // A valid 2-node exchange.
        let repr = DiGraph::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        let imp = repr.clone();
        let sched = Schedule::new(2, vec![vec![Call::exchange(NodeId(0), NodeId(1))]]);
        let p = Primitive::custom("X2", repr.clone(), imp.clone(), sched).unwrap();
        assert_eq!(p.kind(), PrimitiveKind::Custom);
        assert_eq!(p.diameter_hops(), 1);

        // Schedule that never delivers 1 -> 0.
        let bad = Schedule::new(2, vec![vec![Call::send(NodeId(0), NodeId(1))]]);
        assert!(Primitive::custom("bad", repr, imp, bad).is_err());
    }

    #[test]
    fn display_summarizes() {
        let p = Primitive::gossip(4);
        assert_eq!(
            p.to_string(),
            "MGG4 (4 nodes, 12 pattern edges, 8 links, 2 rounds)"
        );
    }
}
