//! The communication library: an ordered collection of primitives.
//!
//! "The decomposition algorithm breaks down the input graph into a set of
//! communication primitives stored in a library. Since the final
//! decomposition and the run time of the algorithm itself depend on the
//! primitives in the library, it is desirable to select the best set of
//! graphs to be included in the library." (Section 3.)

use crate::Primitive;

/// Index of a primitive within a [`CommLibrary`].
///
/// The paper's tool prints 1-based primitive IDs (`1: MGG4, …`);
/// [`PrimitiveId::paper_id`] provides that form, while [`PrimitiveId::index`]
/// is the 0-based vector index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrimitiveId(pub usize);

impl PrimitiveId {
    /// 0-based index into the library.
    pub fn index(self) -> usize {
        self.0
    }

    /// 1-based ID as printed by the paper's tool.
    pub fn paper_id(self) -> usize {
        self.0 + 1
    }
}

impl std::fmt::Display for PrimitiveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.paper_id())
    }
}

/// An ordered set of communication primitives.
///
/// Order matters: the branch-and-bound explores primitives in library order,
/// so putting high-coverage primitives (gossip) first lets the bound prune
/// earlier (see `DESIGN.md`, decision 1).
///
/// # Examples
///
/// ```
/// use noc_primitives::{CommLibrary, Primitive};
///
/// let lib = CommLibrary::builder()
///     .push(Primitive::gossip(4))
///     .push(Primitive::ring(4))
///     .build();
/// assert_eq!(lib.get(noc_primitives::PrimitiveId(0)).label(), "MGG4");
/// ```
#[derive(Debug, Clone)]
pub struct CommLibrary {
    primitives: Vec<Primitive>,
}

impl CommLibrary {
    /// Starts building an empty library.
    pub fn builder() -> CommLibraryBuilder {
        CommLibraryBuilder {
            primitives: Vec::new(),
        }
    }

    /// The paper's library for the reported experiments: `MGG4`, `G124`,
    /// `G123`, `L4` (gossip-of-4 first so the strongest pattern is tried
    /// first, matching the published outputs in Figures 2, 5 and the AES
    /// decomposition of Section 5.2).
    pub fn standard() -> Self {
        CommLibrary::builder()
            .push(Primitive::gossip(4))
            .push(Primitive::broadcast(4))
            .push(Primitive::broadcast(3))
            .push(Primitive::ring(4))
            .build()
    }

    /// A richer library for larger benchmarks: gossips of 8 and 4,
    /// broadcasts 1-to-7 … 1-to-2, loops of 8/6/4/3 and the 3-stage
    /// pipeline. Bigger primitives come first ("as the size of the
    /// primitives increases, it becomes less likely to detect these
    /// primitives in the input graph" — so they must be tried before the
    /// small ones subsume their edges).
    pub fn extended() -> Self {
        CommLibrary::builder()
            .push(Primitive::gossip(8))
            .push(Primitive::gossip(4))
            .push(Primitive::broadcast(7))
            .push(Primitive::broadcast(4))
            .push(Primitive::broadcast(3))
            .push(Primitive::broadcast(2))
            .push(Primitive::ring(8))
            .push(Primitive::ring(6))
            .push(Primitive::ring(4))
            .push(Primitive::ring(3))
            .push(Primitive::pipeline(3))
            .build()
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.primitives.len()
    }

    /// Returns `true` if the library holds no primitives.
    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }

    /// The primitive with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: PrimitiveId) -> &Primitive {
        &self.primitives[id.index()]
    }

    /// Iterates `(id, primitive)` pairs in library order.
    pub fn iter(&self) -> impl Iterator<Item = (PrimitiveId, &Primitive)> + '_ {
        self.primitives
            .iter()
            .enumerate()
            .map(|(i, p)| (PrimitiveId(i), p))
    }

    /// Looks a primitive up by label (`"MGG4"`, `"L4"`, …).
    pub fn find_by_label(&self, label: &str) -> Option<PrimitiveId> {
        self.primitives
            .iter()
            .position(|p| p.label() == label)
            .map(PrimitiveId)
    }

    /// The largest per-primitive hop diameter; bounds the worst-case hop
    /// count of any synthesized architecture (Section 4.3).
    pub fn max_diameter_hops(&self) -> usize {
        self.primitives
            .iter()
            .map(Primitive::diameter_hops)
            .max()
            .unwrap_or(0)
    }

    /// The largest pattern edge count of any primitive; used by bounding
    /// heuristics.
    pub fn max_pattern_edges(&self) -> usize {
        self.primitives
            .iter()
            .map(|p| p.representation().edge_count())
            .max()
            .unwrap_or(0)
    }
}

impl std::ops::Index<PrimitiveId> for CommLibrary {
    type Output = Primitive;

    fn index(&self, id: PrimitiveId) -> &Primitive {
        self.get(id)
    }
}

/// Builder for [`CommLibrary`]; see [`CommLibrary::builder`].
#[derive(Debug, Clone, Default)]
pub struct CommLibraryBuilder {
    primitives: Vec<Primitive>,
}

impl CommLibraryBuilder {
    /// Appends a primitive (IDs follow insertion order).
    #[must_use]
    pub fn push(mut self, primitive: Primitive) -> Self {
        self.primitives.push(primitive);
        self
    }

    /// Appends every primitive from the iterator.
    #[must_use]
    pub fn extend(mut self, primitives: impl IntoIterator<Item = Primitive>) -> Self {
        self.primitives.extend(primitives);
        self
    }

    /// Finalizes the library.
    pub fn build(self) -> CommLibrary {
        CommLibrary {
            primitives: self.primitives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrimitiveKind;

    #[test]
    fn standard_library_matches_paper_configuration() {
        let lib = CommLibrary::standard();
        assert_eq!(lib.len(), 4);
        let labels: Vec<&str> = lib.iter().map(|(_, p)| p.label()).collect();
        assert_eq!(labels, vec!["MGG4", "G124", "G123", "L4"]);
        // Paper-style 1-based IDs.
        assert_eq!(lib.find_by_label("MGG4").unwrap().paper_id(), 1);
        assert_eq!(lib.find_by_label("L4").unwrap().paper_id(), 4);
    }

    #[test]
    fn extended_library_orders_large_first() {
        let lib = CommLibrary::extended();
        assert!(lib.len() >= 10);
        let first = lib.get(PrimitiveId(0));
        assert_eq!(first.label(), "MGG8");
        // Edge counts are non-increasing-ish: first has the max.
        assert_eq!(lib.max_pattern_edges(), first.representation().edge_count());
    }

    #[test]
    fn max_diameter_bounds_architecture_hops() {
        let lib = CommLibrary::standard();
        // MGG4 routes take at most 2 hops; broadcasts at most 2; loop 1.
        assert_eq!(lib.max_diameter_hops(), 2);
    }

    #[test]
    fn index_and_find() {
        let lib = CommLibrary::standard();
        let id = lib.find_by_label("G123").unwrap();
        assert_eq!(lib[id].label(), "G123");
        assert_eq!(lib.find_by_label("NOPE"), None);
    }

    #[test]
    fn builder_extend() {
        let lib = CommLibrary::builder()
            .extend([Primitive::gossip(2), Primitive::pipeline(2)])
            .build();
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
        let empty = CommLibrary::builder().build();
        assert!(empty.is_empty());
        assert_eq!(empty.max_diameter_hops(), 0);
        assert_eq!(empty.max_pattern_edges(), 0);
    }

    #[test]
    fn kinds_are_exposed() {
        let lib = CommLibrary::standard();
        assert_eq!(
            lib.get(PrimitiveId(0)).kind(),
            PrimitiveKind::Gossip { nodes: 4 }
        );
        assert_eq!(
            lib.get(PrimitiveId(3)).kind(),
            PrimitiveKind::Loop { nodes: 4 }
        );
    }

    #[test]
    fn primitive_id_display_is_one_based() {
        assert_eq!(PrimitiveId(0).to_string(), "1");
        assert_eq!(PrimitiveId(3).index(), 3);
    }
}
