//! Round schedules under the telephone model.
//!
//! A schedule is a sequence of *rounds*; each round is a set of calls such
//! that every node participates in at most one call (Figure 1 of the paper:
//! "any processor can participate in at most one communication transaction
//! at any given time instance"). Gossip schedules use bidirectional
//! *exchange* calls; broadcast schedules use directed calls.
//!
//! The schedule serves three purposes in the synthesis flow:
//!
//! 1. it certifies that the implementation graph really completes the
//!    primitive in the claimed number of rounds ([`Schedule::validate_gossip`],
//!    [`Schedule::validate_broadcast`]);
//! 2. it induces the per-pair routes used to build the routing tables
//!    (Section 4.5): `j`'s route from `i` follows the calls by which `i`'s
//!    token first reached `j` ([`Schedule::derive_routes`]);
//! 3. its length bounds the primitive's latency contribution.

// Index loops below walk several parallel arrays; indexing is clearer.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;

use noc_graph::{BitSet, DiGraph, NodeId};

/// One communication transaction within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Call {
    /// The initiating node.
    pub from: NodeId,
    /// The peer node.
    pub to: NodeId,
    /// `true` for a bidirectional exchange (gossip), `false` for a one-way
    /// transmission (broadcast).
    pub exchange: bool,
}

impl Call {
    /// A one-way call `from -> to`.
    pub fn send(from: NodeId, to: NodeId) -> Self {
        Call {
            from,
            to,
            exchange: false,
        }
    }

    /// A bidirectional exchange between `a` and `b`.
    pub fn exchange(a: NodeId, b: NodeId) -> Self {
        Call {
            from: a,
            to: b,
            exchange: true,
        }
    }
}

impl std::fmt::Display for Call {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.exchange {
            write!(f, "({} <-> {})", self.from, self.to)
        } else {
            write!(f, "({} -> {})", self.from, self.to)
        }
    }
}

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A node appears in two calls of the same round.
    NodeBusy {
        /// The overcommitted node.
        node: NodeId,
        /// Round index (0-based).
        round: usize,
    },
    /// A call uses a link absent from the implementation graph.
    MissingLink {
        /// The offending call.
        call: Call,
        /// Round index (0-based).
        round: usize,
    },
    /// After all rounds some node is missing some token.
    Incomplete {
        /// The node that did not learn everything it should.
        node: NodeId,
        /// A token it never received.
        missing: NodeId,
    },
    /// A broadcast call was initiated by a node that does not hold the
    /// originator's token yet.
    UninformedSender {
        /// The sender that had nothing to forward.
        node: NodeId,
        /// Round index (0-based).
        round: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NodeBusy { node, round } => {
                write!(f, "node {node} participates in two calls in round {round}")
            }
            ScheduleError::MissingLink { call, round } => {
                write!(f, "call {call} in round {round} uses a missing link")
            }
            ScheduleError::Incomplete { node, missing } => {
                write!(f, "node {node} never learned the token of node {missing}")
            }
            ScheduleError::UninformedSender { node, round } => {
                write!(
                    f,
                    "node {node} forwards in round {round} before being informed"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete round schedule over an implementation graph of order `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    n: usize,
    rounds: Vec<Vec<Call>>,
}

impl Schedule {
    /// Creates a schedule over `n` nodes from explicit rounds.
    pub fn new(n: usize, rounds: Vec<Vec<Call>>) -> Self {
        Schedule { n, rounds }
    }

    /// Number of rounds.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Number of nodes the schedule covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The calls of round `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.round_count()`.
    pub fn round(&self, r: usize) -> &[Call] {
        &self.rounds[r]
    }

    /// Iterates over all rounds.
    pub fn rounds(&self) -> impl Iterator<Item = &[Call]> + '_ {
        self.rounds.iter().map(Vec::as_slice)
    }

    /// Checks the telephone-model constraint and link availability.
    ///
    /// Every call must run over an existing implementation link (in the
    /// call's direction; an exchange needs both directions), and no node may
    /// appear twice in one round.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NodeBusy`] or [`ScheduleError::MissingLink`].
    pub fn validate_telephone(&self, implementation: &DiGraph) -> Result<(), ScheduleError> {
        for (r, round) in self.rounds.iter().enumerate() {
            let mut busy = BitSet::new(self.n);
            for &call in round {
                for node in [call.from, call.to] {
                    if !busy.insert(node.index()) {
                        return Err(ScheduleError::NodeBusy { node, round: r });
                    }
                }
                let fwd = implementation.has_edge(call.from, call.to);
                let rev = implementation.has_edge(call.to, call.from);
                let ok = if call.exchange { fwd && rev } else { fwd };
                if !ok {
                    return Err(ScheduleError::MissingLink { call, round: r });
                }
            }
        }
        Ok(())
    }

    /// Validates a *gossip* schedule: after the final round every node must
    /// know every other node's token.
    ///
    /// # Errors
    ///
    /// Any telephone-model violation, or [`ScheduleError::Incomplete`].
    pub fn validate_gossip(&self, implementation: &DiGraph) -> Result<(), ScheduleError> {
        self.validate_telephone(implementation)?;
        let knowledge = self.propagate();
        for v in 0..self.n {
            for token in 0..self.n {
                if !knowledge[v].contains(token) {
                    return Err(ScheduleError::Incomplete {
                        node: NodeId(v),
                        missing: NodeId(token),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validates a *broadcast* schedule from `originator` to every node:
    /// every call must be sent by an already-informed node and at the end
    /// all nodes hold the originator's token.
    ///
    /// # Errors
    ///
    /// Any telephone-model violation, [`ScheduleError::UninformedSender`],
    /// or [`ScheduleError::Incomplete`].
    pub fn validate_broadcast(
        &self,
        implementation: &DiGraph,
        originator: NodeId,
    ) -> Result<(), ScheduleError> {
        self.validate_telephone(implementation)?;
        let mut informed = BitSet::new(self.n);
        informed.insert(originator.index());
        for (r, round) in self.rounds.iter().enumerate() {
            let snapshot = informed.clone();
            for &call in round {
                if !snapshot.contains(call.from.index()) {
                    return Err(ScheduleError::UninformedSender {
                        node: call.from,
                        round: r,
                    });
                }
                informed.insert(call.to.index());
                if call.exchange {
                    informed.insert(call.from.index());
                }
            }
        }
        for v in 0..self.n {
            if !informed.contains(v) {
                return Err(ScheduleError::Incomplete {
                    node: NodeId(v),
                    missing: originator,
                });
            }
        }
        Ok(())
    }

    /// Simulates token propagation round by round; returns, for each node,
    /// the set of tokens it holds at the end.
    fn propagate(&self) -> Vec<BitSet> {
        let mut knowledge: Vec<BitSet> = (0..self.n)
            .map(|v| {
                let mut s = BitSet::new(self.n);
                s.insert(v);
                s
            })
            .collect();
        for round in &self.rounds {
            // Calls within a round are simultaneous: read the pre-round state.
            let snapshot = knowledge.clone();
            for &call in round {
                let from_k = &snapshot[call.from.index()];
                knowledge[call.to.index()].union_with(from_k);
                if call.exchange {
                    let to_k = &snapshot[call.to.index()];
                    knowledge[call.from.index()].union_with(to_k);
                }
            }
        }
        knowledge
    }

    /// Derives the schedule-consistent route for every ordered pair:
    /// `routes[(i, j)]` is the vertex path `i, …, j` along which `i`'s token
    /// first reaches `j` (Section 4.5: "there exists an optimal schedule
    /// which delivers the information to vertex 4 using this route").
    ///
    /// Pairs whose tokens never meet are absent from the map.
    pub fn derive_routes(&self) -> BTreeMap<(NodeId, NodeId), Vec<NodeId>> {
        // first_hop[token][v] = the node from which v first received `token`.
        let mut via: Vec<Vec<Option<NodeId>>> = vec![vec![None; self.n]; self.n];
        let mut knowledge: Vec<BitSet> = (0..self.n)
            .map(|v| {
                let mut s = BitSet::new(self.n);
                s.insert(v);
                s
            })
            .collect();
        for round in &self.rounds {
            let snapshot = knowledge.clone();
            let mut deliver = |src: NodeId, dst: NodeId| {
                for token in snapshot[src.index()].iter() {
                    if !knowledge[dst.index()].contains(token) {
                        knowledge[dst.index()].insert(token);
                        via[token][dst.index()] = Some(src);
                    }
                }
            };
            for &call in round {
                deliver(call.from, call.to);
                if call.exchange {
                    deliver(call.to, call.from);
                }
            }
        }
        let mut routes = BTreeMap::new();
        for token in 0..self.n {
            for v in 0..self.n {
                if token == v || !knowledge[v].contains(token) {
                    continue;
                }
                // Walk back from v to token through `via`.
                let mut path = vec![NodeId(v)];
                let mut cur = v;
                while cur != token {
                    let prev = via[token][cur].expect("known tokens have arrival edges");
                    path.push(prev);
                    cur = prev.index();
                }
                path.reverse();
                routes.insert((NodeId(token), NodeId(v)), path);
            }
        }
        routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's MGG-4 schedule (Figure 1): round 1 exchanges (1,3) and
    /// (2,4); round 2 exchanges (1,2) and (3,4) — 0-based here.
    fn mgg4() -> (DiGraph, Schedule) {
        let mut g = DiGraph::new(4);
        for (a, b) in [(0, 2), (1, 3), (0, 1), (2, 3)] {
            g.add_edge(NodeId(a), NodeId(b));
            g.add_edge(NodeId(b), NodeId(a));
        }
        let s = Schedule::new(
            4,
            vec![
                vec![
                    Call::exchange(NodeId(0), NodeId(2)),
                    Call::exchange(NodeId(1), NodeId(3)),
                ],
                vec![
                    Call::exchange(NodeId(0), NodeId(1)),
                    Call::exchange(NodeId(2), NodeId(3)),
                ],
            ],
        );
        (g, s)
    }

    #[test]
    fn paper_mgg4_schedule_is_a_valid_gossip() {
        let (g, s) = mgg4();
        assert_eq!(s.round_count(), 2);
        s.validate_gossip(&g).unwrap();
    }

    #[test]
    fn busy_node_rejected() {
        let g = DiGraph::complete(3);
        let s = Schedule::new(
            3,
            vec![vec![
                Call::send(NodeId(0), NodeId(1)),
                Call::send(NodeId(1), NodeId(2)),
            ]],
        );
        assert_eq!(
            s.validate_telephone(&g),
            Err(ScheduleError::NodeBusy {
                node: NodeId(1),
                round: 0
            })
        );
    }

    #[test]
    fn missing_link_rejected() {
        let g = DiGraph::path(3); // 0 -> 1 -> 2 only
        let s = Schedule::new(3, vec![vec![Call::send(NodeId(0), NodeId(2))]]);
        assert!(matches!(
            s.validate_telephone(&g),
            Err(ScheduleError::MissingLink { .. })
        ));
        // Exchange needs both directions.
        let s2 = Schedule::new(3, vec![vec![Call::exchange(NodeId(0), NodeId(1))]]);
        assert!(matches!(
            s2.validate_telephone(&g),
            Err(ScheduleError::MissingLink { .. })
        ));
    }

    #[test]
    fn incomplete_gossip_detected() {
        let (g, _) = mgg4();
        let s = Schedule::new(
            4,
            vec![vec![Call::exchange(NodeId(0), NodeId(2))]], // one round only
        );
        let err = s.validate_gossip(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::Incomplete { .. }));
    }

    #[test]
    fn broadcast_binomial_tree_on_four_nodes() {
        // Binomial broadcast: r1: 0->1; r2: 0->2, 1->3.
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3)]).unwrap();
        let s = Schedule::new(
            4,
            vec![
                vec![Call::send(NodeId(0), NodeId(1))],
                vec![
                    Call::send(NodeId(0), NodeId(2)),
                    Call::send(NodeId(1), NodeId(3)),
                ],
            ],
        );
        s.validate_broadcast(&g, NodeId(0)).unwrap();
    }

    #[test]
    fn uninformed_sender_rejected() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let s = Schedule::new(
            3,
            vec![
                vec![Call::send(NodeId(1), NodeId(2))], // 1 not informed yet
                vec![Call::send(NodeId(0), NodeId(1))],
            ],
        );
        assert_eq!(
            s.validate_broadcast(&g, NodeId(0)),
            Err(ScheduleError::UninformedSender {
                node: NodeId(1),
                round: 0
            })
        );
    }

    #[test]
    fn simultaneity_within_round() {
        // In one round, a token cannot travel two hops: 0->1 and 1->2 in the
        // same round must NOT give 2 the token of 0.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        // Use two distinct rounds but checks the snapshot logic via gossip
        // incompleteness: a single round with both calls (conflict-free it is
        // not — node 1 is busy twice), so instead check propagate() directly
        // through derive_routes on a legal two-round pipeline.
        let s = Schedule::new(
            3,
            vec![
                vec![Call::send(NodeId(0), NodeId(1))],
                vec![Call::send(NodeId(1), NodeId(2))],
            ],
        );
        s.validate_broadcast(&g, NodeId(0)).unwrap();
        let routes = s.derive_routes();
        assert_eq!(
            routes[&(NodeId(0), NodeId(2))],
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn mgg4_routes_follow_schedule() {
        let (_, s) = mgg4();
        let routes = s.derive_routes();
        // All 12 ordered pairs have routes.
        assert_eq!(routes.len(), 12);
        // Paper example: vertex 1 sends to vertex 4 via vertex 3 (0-based:
        // 0 -> 3 via 2), because (0,2) exchange in round 1 then (2,3) in
        // round 2.
        assert_eq!(
            routes[&(NodeId(0), NodeId(3))],
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
        // Direct neighbors route directly.
        assert_eq!(routes[&(NodeId(0), NodeId(2))], vec![NodeId(0), NodeId(2)]);
        assert_eq!(routes[&(NodeId(0), NodeId(1))], vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn routes_are_paths_on_implementation_links() {
        let (g, s) = mgg4();
        for ((src, dst), path) in s.derive_routes() {
            assert_eq!(*path.first().unwrap(), src);
            assert_eq!(*path.last().unwrap(), dst);
            for w in path.windows(2) {
                assert!(
                    g.has_edge(w[0], w[1]),
                    "route hop {} -> {} not a link",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Call::send(NodeId(0), NodeId(1)).to_string(), "(0 -> 1)");
        assert_eq!(
            Call::exchange(NodeId(0), NodeId(1)).to_string(),
            "(0 <-> 1)"
        );
        let e = ScheduleError::NodeBusy {
            node: NodeId(2),
            round: 1,
        };
        assert_eq!(e.to_string(), "node 2 participates in two calls in round 1");
    }
}
