//! Distributed sharding: partition a scenario grid into disjoint id sets
//! and merge the shards' reports back into one front.
//!
//! Scenario ids are stable grid positions (see
//! [`ScenarioGrid::enumerate`](crate::ScenarioGrid::enumerate)), so a
//! coordinator can deal a [`ShardManifest`] to each machine, let each run
//! its slice with `Campaign::run_plan`, and [`merge_reports`] afterwards —
//! no shared state, no coordination during the run. Merging re-offers
//! every shard's records to a fresh Pareto front; the front's permutation
//! invariance (property-tested in `tests/pareto_props.rs`) guarantees the
//! merged front equals the single-shot front over the same grid.

use std::collections::HashMap;

use crate::report::{CacheSizeRecord, CampaignReport, PointRecord};

/// How a [`ShardManifest`] carves scenario ids out of a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// `id % count == index`. Interleaves neighbors across shards —
    /// balances heterogeneous grids (adjacent ids share workloads, hence
    /// similar cost), but splits synthesis-sharing groups.
    Modulo,
    /// Contiguous blocks of `ceil(total / count)` ids. Keeps
    /// synthesis-key neighbors (which differ only in sim spec) on one
    /// shard, preserving intra-shard artifact reuse.
    Range,
}

impl ShardMode {
    /// Stable CLI / report label.
    pub fn label(self) -> &'static str {
        match self {
            ShardMode::Modulo => "modulo",
            ShardMode::Range => "range",
        }
    }

    /// Parses [`label`](Self::label) back.
    pub fn from_label(label: &str) -> Option<ShardMode> {
        match label {
            "modulo" => Some(ShardMode::Modulo),
            "range" => Some(ShardMode::Range),
            _ => None,
        }
    }
}

/// One shard's slice of a grid: shard `index` of `count`, under a
/// partitioning [`ShardMode`]. The `count` manifests with indices
/// `0..count` partition every grid exactly (each id lands in precisely
/// one shard, for any grid size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// This shard's position, `< count`.
    pub index: usize,
    /// Total number of shards in the partition.
    pub count: usize,
    /// The partitioning function.
    pub mode: ShardMode,
}

impl ShardManifest {
    /// Shard `index` of `count` under [`ShardMode::Modulo`].
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn modulo(index: usize, count: usize) -> Self {
        Self::new(index, count, ShardMode::Modulo)
    }

    /// Shard `index` of `count` under [`ShardMode::Range`].
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn range(index: usize, count: usize) -> Self {
        Self::new(index, count, ShardMode::Range)
    }

    /// Shard `index` of `count` under `mode`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn new(index: usize, count: usize, mode: ShardMode) -> Self {
        assert!(
            index < count,
            "shard index {index} out of range for {count} shard(s)"
        );
        ShardManifest { index, count, mode }
    }

    /// Whether scenario `id` of a `total`-point grid belongs to this
    /// shard.
    pub fn contains(&self, id: usize, total: usize) -> bool {
        match self.mode {
            ShardMode::Modulo => id % self.count == self.index,
            ShardMode::Range => {
                let chunk = total.div_ceil(self.count).max(1);
                id / chunk == self.index
            }
        }
    }

    /// The scenario ids of a `total`-point grid in this shard, ascending.
    pub fn ids(&self, total: usize) -> Vec<usize> {
        (0..total).filter(|&id| self.contains(id, total)).collect()
    }

    /// `"shard 1/4 (range)"` — for logs and CLI output.
    pub fn label(&self) -> String {
        format!(
            "shard {}/{} ({})",
            self.index,
            self.count,
            self.mode.label()
        )
    }
}

/// All `count` manifests of a partition, index-ascending.
pub fn partition(count: usize, mode: ShardMode) -> Vec<ShardManifest> {
    assert!(count > 0, "a partition needs at least one shard");
    (0..count)
        .map(|index| ShardManifest::new(index, count, mode))
        .collect()
}

/// Merges shard (or otherwise partial) reports into one report: records
/// are pooled, deduplicated by scenario id (identical duplicates
/// tolerated, conflicting ones rejected), and re-folded into a fresh
/// Pareto front with recomputed front-quality metrics. Provenance is
/// summed: `flows_synthesized`, `synthesis_reused` and `wall_ms`
/// accumulate (wall-time is *total compute*, not the makespan of a
/// parallel fleet), per-size cache traffic adds up row-wise, and every
/// merged-in record counts as carried.
///
/// Requires at least one report and identical objective vectors
/// everywhere; `threads` reports the maximum over the inputs.
pub fn merge_reports(reports: &[CampaignReport]) -> Result<CampaignReport, String> {
    let first = reports.first().ok_or("nothing to merge")?;
    let mut points: Vec<PointRecord> = Vec::new();
    let mut by_id: HashMap<usize, usize> = HashMap::new(); // scenario id → points index
    let mut cache: Vec<CacheSizeRecord> = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        if report.objective_kinds != first.objective_kinds {
            return Err(format!(
                "report {i} ranks {:?}, expected {:?} — refusing to merge fronts over different objectives",
                report.objective_kinds, first.objective_kinds
            ));
        }
        for record in &report.points {
            match by_id.get(&record.scenario_id) {
                None => {
                    by_id.insert(record.scenario_id, points.len());
                    points.push(record.clone());
                }
                Some(&at) => {
                    // Overlap is fine only when the records agree on what
                    // was measured; a label mismatch means different
                    // grids, a value mismatch means nondeterministic
                    // objectives (e.g. SynthTimeMs) or an error/success
                    // divergence — keeping either would make the merge
                    // order-dependent.
                    let kept = &points[at];
                    if kept.label != record.label {
                        return Err(format!(
                            "conflicting records for scenario {}: '{}' vs '{}' — shards came from different grids",
                            record.scenario_id, kept.label, record.label
                        ));
                    }
                    if kept.objectives != record.objectives || kept.error != record.error {
                        return Err(format!(
                            "conflicting measurements for scenario {} ('{}'): {:?}/{:?} vs {:?}/{:?} — nondeterministic objective or diverging reruns",
                            record.scenario_id,
                            record.label,
                            kept.objectives,
                            kept.error,
                            record.objectives,
                            record.error,
                        ));
                    }
                }
            }
        }
        for row in &report.match_cache {
            match cache
                .iter_mut()
                .find(|c| c.vertex_count == row.vertex_count)
            {
                Some(c) => {
                    c.hits += row.hits;
                    c.misses += row.misses;
                    c.warm_hits += row.warm_hits;
                }
                None => cache.push(*row),
            }
        }
    }
    cache.sort_by_key(|c| c.vertex_count);
    let carried = points.len();
    let mut merged = CampaignReport::assemble(first.objective_kinds.clone(), points);
    merged.threads = reports.iter().map(|r| r.threads).max().unwrap_or(0);
    merged.flows_synthesized = reports.iter().map(|r| r.flows_synthesized).sum();
    merged.synthesis_reused = reports.iter().map(|r| r.synthesis_reused).sum();
    merged.carried_points = carried;
    merged.wall_ms = reports.iter().map(|r| r.wall_ms).sum();
    merged.match_cache = cache;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::ObjectiveKind;
    use crate::report::SweepPointRecord;

    #[test]
    fn every_partition_is_exact() {
        for total in [0usize, 1, 7, 12, 100] {
            for count in [1usize, 2, 3, 5, 12] {
                for mode in [ShardMode::Modulo, ShardMode::Range] {
                    let mut seen = vec![0u32; total];
                    for shard in partition(count, mode) {
                        for id in shard.ids(total) {
                            seen[id] += 1;
                        }
                    }
                    assert!(
                        seen.iter().all(|&n| n == 1),
                        "{mode:?} {count} shards of {total}: {seen:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_shards_are_contiguous() {
        let ids = ShardManifest::range(1, 3).ids(8); // chunk = 3
        assert_eq!(ids, vec![3, 4, 5]);
        assert_eq!(ShardManifest::range(2, 3).ids(8), vec![6, 7]);
    }

    #[test]
    fn modulo_shards_interleave() {
        assert_eq!(ShardManifest::modulo(1, 3).ids(8), vec![1, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_must_be_below_count() {
        ShardManifest::modulo(3, 3);
    }

    fn point(id: usize, objectives: Vec<f64>) -> PointRecord {
        PointRecord {
            scenario_id: id,
            label: format!("p{id}"),
            workload: "w".into(),
            nodes: 8,
            engine: "dfs".into(),
            synthesis_objective: "Links".into(),
            technology: "t".into(),
            sim: "s".into(),
            router_fidelity: "ideal".into(),
            objectives,
            on_front: false,
            reused_synthesis: false,
            total_cost: 1.0,
            nodes_visited: 1,
            cache_hits: 0,
            synth_ms: 1.0,
            verify: None,
            sweep: vec![SweepPointRecord {
                rate: 0.05,
                latency_cycles: 1.0,
                throughput_bits_per_cycle: 1.0,
                energy_joules: 1e-9,
            }],
            saturated: false,
            error: None,
        }
    }

    fn partial(points: Vec<PointRecord>) -> CampaignReport {
        let mut r = CampaignReport::assemble(
            vec![ObjectiveKind::EnergyJoules, ObjectiveKind::AvgLatencyCycles],
            points,
        );
        r.flows_synthesized = r.points.len();
        r.wall_ms = 10.0;
        r.match_cache = vec![CacheSizeRecord {
            vertex_count: 8,
            hits: 2,
            misses: 5,
            warm_hits: 1,
        }];
        r
    }

    #[test]
    fn merge_refolds_the_front_across_shards() {
        // Shard A's lone point is locally on the front but globally
        // dominated by shard B's point.
        let a = partial(vec![point(0, vec![2e-9, 10.0])]);
        assert_eq!(a.front, vec![0]);
        let b = partial(vec![point(1, vec![1e-9, 5.0]), point(2, vec![3e-9, 4.0])]);
        let merged = merge_reports(&[a, b]).unwrap();
        assert_eq!(merged.front, vec![1, 2]);
        assert_eq!(merged.points.len(), 3);
        assert!(!merged.point(0).unwrap().on_front);
        assert_eq!(merged.carried_points, 3);
        assert_eq!(merged.flows_synthesized, 3);
        assert_eq!(merged.wall_ms, 20.0);
        assert_eq!(
            merged.match_cache,
            vec![CacheSizeRecord {
                vertex_count: 8,
                hits: 4,
                misses: 10,
                warm_hits: 2,
            }]
        );
    }

    #[test]
    fn merge_is_permutation_invariant() {
        let a = partial(vec![point(0, vec![2e-9, 10.0]), point(3, vec![5e-9, 1.0])]);
        let b = partial(vec![point(1, vec![1e-9, 5.0])]);
        let c = partial(vec![point(2, vec![4e-9, 2.0])]);
        let fwd = merge_reports(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let rev = merge_reports(&[c, b, a]).unwrap();
        assert_eq!(fwd.front, rev.front);
        assert_eq!(fwd.hypervolume, rev.hypervolume);
        assert_eq!(fwd.points.len(), rev.points.len());
    }

    #[test]
    fn merge_tolerates_identical_overlap_but_rejects_conflicts() {
        let a = partial(vec![point(0, vec![2e-9, 10.0])]);
        let same = merge_reports(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(same.points.len(), 1);

        let mut conflicting = point(0, vec![1e-9, 1.0]);
        conflicting.label = "different".into();
        let b = partial(vec![conflicting]);
        let err = merge_reports(&[a.clone(), b]).unwrap_err();
        assert!(err.contains("conflicting records"), "{err}");

        // Same id and label but diverging measurements (nondeterministic
        // objective, or error vs success) is also a refusal — keeping
        // either record would make the merge order-dependent.
        let c = partial(vec![point(0, vec![9e-9, 9.0])]);
        let err = merge_reports(&[a, c]).unwrap_err();
        assert!(err.contains("conflicting measurements"), "{err}");
    }

    #[test]
    fn merge_rejects_mismatched_objectives() {
        let a = partial(vec![point(0, vec![2e-9, 10.0])]);
        let mut b =
            CampaignReport::assemble(vec![ObjectiveKind::AreaMm2], vec![point(1, vec![4.0])]);
        b.threads = 1;
        let err = merge_reports(&[a, b]).unwrap_err();
        assert!(err.contains("different objectives"), "{err}");
        assert!(merge_reports(&[]).is_err());
    }
}
