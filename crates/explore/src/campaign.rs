//! The campaign engine: plan which scenario points still need work,
//! execute the plan over a worker pool, fold every record — fresh and
//! carried — into a Pareto front.
//!
//! # Plan / execute / fold
//!
//! A campaign run is three explicit stages:
//!
//! 1. **Plan** ([`Campaign::plan`], [`plan_resume`](Campaign::plan_resume),
//!    [`plan_shard`](Campaign::plan_shard)) — decide *which* stable
//!    scenario ids to evaluate: the whole grid, the grid minus points a
//!    prior report already records (resume), or one [`ShardManifest`]'s
//!    slice of the grid (distributed sharding). Prior records skipped by
//!    a resume are *carried* into the plan unchanged.
//! 2. **Execute** — run floorplan → decomposition → glue → simulation for
//!    every planned scenario on the worker pool, sharing synthesis
//!    artifacts per synthesis key and one size-agnostic
//!    [`SharedMatchCache`] campaign-wide.
//! 3. **Fold** — offer every record (carried + fresh) to a fresh
//!    [`ParetoFront`](crate::ParetoFront) in scenario-id order and
//!    assemble the [`CampaignReport`] with front-quality metrics.
//!
//! Because ids are stable and the front is permutation-invariant, the
//! three ways of covering a grid — one shot, kill/resume, shard/merge —
//! provably fold to the same front (`explore --smoke` asserts the
//! three-way equality in CI; `tests/explore_resume.rs` locks it in).
//!
//! # Determinism
//!
//! A campaign's report depends only on its grid, never on its thread
//! count. That falls out of three decisions:
//!
//! * scenario ids are grid-enumeration positions, assigned before any
//!   work starts;
//! * synthesis artifacts are computed once per *synthesis key* in a
//!   dedicated phase, so which scenario "owns" a synthesis run (and which
//!   reuse it) is a property of the plan, not of scheduling;
//! * the Pareto front is folded sequentially in scenario-id order after
//!   every point completes, and the default objective vector contains
//!   only deterministic metrics (wall-time is opt-in, see
//!   [`ObjectiveKind::SynthTimeMs`]).
//!
//! Two scheduling-visible artifacts remain, both outside the measured
//! results: the *order* in which a streaming [`ResultSink`] observes
//! points, and — when the campaign-wide match cache is shared by several
//! workers — the [`cache_hits`](PointRecord::cache_hits) provenance
//! counter (whether a given enumeration was a hit depends on which
//! concurrent search populated the cache first; the search *results*
//! never depend on it).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use noc::prelude::*;
use noc::sim::sweep;
use noc::FlowResult;
use noc_telemetry::Telemetry;

use crate::pareto::ObjectiveKind;
use crate::report::{
    CacheSizeRecord, CampaignReport, NullSink, PointRecord, ResultSink, SweepPointRecord,
    VerifyRecord,
};
use crate::scenario::{Scenario, ScenarioGrid};
use crate::shard::ShardManifest;

/// Capacity (distinct size-tagged remaining graphs) of every match cache
/// the exploration layer creates: the campaign engine's internal cache,
/// the sampler's cross-round cache, coordinator workers and accumulator,
/// and `explore --cache` loads. One shared constant so a cache file
/// persisted by any of them can be held in full by all the others.
pub const CACHE_CAPACITY: usize = 1 << 16;

/// The synthesized artifacts shared by every scenario with one synthesis
/// key: the flow result plus the simulation-ready model (all-pairs routes
/// filled once).
pub(crate) struct SynthArtifacts {
    result: FlowResult,
    model: NocModel,
    /// The application's demand pairs — the sweep's traffic population (a
    /// custom architecture only guarantees routes for these).
    pairs: Vec<(NodeId, NodeId)>,
    synth_ms: f64,
    /// Static deadlock-freedom verdict of `model`, computed once per
    /// synthesis key right after synthesis (every scenario sharing the
    /// key repeats it, like `synth_ms`).
    pub(crate) verify: VerifyRecord,
}

pub(crate) type SynthOutcome = Result<Arc<SynthArtifacts>, String>;

/// What a campaign's execute stage will actually run: the scenarios still
/// owed work, plus records carried over from a prior report.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Scenarios to evaluate, ascending by id.
    scenarios: Vec<Scenario>,
    /// Records adopted from a prior report (ids disjoint from
    /// `scenarios`); folded into the front without re-running.
    carried: Vec<PointRecord>,
    /// Total points in the grid the plan was cut from.
    grid_len: usize,
}

impl CampaignPlan {
    /// Number of scenarios the execute stage will run.
    pub fn to_run(&self) -> usize {
        self.scenarios.len()
    }

    /// Number of records carried from the prior report.
    pub fn carried(&self) -> usize {
        self.carried.len()
    }

    /// Total points in the plan's grid.
    pub fn grid_len(&self) -> usize {
        self.grid_len
    }

    /// The planned scenario ids, ascending.
    pub fn scenario_ids(&self) -> Vec<usize> {
        self.scenarios.iter().map(|s| s.id).collect()
    }

    /// Keeps only the planned scenarios whose id is in `ids` (carried
    /// records are untouched). This is how a sampling planner turns "the
    /// whole remaining grid" ([`Campaign::plan_resume`]) into one round's
    /// worth of work: plan the resume, restrict to the round's chosen
    /// ids, execute, re-plan against the grown report.
    #[must_use]
    pub fn restrict(mut self, ids: &std::collections::BTreeSet<usize>) -> Self {
        self.scenarios.retain(|s| ids.contains(&s.id));
        self
    }
}

/// A multi-objective design-space exploration campaign over a
/// [`ScenarioGrid`].
///
/// # Examples
///
/// ```
/// use noc::workloads::WorkloadFamily;
/// use noc_explore::{Campaign, ScenarioGrid, WorkloadSpec};
///
/// // One fixed workload, every other axis at its paper default.
/// let grid = ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]);
/// let report = Campaign::new(grid).run();
/// assert_eq!(report.points.len(), 1);
/// assert_eq!(report.front, vec![0]); // a lone point is trivially Pareto
/// assert!(report.points[0].error.is_none());
/// ```
///
/// A real campaign sweeps several axes and reads the front:
///
/// ```
/// use noc::prelude::*;
/// use noc::workloads::WorkloadFamily;
/// use noc_explore::{Campaign, ObjectiveKind, ScenarioGrid, WorkloadSpec};
///
/// let grid = ScenarioGrid::new()
///     .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
///     .synthesis_objectives([Objective::Links, Objective::Energy])
///     .technologies([TechnologyProfile::cmos_180nm(), TechnologyProfile::cmos_130nm()]);
/// let campaign = Campaign::new(grid)
///     .objectives(&[ObjectiveKind::EnergyJoules, ObjectiveKind::AvgLatencyCycles]);
/// let report = campaign.clone().threads(2).run();
/// assert_eq!(report.points.len(), 4);
/// assert!(!report.front.is_empty());
/// // Thread count never changes the front.
/// assert_eq!(report.front, campaign.run().front);
/// ```
///
/// Campaigns are incremental: a report can be written out, read back and
/// resumed, and grids can be sharded across machines and merged —
/// all three coverages fold to the same front:
///
/// ```
/// use noc::workloads::WorkloadFamily;
/// use noc_explore::{merge_reports, Campaign, ScenarioGrid, ShardManifest, WorkloadSpec};
///
/// let grid = ScenarioGrid::new()
///     .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]);
/// let campaign = Campaign::new(grid);
/// let single = campaign.run();
///
/// // Shard the grid, run the slices independently, merge the reports.
/// let shards: Vec<_> = (0..2)
///     .map(|i| campaign.run_plan(campaign.plan_shard(&ShardManifest::range(i, 2))))
///     .collect();
/// assert_eq!(merge_reports(&shards).unwrap().front, single.front);
///
/// // Resume from a partial report (here: shard 0 alone).
/// let resumed = campaign.resume_from(&shards[0]).unwrap();
/// assert_eq!(resumed.front, single.front);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    pub(crate) grid: ScenarioGrid,
    pub(crate) objectives: Vec<ObjectiveKind>,
    threads: usize,
    share_synthesis: bool,
    pub(crate) share_match_cache: bool,
    /// Explicit telemetry override; `None` falls back to the process-wide
    /// handle ([`noc_telemetry::active`]).
    telemetry: Option<Telemetry>,
}

impl Campaign {
    /// A campaign over `grid` with the deterministic default objective
    /// vector ([`ObjectiveKind::DEFAULT`]), one worker thread, and both
    /// artifact-sharing layers enabled.
    pub fn new(grid: ScenarioGrid) -> Self {
        Campaign {
            grid,
            objectives: ObjectiveKind::DEFAULT.to_vec(),
            threads: 1,
            share_synthesis: true,
            share_match_cache: true,
            telemetry: None,
        }
    }

    /// Replaces the scenario grid.
    #[must_use]
    pub fn grid(mut self, grid: ScenarioGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Replaces the objective vector the Pareto front ranks.
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicated objective list.
    #[must_use]
    pub fn objectives(mut self, kinds: &[ObjectiveKind]) -> Self {
        assert!(!kinds.is_empty(), "need at least one objective");
        let mut seen = Vec::new();
        for k in kinds {
            assert!(!seen.contains(k), "duplicate objective {k:?}");
            seen.push(*k);
        }
        self.objectives = kinds.to_vec();
        self
    }

    /// Campaign worker threads: `1` = sequential (default), `0` = one per
    /// hardware thread. Per-scenario results and the front are identical
    /// at every thread count (see the module docs) — as long as the
    /// engine-axis configurations themselves are deterministic
    /// (`DecomposerConfig::threads == 1`, the default: a parallel
    /// *decomposer* proves the same cost but may return a different
    /// equal-cost architecture).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Disables synthesis-artifact sharing (scenarios differing only in
    /// sim spec will each re-synthesize — only useful for measuring the
    /// sharing itself).
    #[must_use]
    pub fn share_synthesis(mut self, share: bool) -> Self {
        self.share_synthesis = share;
        self
    }

    /// Disables the campaign-wide shared VF2 match cache (each synthesis
    /// run falls back to its private per-run cache).
    #[must_use]
    pub fn share_match_cache(mut self, share: bool) -> Self {
        self.share_match_cache = share;
        self
    }

    /// Routes this campaign's spans, counters and events to an explicit
    /// telemetry handle instead of the process-wide one — the handle an
    /// embedding test or tool owns outright. A disabled handle silences
    /// the campaign even when a global trace is installed.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The handle instrumentation writes to: the explicit override when
    /// set, otherwise the process-wide handle (if any).
    pub(crate) fn resolved_telemetry(&self) -> Option<&Telemetry> {
        match &self.telemetry {
            Some(t) => Some(t),
            None => noc_telemetry::active(),
        }
    }

    /// Plans the whole grid: every scenario, nothing carried.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc::workloads::WorkloadFamily;
    /// use noc_explore::{Campaign, ScenarioGrid, WorkloadSpec};
    ///
    /// let campaign = Campaign::new(
    ///     ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]),
    /// );
    /// let plan = campaign.plan();
    /// assert_eq!((plan.to_run(), plan.carried()), (1, 0));
    /// assert_eq!(plan.scenario_ids(), vec![0]);
    /// let report = campaign.run_plan(plan);
    /// assert_eq!(report.points.len(), 1);
    /// ```
    pub fn plan(&self) -> CampaignPlan {
        CampaignPlan {
            scenarios: self.grid.enumerate(),
            carried: Vec::new(),
            grid_len: self.grid.len(),
        }
    }

    /// Plans one shard's slice of the grid (see [`ShardManifest`]);
    /// nothing carried. The reports of a full partition merge back into
    /// the single-shot front via
    /// [`merge_reports`](crate::shard::merge_reports).
    pub fn plan_shard(&self, shard: &ShardManifest) -> CampaignPlan {
        let total = self.grid.len();
        CampaignPlan {
            scenarios: self
                .grid
                .enumerate()
                .into_iter()
                .filter(|s| shard.contains(s.id, total))
                .collect(),
            carried: Vec::new(),
            grid_len: total,
        }
    }

    /// Plans the grid minus the points `prior` already records: a
    /// scenario is skipped (and its record carried) when the prior report
    /// holds a record with its id **and** label — a label mismatch means
    /// the id names a different scenario in the prior grid, so the point
    /// is re-run rather than trusted. Errored prior records are carried
    /// too: failures are deterministic per grid, so re-running them buys
    /// nothing.
    ///
    /// Fails when `prior` ranks a different objective vector — its
    /// recorded objective values would be meaningless in this campaign's
    /// front.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc::prelude::*;
    /// use noc::workloads::WorkloadFamily;
    /// use noc_explore::{Campaign, ScenarioGrid, ShardManifest, WorkloadSpec};
    ///
    /// let campaign = Campaign::new(
    ///     ScenarioGrid::new()
    ///         .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
    ///         .synthesis_objectives([Objective::Links, Objective::Energy]),
    /// );
    /// // A prior partial report (here: half the grid) is planned around.
    /// let prior = campaign.run_plan(campaign.plan_shard(&ShardManifest::range(0, 2)));
    /// let plan = campaign.plan_resume(&prior).unwrap();
    /// assert_eq!((plan.to_run(), plan.carried()), (1, 1));
    /// // Executing the plan completes the grid, carrying the old record.
    /// let report = campaign.run_plan(plan);
    /// assert_eq!(report.points.len(), 2);
    /// assert_eq!(report.front, campaign.run().front);
    /// ```
    pub fn plan_resume(&self, prior: &CampaignReport) -> Result<CampaignPlan, String> {
        if prior.objective_kinds != self.objectives {
            return Err(format!(
                "prior report ranks {:?}, campaign ranks {:?} — refusing to fold incomparable records",
                prior.objective_kinds, self.objectives
            ));
        }
        let mut scenarios = Vec::new();
        let mut carried = Vec::new();
        for scenario in self.grid.enumerate() {
            match prior.point(scenario.id) {
                Some(record) if record.label == scenario.label() => {
                    carried.push(record.clone());
                }
                _ => scenarios.push(scenario),
            }
        }
        Ok(CampaignPlan {
            scenarios,
            carried,
            grid_len: self.grid.len(),
        })
    }

    /// Runs the campaign, discarding streaming results.
    pub fn run(&self) -> CampaignReport {
        self.run_with_sink(&mut NullSink)
    }

    /// Runs the campaign, streaming each completed point into `sink`
    /// before returning the assembled report.
    pub fn run_with_sink(&self, sink: &mut dyn ResultSink) -> CampaignReport {
        self.run_plan_with_sink(self.plan(), sink)
    }

    /// Resumes from a prior (possibly partial) report: plans the missing
    /// points, runs them, and folds old and new records into one front.
    /// See [`plan_resume`](Self::plan_resume) for the skip rule and the
    /// failure case.
    pub fn resume_from(&self, prior: &CampaignReport) -> Result<CampaignReport, String> {
        self.resume_with_sink(prior, &mut NullSink)
    }

    /// [`resume_from`](Self::resume_from), streaming each *newly run*
    /// point into `sink` (carried records are not replayed).
    pub fn resume_with_sink(
        &self,
        prior: &CampaignReport,
        sink: &mut dyn ResultSink,
    ) -> Result<CampaignReport, String> {
        Ok(self.run_plan_with_sink(self.plan_resume(prior)?, sink))
    }

    /// Executes a plan, discarding streaming results.
    pub fn run_plan(&self, plan: CampaignPlan) -> CampaignReport {
        self.run_plan_with_sink(plan, &mut NullSink)
    }

    /// The engine: executes `plan`'s scenarios (streaming completions
    /// into `sink`), then folds fresh and carried records into the
    /// report. All other `run_*`/`resume_*` entry points funnel here —
    /// each with run-lifetime shared state (`run_plan_shared`
    /// lets a multi-round caller like the sampler keep artifacts and the
    /// match cache alive across plans).
    pub fn run_plan_with_sink(
        &self,
        plan: CampaignPlan,
        sink: &mut dyn ResultSink,
    ) -> CampaignReport {
        let match_cache = self
            .share_match_cache
            .then(|| SharedMatchCache::new(CACHE_CAPACITY));
        self.run_plan_shared(plan, sink, &mut HashMap::new(), match_cache.as_ref())
    }

    /// [`run_plan_with_sink`](Self::run_plan_with_sink) with a
    /// **caller-owned** campaign-wide match cache instead of a fresh
    /// internal one — the hook the [coordinator](crate::coordinate()) and
    /// cache [persistence](SharedMatchCache::warm_start) need: warm-start
    /// a cache from a file, run the plan against it, save it back.
    /// Overrides [`share_match_cache`](Self::share_match_cache); the
    /// report's `match_cache` rows are cumulative over the cache's
    /// lifetime, so a warmed cache can show hits (and
    /// [`warm_hits`](crate::report::CacheSizeRecord::warm_hits)) from its
    /// very first decomposition.
    pub fn run_plan_with_cache(
        &self,
        plan: CampaignPlan,
        sink: &mut dyn ResultSink,
        cache: &SharedMatchCache,
    ) -> CampaignReport {
        self.run_plan_shared(plan, sink, &mut HashMap::new(), Some(cache))
    }

    /// [`run_plan_with_sink`](Self::run_plan_with_sink) with
    /// caller-owned shared state: `artifacts` carries synthesized
    /// architectures across *multiple* plans (a synthesis key already in
    /// the map is never re-synthesized — its scenarios count as reused),
    /// and `match_cache` is the campaign-wide VF2 cache (its stats rows
    /// in the report are cumulative over the cache's lifetime). The
    /// sampler threads both through its rounds so budgeted campaigns
    /// keep the exhaustive engine's once-per-key guarantee.
    pub(crate) fn run_plan_shared(
        &self,
        plan: CampaignPlan,
        sink: &mut dyn ResultSink,
        artifacts: &mut HashMap<String, SynthOutcome>,
        match_cache: Option<&SharedMatchCache>,
    ) -> CampaignReport {
        let t0 = Instant::now();
        let CampaignPlan {
            scenarios, carried, ..
        } = plan;
        let tel = self.resolved_telemetry();
        let run_span = tel.map(|t| {
            t.add("campaign.plans", 1);
            t.span("campaign.run")
                .field("scenarios", scenarios.len() as u64)
                .field("carried", carried.len() as u64)
        });

        // Execute phase 1 — synthesis, once per synthesis key not already
        // carried in `artifacts`. Job ownership is a plan property (first
        // scenario bearing each new key), so reuse flags and statistics
        // are identical at every thread count.
        let mut first_of_key: HashMap<String, usize> = HashMap::new();
        let mut jobs: Vec<&Scenario> = Vec::new();
        for scenario in &scenarios {
            let key = self.synthesis_key(scenario);
            if artifacts.contains_key(&key) {
                continue;
            }
            first_of_key.entry(key).or_insert_with(|| {
                jobs.push(scenario);
                scenario.id
            });
        }
        let synth_results: Vec<Mutex<Option<SynthOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        // The automatic floorplan depends only on the workload's demand
        // graph, the floorplan seed and the core area — not on the
        // synthesis objective or engine — so synthesis keys differing
        // only in those axes share one placement. The floorplanner
        // dominates flow cost (simulated annealing vs sub-ms synthesis
        // on campaign-sized graphs), so this dedup, not artifact reuse,
        // is what the smoke grid's flows/sec mostly measures. Racing
        // workers may both compute a placement; the floorplanner is
        // deterministic per key, so the duplicate is wasted work, never
        // a results change.
        let placements: Mutex<HashMap<(String, u64, u64), Placement>> = Mutex::new(HashMap::new());
        let threads = self.resolve_threads(scenarios.len());
        let next_job = AtomicUsize::new(0);
        let synthesize_worker = || loop {
            let i = next_job.fetch_add(1, Ordering::Relaxed);
            let Some(job) = jobs.get(i) else { break };
            let span = tel.map(|t| {
                // Depth = jobs not yet claimed (approximate under
                // concurrency — workers race the gauge, last write wins).
                t.gauge_set("campaign.synth_queue_depth", (jobs.len() - i - 1) as u64);
                t.span("campaign.synthesize")
                    .field("scenario_id", job.id as u64)
                    .field("label", job.label())
            });
            let outcome = self.synthesize(job, match_cache, &placements);
            drop(span);
            *synth_results[i].lock().expect("synth slot") = Some(outcome);
        };
        run_pool(threads.min(jobs.len().max(1)), &synthesize_worker);
        let mut flows_synthesized = 0;
        for (job, slot) in jobs.iter().zip(&synth_results) {
            let outcome = slot
                .lock()
                .expect("synth slot")
                .take()
                .expect("synthesis phase filled every slot");
            if outcome.is_ok() {
                flows_synthesized += 1;
            }
            artifacts.insert(self.synthesis_key(job), outcome);
        }

        // Execute phase 2 — simulate + measure every planned scenario
        // against its shared artifacts.
        let artifacts = &*artifacts;
        let records: Vec<Mutex<Option<PointRecord>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        let sink = Mutex::new(sink);
        let next_scenario = AtomicUsize::new(0);
        let measure_worker = || loop {
            let i = next_scenario.fetch_add(1, Ordering::Relaxed);
            let Some(scenario) = scenarios.get(i) else {
                break;
            };
            let key = self.synthesis_key(scenario);
            // Reused: another scenario owns the key this plan, or the
            // artifact was carried in from a prior plan (sampler round).
            let reused = first_of_key
                .get(&key)
                .is_none_or(|&owner| owner != scenario.id);
            let span = tel.map(|t| {
                t.gauge_set(
                    "campaign.measure_queue_depth",
                    (scenarios.len() - i - 1) as u64,
                );
                t.span("campaign.measure")
                    .field("scenario_id", scenario.id as u64)
                    .field("label", scenario.label())
                    .field("reused", reused)
            });
            let record = self.measure(scenario, &artifacts[&key], reused);
            drop(span);
            sink.lock().expect("sink lock").point(&record);
            *records[i].lock().expect("record slot") = Some(record);
        };
        run_pool(threads, &measure_worker);

        // Fold — carried and fresh records together, sequentially in
        // scenario order, so the front is a pure function of the records.
        let fresh: Vec<PointRecord> = records
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("record slot")
                    .expect("measurement phase filled every slot")
            })
            .collect();
        let synthesis_reused = fresh
            .iter()
            .filter(|p| p.reused_synthesis && p.error.is_none())
            .count();
        let carried_points = carried.len();
        let mut all = carried;
        all.extend(fresh);
        let mut report = CampaignReport::assemble(self.objectives.clone(), all);
        report.threads = threads;
        report.flows_synthesized = flows_synthesized;
        report.synthesis_reused = synthesis_reused;
        report.carried_points = carried_points;
        report.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        report.match_cache = match_cache
            .map(|cache| {
                cache
                    .size_stats()
                    .iter()
                    .map(|s| CacheSizeRecord {
                        vertex_count: s.vertex_count,
                        hits: s.hits,
                        misses: s.misses,
                        warm_hits: s.warm_hits,
                    })
                    .collect()
            })
            .unwrap_or_default();
        if let Some(t) = tel {
            t.add(
                "campaign.flows_synthesized",
                report.flows_synthesized as u64,
            );
            t.add("campaign.synthesis_reused", report.synthesis_reused as u64);
            t.add("campaign.carried_points", report.carried_points as u64);
            t.add("campaign.points", report.points.len() as u64);
            if !report.match_cache.is_empty() {
                let (hits, misses, warm_hits) = report
                    .match_cache
                    .iter()
                    .fold((0u64, 0u64, 0u64), |(h, m, w), r| {
                        (h + r.hits, m + r.misses, w + r.warm_hits)
                    });
                t.event(
                    "campaign.match_cache",
                    &[
                        ("hits", hits.into()),
                        ("misses", misses.into()),
                        ("warm_hits", warm_hits.into()),
                    ],
                );
            }
        }
        sink.into_inner().expect("sink lock").finish(&report);
        drop(run_span);
        report
    }

    pub(crate) fn resolve_threads(&self, work_items: usize) -> usize {
        let t = match self.threads {
            0 => rayon::current_num_threads(),
            t => t,
        };
        t.min(work_items.max(1))
    }

    /// The sharing key: the scenario's synthesis key when sharing is on,
    /// otherwise a per-scenario unique key (disabling all reuse).
    pub(crate) fn synthesis_key(&self, scenario: &Scenario) -> String {
        if self.share_synthesis {
            scenario.synthesis_key()
        } else {
            format!("#{}", scenario.id)
        }
    }

    pub(crate) fn synthesize(
        &self,
        scenario: &Scenario,
        match_cache: Option<&SharedMatchCache>,
        placements: &Mutex<HashMap<(String, u64, u64), Placement>>,
    ) -> SynthOutcome {
        let acg = scenario.workload.instantiate();
        let pairs: Vec<(NodeId, NodeId)> = acg
            .demands()
            .filter(|(_, d)| d.volume > 0.0)
            .map(|(e, _)| (e.src, e.dst))
            .collect();
        let mut engine = scenario.engine.clone();
        if engine.use_match_cache {
            // One size-agnostic cache serves the whole campaign: keys are
            // vertex-count-tagged, so a size sweep shares a single map.
            if let Some(cache) = match_cache {
                engine.shared_cache = Some(cache.clone());
            }
        }
        let flow = SynthesisFlow::new(acg)
            .objective(scenario.objective)
            .technology(scenario.technology.clone())
            .seed(scenario.floorplan_seed)
            .core_area_mm2(scenario.core_area_mm2)
            .decomposer_config(engine);
        let placement_key = (
            scenario.workload.label(),
            scenario.floorplan_seed,
            scenario.core_area_mm2.to_bits(),
        );
        let cached = placements
            .lock()
            .expect("placement cache")
            .get(&placement_key)
            .cloned();
        let placement = match cached {
            Some(p) => {
                if let Some(t) = self.resolved_telemetry() {
                    t.add("campaign.floorplan_reuses", 1);
                }
                p
            }
            None => {
                let p = flow.auto_placement();
                placements
                    .lock()
                    .expect("placement cache")
                    .insert(placement_key, p.clone());
                p
            }
        };
        let t0 = Instant::now();
        let result = flow
            .run_with_placement(placement)
            .map_err(|e| e.to_string())?;
        let synth_ms = t0.elapsed().as_secs_f64() * 1e3;
        let model = result.noc_model();

        // Static deadlock analysis — once per synthesis key, against the
        // exact model the sweeps will run. The spec demands a route for
        // every traffic pair the sweep can draw, so an incomplete table
        // fails here, not mid-simulation.
        let t0 = Instant::now();
        let spec = model.routing_spec().require_pairs(pairs.iter().copied());
        let verdict = noc::verify::verify_with(&spec, self.resolved_telemetry());
        let verify = VerifyRecord::from_verdict(&verdict, t0.elapsed().as_secs_f64() * 1e3);

        Ok(Arc::new(SynthArtifacts {
            result,
            model,
            pairs,
            synth_ms,
            verify,
        }))
    }

    fn measure(&self, scenario: &Scenario, outcome: &SynthOutcome, reused: bool) -> PointRecord {
        let mut record = PointRecord {
            scenario_id: scenario.id,
            label: scenario.label(),
            workload: scenario.workload.label(),
            nodes: scenario.workload.family.effective_size(scenario.workload.n),
            engine: scenario.engine_label.clone(),
            synthesis_objective: format!("{:?}", scenario.objective),
            technology: scenario.technology.name().to_string(),
            sim: scenario.sim.label.clone(),
            router_fidelity: scenario.router_fidelity.label().to_string(),
            objectives: Vec::new(),
            on_front: false,
            reused_synthesis: reused,
            total_cost: f64::NAN,
            nodes_visited: 0,
            cache_hits: 0,
            synth_ms: f64::NAN,
            verify: None,
            sweep: Vec::new(),
            saturated: false,
            error: None,
        };
        let artifacts = match outcome {
            Ok(a) => a,
            Err(e) => {
                record.error = Some(e.clone());
                return record;
            }
        };
        record.total_cost = artifacts.result.decomposition.total_cost.value();
        record.nodes_visited = artifacts.result.stats.nodes_visited;
        record.cache_hits = artifacts.result.stats.cache_hits;
        record.synth_ms = artifacts.synth_ms;
        record.verify = Some(artifacts.verify.clone());

        // Gate: an unverified architecture never reaches the simulator —
        // its record carries the witness (or lint) instead of a sweep, and
        // the error keeps it off the front.
        if !artifacts.verify.deadlock_free {
            record.error = Some(format!(
                "verification failed: {}",
                artifacts.verify.summary()
            ));
            return record;
        }

        let sweep_config = sweep::SweepConfig {
            rates: scenario.sim.rates.clone(),
            duration_cycles: scenario.sim.duration_cycles,
            payload_bits: scenario.sim.payload_bits,
            seed: scenario.sim.seed,
            saturation_cutoff: scenario.sim.saturation_cutoff,
            pairs: Some(artifacts.pairs.clone()),
            // The campaign's worker pool owns the parallelism; each flow's
            // sweep stays sequential so workers don't oversubscribe cores.
            threads: 1,
            sim: noc::sim::SimConfig {
                router: scenario.router_fidelity,
                ..noc::sim::SimConfig::default()
            },
        };
        let energy = EnergyModel::new(scenario.technology.clone());
        let points = match sweep::sweep(&artifacts.model, &sweep_config, &energy) {
            Ok(points) if !points.is_empty() => points,
            Ok(_) => {
                record.error = Some("sim spec has no load points".to_string());
                return record;
            }
            Err(e) => {
                record.error = Some(e.to_string());
                return record;
            }
        };
        record.saturated = points.len() < scenario.sim.rates.len();
        record.sweep = points
            .iter()
            .map(|p| SweepPointRecord {
                rate: p.injection_rate,
                latency_cycles: p.avg_latency_cycles,
                throughput_bits_per_cycle: p.throughput_bits_per_cycle,
                energy_joules: p.energy_joules,
            })
            .collect();
        let measure = &points[scenario.sim.measure_index.min(points.len() - 1)];
        if measure.packets == 0 {
            // An unloaded point reports 0.0 latency and energy — offering
            // that vector would let an unmeasured design dominate the
            // front, so fail the point instead (deterministic per grid:
            // the traffic draw is seeded).
            record.error = Some(format!(
                "measurement point (rate {}) delivered no packets",
                measure.injection_rate
            ));
            return record;
        }
        record.objectives = self
            .objectives
            .iter()
            .map(|kind| match kind {
                ObjectiveKind::EnergyJoules => measure.energy_joules,
                ObjectiveKind::AvgLatencyCycles => measure.avg_latency_cycles,
                ObjectiveKind::AreaMm2 => artifacts.result.placement.chip_area_mm2(),
                ObjectiveKind::SynthTimeMs => artifacts.synth_ms,
            })
            .collect();
        record
    }
}

/// Runs `worker` on `threads` scoped workers (inline when sequential).
fn run_pool(threads: usize, worker: &(dyn Fn() + Sync)) {
    if threads <= 1 {
        worker();
    } else {
        rayon::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| worker());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{SimSpec, WorkloadSpec};
    use noc::workloads::WorkloadFamily;

    #[test]
    fn smoke_grid_runs_and_reuses_synthesis() {
        let report = Campaign::new(ScenarioGrid::smoke()).run();
        assert_eq!(report.points.len(), 12);
        assert!(report.points.iter().all(|p| p.error.is_none()));
        // Every point carries a clean static-verification verdict: the
        // synthesized VC assignment is deadlock-free by construction.
        for p in &report.points {
            let verify = p.verify.as_ref().expect("point carries a verdict");
            assert!(verify.deadlock_free, "{}: {}", p.label, verify.summary());
            assert!(verify.routes_checked > 0);
        }
        // Two sim specs per synthesis key: half the points reuse.
        assert_eq!(report.flows_synthesized, 6);
        assert_eq!(report.synthesis_reused, 6);
        assert_eq!(report.carried_points, 0);
        assert!(!report.front.is_empty());
        assert!(report.hypervolume > 0.0);
        // Front ids index real, unfailed, flagged points.
        for &id in &report.front {
            assert!(report.points[id].on_front);
        }
    }

    #[test]
    fn credit_fidelity_points_simulate_under_the_credit_router() {
        use noc::prelude::{CreditConfig, RouterFidelity};
        let grid = ScenarioGrid::new()
            .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
            .sims([SimSpec {
                duration_cycles: 150,
                ..SimSpec::default()
            }])
            .router_fidelities([
                RouterFidelity::Ideal,
                RouterFidelity::Credit(CreditConfig {
                    rc_cycles: 1,
                    st_cycles: 2,
                    credit_return_cycles: 2,
                }),
            ]);
        let report = Campaign::new(grid).run();
        assert_eq!(report.points.len(), 2);
        assert!(report.points.iter().all(|p| p.error.is_none()));
        let (ideal, credit) = (&report.points[0], &report.points[1]);
        assert_eq!(ideal.router_fidelity, "ideal");
        assert_eq!(credit.router_fidelity, "credit");
        assert!(credit.label.ends_with("/credit"));
        // Same synthesized architecture (the axis is innermost), but the
        // deeper pipeline raises the measured latency.
        assert!(credit.reused_synthesis);
        assert!(
            credit.sweep[0].latency_cycles > ideal.sweep[0].latency_cycles,
            "credit {} vs ideal {}",
            credit.sweep[0].latency_cycles,
            ideal.sweep[0].latency_cycles
        );
        // And the record survives the report round trip.
        let parsed = CampaignReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.points[1].router_fidelity, "credit");
    }

    #[test]
    fn campaign_shares_one_cache_across_sizes() {
        // The smoke grid spans 8- and 10-vertex workloads, each
        // synthesized under two objectives: the second run per workload
        // hits entries the first populated, and the one campaign-wide
        // cache attributes traffic to ≥ 2 vertex counts.
        let report = Campaign::new(ScenarioGrid::smoke()).run();
        assert!(
            report.match_cache.len() >= 2,
            "expected ≥ 2 sizes, got {:?}",
            report.match_cache
        );
        let with_hits = report.match_cache.iter().filter(|c| c.hits > 0).count();
        assert!(
            with_hits >= 2,
            "expected cross-size hits on ≥ 2 sizes: {:?}",
            report.match_cache
        );

        // Opting out leaves the stats empty.
        let unshared = Campaign::new(ScenarioGrid::smoke())
            .share_match_cache(false)
            .run();
        assert!(unshared.match_cache.is_empty());
        assert_eq!(unshared.front, report.front);
    }

    #[test]
    fn thread_count_never_changes_the_front() {
        let sequential = Campaign::new(ScenarioGrid::smoke()).run();
        let parallel = Campaign::new(ScenarioGrid::smoke()).threads(4).run();
        assert_eq!(sequential.front, parallel.front);
        assert_eq!(sequential.hypervolume, parallel.hypervolume);
        for (a, b) in sequential.points.iter().zip(&parallel.points) {
            assert_eq!(a.scenario_id, b.scenario_id);
            assert_eq!(a.objectives, b.objectives, "point {}", a.label);
            assert_eq!(a.reused_synthesis, b.reused_synthesis);
            assert_eq!(a.total_cost, b.total_cost);
        }
    }

    #[test]
    fn sharing_off_synthesizes_every_point() {
        let grid = ScenarioGrid::new()
            .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
            .sims([
                SimSpec::default(),
                SimSpec {
                    label: "hot".into(),
                    rates: vec![0.2],
                    ..SimSpec::default()
                },
            ]);
        let shared = Campaign::new(grid.clone()).run();
        assert_eq!((shared.flows_synthesized, shared.synthesis_reused), (1, 1));
        let unshared = Campaign::new(grid).share_synthesis(false).run();
        assert_eq!(
            (unshared.flows_synthesized, unshared.synthesis_reused),
            (2, 0)
        );
        // Sharing is invisible in the measurements themselves.
        assert_eq!(shared.points[1].objectives, unshared.points[1].objectives);
    }

    #[test]
    fn constraint_failures_are_recorded_not_fatal() {
        let strangled = TechnologyProfile::builder("strangled")
            .max_bisection_links(0)
            .build();
        let engine = DecomposerConfig {
            check_constraints: true,
            ..DecomposerConfig::default()
        };
        let grid = ScenarioGrid::new()
            .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
            .engines([("constrained", engine)])
            .technologies([strangled]);
        let report = Campaign::new(grid).run();
        assert_eq!(report.points.len(), 1);
        assert!(report.points[0].error.is_some());
        assert!(report.front.is_empty());
        assert_eq!(report.hypervolume, 0.0);
    }

    #[test]
    fn unloaded_measurement_point_fails_instead_of_dominating() {
        // Rate 0.0 delivers no packets; the 0.0-latency/0.0-energy vector
        // must not reach the front as a fake optimum.
        let grid = ScenarioGrid::new()
            .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
            .sims([SimSpec {
                rates: vec![0.0],
                ..SimSpec::default()
            }]);
        let report = Campaign::new(grid).run();
        let error = report.points[0].error.as_deref().unwrap();
        assert!(error.contains("delivered no packets"), "{error}");
        assert!(report.front.is_empty());
    }

    #[test]
    fn synth_time_objective_is_opt_in() {
        let grid = ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]);
        let report = Campaign::new(grid)
            .objectives(&[ObjectiveKind::AreaMm2, ObjectiveKind::SynthTimeMs])
            .run();
        let objs = &report.points[0].objectives;
        assert_eq!(objs.len(), 2);
        assert!(objs[1] >= 0.0);
    }

    #[test]
    fn plans_partition_and_resume_skips_completed() {
        let campaign = Campaign::new(ScenarioGrid::smoke());
        let full = campaign.plan();
        assert_eq!(
            (full.to_run(), full.carried(), full.grid_len()),
            (12, 0, 12)
        );

        let half = campaign.plan_shard(&ShardManifest::range(0, 2));
        assert_eq!(half.to_run(), 6);
        assert_eq!(half.scenario_ids(), vec![0, 1, 2, 3, 4, 5]);

        let partial = campaign.run_plan(campaign.plan_shard(&ShardManifest::range(0, 2)));
        assert_eq!(partial.points.len(), 6);
        let rest = campaign.plan_resume(&partial).unwrap();
        assert_eq!((rest.to_run(), rest.carried()), (6, 6));
        assert_eq!(rest.scenario_ids(), vec![6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn resume_equals_single_shot() {
        let campaign = Campaign::new(ScenarioGrid::smoke());
        let single = campaign.run();
        let partial = campaign.run_plan(campaign.plan_shard(&ShardManifest::modulo(0, 2)));
        let resumed = campaign.resume_from(&partial).unwrap();
        assert_eq!(resumed.front, single.front);
        assert_eq!(resumed.carried_points, 6);
        assert_eq!(resumed.points.len(), 12);
        for (a, b) in resumed.points.iter().zip(&single.points) {
            assert_eq!(a.objectives, b.objectives, "point {}", a.label);
        }
    }

    #[test]
    fn resume_rejects_incomparable_reports() {
        let campaign = Campaign::new(ScenarioGrid::smoke());
        let partial = campaign.run_plan(campaign.plan_shard(&ShardManifest::range(0, 2)));
        let other = Campaign::new(ScenarioGrid::smoke()).objectives(&[ObjectiveKind::EnergyJoules]);
        let err = other.plan_resume(&partial).unwrap_err();
        assert!(err.contains("incomparable"), "{err}");
    }

    #[test]
    fn resume_reruns_points_whose_labels_changed() {
        // A prior report from a *different* grid: ids overlap but labels
        // differ, so nothing can be trusted and everything re-runs.
        let fig5 = Campaign::new(
            ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]),
        );
        let prior = fig5.run();
        let tgff = Campaign::new(ScenarioGrid::new().workloads([WorkloadSpec::new(
            WorkloadFamily::Tgff,
            8,
            8,
        )]));
        let plan = tgff.plan_resume(&prior).unwrap();
        assert_eq!((plan.to_run(), plan.carried()), (1, 0));
    }
}
