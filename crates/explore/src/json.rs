//! A minimal hand-rolled JSON reader, mirroring the workspace's
//! hand-rolled writers.
//!
//! The workspace is registry-offline (no serde), and its reports
//! (`EXPLORE_report.json`, JSON-Lines streams) are emitted by hand-rolled
//! writers with a stable key order. Resuming a campaign and merging shard
//! reports need to read those artifacts back, so this module provides the
//! matching reader: a small recursive-descent parser producing a
//! [`JsonValue`] tree plus the accessors report parsing needs.
//!
//! Numbers are parsed as `f64` (every writer in this workspace emits
//! either integers that fit exactly in an `f64` mantissa — ids, counters —
//! or floats formatted by Rust's shortest-round-trip `Display`, so
//! `write → parse → write` is lossless for our reports).

use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (the writers use it for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered key/value list (reports never repeat keys,
    /// and preserving order keeps `parse → write` stable).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.error("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions and values
    /// beyond exact `f64` integer range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// [`as_u64`](Self::as_u64) narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null` (writers emit it where a float was non-finite).
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A parse failure with its byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: our writers never emit them
                            // (only control characters are \u-escaped), but
                            // decode them anyway for robustness.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = &self.bytes[self.at..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b < 0xe0 => 2,
                        b if b < 0xf0 => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).expect("valid UTF-8"));
                    self.at += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.at..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.error("invalid \\u escape digits"))?;
        self.at = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -1.5e3 ").unwrap(),
            JsonValue::Number(-1500.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\\"b\\nc\"").unwrap(),
            JsonValue::String("a\"b\nc".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"xs": [1, 2, {"k": "v"}], "empty": [], "o": {}}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("k").unwrap().as_str(), Some("v"));
        assert_eq!(v.get("empty").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.get("o"), Some(&JsonValue::Object(vec![])));
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn float_display_round_trips() {
        // The writers format floats with Rust's shortest-round-trip
        // Display; parsing must recover the exact bits.
        for v in [0.1, 1.5e-9, 12.25, f64::MAX, 5e-324] {
            let text = format!("{v}");
            assert_eq!(JsonValue::parse(&text).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn control_escapes_round_trip() {
        assert_eq!(
            JsonValue::parse("\"\\u0007x\"").unwrap().as_str(),
            Some("\u{0007}x")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"k\" 1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = JsonValue::parse("[1, }").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
