//! Front-quality indicators: hypervolume and spread.
//!
//! Throughput (flows/sec, `BENCH_explore.json`) says nothing about whether
//! a campaign is finding *good* trade-offs. These indicators quantify the
//! front itself, against **fixed** per-objective reference points
//! ([`ObjectiveKind::reference`]) so values are comparable across runs,
//! shards and PRs:
//!
//! * **Hypervolume** — the volume of objective space dominated by the
//!   front, measured in reference-normalized coordinates (each objective
//!   divided by its reference value, hypervolume taken against the unit
//!   corner `(1, …, 1)`). Lies in `[0, 1]`; bigger is better; monotone —
//!   adding a non-dominated point never decreases it. Points at or beyond
//!   the reference in any coordinate contribute nothing.
//! * **Spread** — Schott's spacing metric over the **distinct** points of
//!   the normalized front: the standard deviation of nearest-neighbor (L1)
//!   distances. `0` means perfectly even coverage; bigger means clumping.
//!   `0` for fronts with fewer than two distinct members. Identical
//!   objective vectors are collapsed first: equal vectors coexist on a
//!   [`ParetoFront`](crate::ParetoFront) (several scenarios can measure
//!   the same trade-off — e.g. sim specs sharing a measurement point on
//!   one synthesized design), and without deduplication every twinned
//!   member has a nearest neighbor at distance zero, degenerating the
//!   metric to `0.000000` no matter how clumped the real front is (the
//!   `BENCH_explore.json` smoke front regression).
//!
//! The hypervolume implementation is the classic recursive slicing sweep
//! (sort by the last objective, integrate slab-by-slab). Exponential in
//! dimension count in the worst case, which is fine here: fronts are tens
//! of points over ≤ 4 objectives.

use crate::pareto::{FrontMember, ObjectiveKind};

/// Front-quality summary computed at campaign fold (and merge) time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontMetrics {
    /// Reference-normalized hypervolume in `[0, 1]` (0 for empty fronts).
    pub hypervolume: f64,
    /// Schott spacing of the distinct normalized front vectors (0 for
    /// fronts with fewer than 2 distinct members).
    pub spread: f64,
}

impl FrontMetrics {
    /// Metrics of `front` under the fixed reference points of `kinds`.
    pub fn of_front(front: &[FrontMember], kinds: &[ObjectiveKind]) -> FrontMetrics {
        let reference: Vec<f64> = kinds.iter().map(|k| k.reference()).collect();
        let normalized: Vec<Vec<f64>> = front
            .iter()
            .map(|m| {
                m.objectives
                    .iter()
                    .zip(&reference)
                    .map(|(v, r)| v / r)
                    .collect()
            })
            .collect();
        FrontMetrics {
            hypervolume: unit_hypervolume(&normalized),
            spread: schott_spacing(&normalized),
        }
    }
}

/// Hypervolume dominated by `points` (minimization) against the unit
/// reference corner `(1, …, 1)`. Points with any coordinate ≥ 1 are
/// clipped out; dominated or duplicate points are harmless (the sweep
/// integrates the union).
pub fn unit_hypervolume(points: &[Vec<f64>]) -> f64 {
    let inside: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| p.iter().all(|&v| v < 1.0))
        .cloned()
        .collect();
    if inside.is_empty() {
        return 0.0;
    }
    hv_sweep(inside)
}

/// Recursive slicing sweep; every point strictly dominates the unit corner.
fn hv_sweep(mut points: Vec<Vec<f64>>) -> f64 {
    let dims = points[0].len();
    if dims == 1 {
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return 1.0 - best;
    }
    points.sort_by(|a, b| {
        a[dims - 1]
            .partial_cmp(&b[dims - 1])
            .expect("objectives are finite")
    });
    let mut total = 0.0;
    for i in 0..points.len() {
        let z_lo = points[i][dims - 1];
        let z_hi = if i + 1 < points.len() {
            points[i + 1][dims - 1]
        } else {
            1.0
        };
        if z_hi <= z_lo {
            continue; // tied slab: zero thickness
        }
        // Within this slab, exactly the first i+1 points are present;
        // their projection's (dims-1)-volume times the slab thickness.
        let slice: Vec<Vec<f64>> = points[..=i]
            .iter()
            .map(|p| p[..dims - 1].to_vec())
            .collect();
        total += (z_hi - z_lo) * hv_sweep(slice);
    }
    total
}

/// Schott's spacing: `sqrt(Σ (dᵢ - d̄)² / (n - 1))` where `dᵢ` is point
/// `i`'s L1 distance to its nearest other front member, taken over the
/// **distinct** vectors of `points`. Duplicates are collapsed first — a
/// duplicated member's nearest neighbor is its own twin at distance zero,
/// and a front where every member is twinned (equal vectors coexist on a
/// Pareto front) would degenerate to spacing `0` regardless of how the
/// distinct trade-offs are distributed.
pub fn schott_spacing(points: &[Vec<f64>]) -> f64 {
    let mut distinct: Vec<&Vec<f64>> = Vec::with_capacity(points.len());
    for p in points {
        if !distinct.contains(&p) {
            distinct.push(p);
        }
    }
    if distinct.len() < 2 {
        return 0.0;
    }
    let nearest: Vec<f64> = distinct
        .iter()
        .enumerate()
        .map(|(i, p)| {
            distinct
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| {
                    p.iter()
                        .zip(q.iter())
                        .map(|(a, b)| (a - b).abs())
                        .sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = nearest.iter().sum::<f64>() / nearest.len() as f64;
    let variance =
        nearest.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (nearest.len() - 1) as f64;
    variance.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::ParetoFront;

    #[test]
    fn single_point_hypervolume_is_its_box() {
        let hv = unit_hypervolume(&[vec![0.25, 0.5]]);
        assert!((hv - 0.75 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn union_not_sum() {
        // Two overlapping boxes: HV is the union's area.
        let hv = unit_hypervolume(&[vec![0.2, 0.6], vec![0.6, 0.2]]);
        let expected = 0.8 * 0.4 + 0.4 * (0.8 - 0.4);
        assert!((hv - expected).abs() < 1e-12, "{hv} vs {expected}");
    }

    #[test]
    fn dominated_and_duplicate_points_change_nothing() {
        let base = unit_hypervolume(&[vec![0.2, 0.6], vec![0.6, 0.2]]);
        let with_noise = unit_hypervolume(&[
            vec![0.2, 0.6],
            vec![0.6, 0.2],
            vec![0.7, 0.7], // dominated
            vec![0.2, 0.6], // duplicate
        ]);
        assert!((base - with_noise).abs() < 1e-12);
    }

    #[test]
    fn out_of_reference_points_are_clipped() {
        assert_eq!(unit_hypervolume(&[vec![1.5, 0.1]]), 0.0);
        let hv = unit_hypervolume(&[vec![1.5, 0.1], vec![0.5, 0.5]]);
        assert!((hv - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_in_three_dimensions() {
        // Inclusion–exclusion oracle for two non-dominated 3D boxes:
        // |A| + |B| − |A ∩ B|.
        let a = [0.5, 0.5, 0.5];
        let b = [0.2, 0.9, 0.9];
        let vol = |p: &[f64]| p.iter().map(|v| 1.0 - v).product::<f64>();
        let meet: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y): (&f64, &f64)| x.max(y))
            .collect();
        let expected = vol(&a) + vol(&b) - vol(&meet);
        let hv = unit_hypervolume(&[a.to_vec(), b.to_vec()]);
        assert!((hv - expected).abs() < 1e-12, "{hv} vs {expected}");
    }

    #[test]
    fn adding_a_nondominated_point_grows_hypervolume() {
        let a = unit_hypervolume(&[vec![0.3, 0.7]]);
        let b = unit_hypervolume(&[vec![0.3, 0.7], vec![0.7, 0.3]]);
        assert!(b > a);
    }

    #[test]
    fn spacing_zero_for_even_fronts() {
        // Three evenly spaced points on the anti-diagonal.
        let s = schott_spacing(&[vec![0.1, 0.9], vec![0.5, 0.5], vec![0.9, 0.1]]);
        assert!(s.abs() < 1e-12);
        // Clumped points spread the nearest-neighbor distances out.
        let clumped = schott_spacing(&[vec![0.1, 0.9], vec![0.11, 0.89], vec![0.9, 0.1]]);
        assert!(clumped > 0.1);
    }

    #[test]
    fn degenerate_fronts_are_zero() {
        assert_eq!(schott_spacing(&[]), 0.0);
        assert_eq!(schott_spacing(&[vec![0.5]]), 0.0);
        // A front of identical vectors has one distinct member: spacing 0.
        assert_eq!(schott_spacing(&[vec![0.5, 0.5], vec![0.5, 0.5]]), 0.0);
        assert_eq!(unit_hypervolume(&[]), 0.0);
    }

    #[test]
    fn duplicated_members_do_not_zero_the_spacing() {
        // The BENCH_explore.json regression: every front member twinned
        // (two sim specs measuring the same trade-off on one synthesized
        // design). Pre-fix, each twin's nearest neighbor sat at distance
        // 0, so the spacing collapsed to exactly 0 for a front whose
        // three distinct trade-offs are clearly unevenly spaced.
        let distinct = [vec![0.1, 0.9], vec![0.12, 0.88], vec![0.9, 0.1]];
        let twinned: Vec<Vec<f64>> = distinct
            .iter()
            .flat_map(|p| [p.clone(), p.clone()])
            .collect();
        let spacing = schott_spacing(&twinned);
        assert!(
            spacing > 0.0,
            "≥ 2 distinct, non-uniform members must report spread > 0"
        );
        // Collapsing duplicates makes the twinned front equivalent to the
        // distinct one.
        assert_eq!(spacing, schott_spacing(&distinct));
    }

    #[test]
    fn of_front_reports_positive_spread_for_twinned_fronts() {
        // Same regression at the fold-time entry point campaigns use.
        let kinds = [ObjectiveKind::EnergyJoules, ObjectiveKind::AvgLatencyCycles];
        let mut front = ParetoFront::new(2);
        let vectors = [
            [8.4e-9, 3.43],
            [5.5e-9, 3.45],
            [8.7e-9, 3.33], // non-uniform: two clumped, one apart
        ];
        for (i, v) in vectors.iter().enumerate() {
            // Twin every member, as scenario pairs sharing a measurement do.
            front.offer(2 * i, v.to_vec());
            front.offer(2 * i + 1, v.to_vec());
        }
        assert_eq!(front.len(), 6);
        let m = FrontMetrics::of_front(front.members(), &kinds);
        assert!(m.spread > 0.0, "twinned front reported spread {}", m.spread);
    }

    #[test]
    fn of_front_uses_fixed_references() {
        let mut front = ParetoFront::new(2);
        front.offer(
            0,
            vec![
                ObjectiveKind::EnergyJoules.reference() * 0.5,
                ObjectiveKind::AvgLatencyCycles.reference() * 0.25,
            ],
        );
        let m = FrontMetrics::of_front(
            front.members(),
            &[ObjectiveKind::EnergyJoules, ObjectiveKind::AvgLatencyCycles],
        );
        assert!((m.hypervolume - 0.5 * 0.75).abs() < 1e-12);
        assert_eq!(m.spread, 0.0);
    }
}
