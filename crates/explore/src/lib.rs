//! Parallel multi-objective design-space exploration over the full NoC
//! synthesis flow.
//!
//! The paper synthesizes *one* architecture per application under fixed
//! constraints; its evaluation — and the related exploration literature
//! (Marcon et al.'s energy/timing mapping trade-offs, Yu & Dong's joint
//! topology/floorplan generation) — is really about *families* of runs.
//! This crate makes the family the product: a [`Campaign`] fans out over
//! a declarative [`ScenarioGrid`] (workload family × size × seed ×
//! engine configuration × synthesis objective × technology × floorplan
//! seed × simulation spec), runs the full pipeline (floorplan →
//! decomposition → architecture → wormhole simulation) for every point on
//! a worker pool, and folds the results into a multi-objective
//! [Pareto front](pareto) over energy, latency, area and synthesis effort
//! — with dominance-based pruning, per-scenario provenance, and
//! streaming JSON [reports](report).
//!
//! Work is deduplicated at two layers:
//!
//! * scenario points differing only in simulation spec share one
//!   synthesized architecture (the campaign synthesizes once per
//!   *synthesis key*);
//! * every synthesis run in a campaign shares one **size-agnostic**
//!   [`SharedMatchCache`](noc::synthesis::SharedMatchCache) (keys are
//!   vertex-count-tagged), so VF2 match enumeration — the decomposition
//!   hot path — is paid once per (graph size, remaining graph, primitive)
//!   across the whole campaign, even when the grid sweeps sizes.
//!
//! And campaigns are **incremental and partitionable** — the run is an
//! explicit plan → execute → fold pipeline (see [`campaign`]):
//!
//! * [`Campaign::resume_from`] reloads a previous report
//!   ([`CampaignReport::from_json`], or
//!   [`from_json_lines`](CampaignReport::from_json_lines) for the stream
//!   a killed run leaves behind), skips recorded scenarios, and folds
//!   old + new records into one front;
//! * a [`ShardManifest`] deals disjoint slices of a grid to independent
//!   processes or machines, and [`merge_reports`] re-folds their reports
//!   — single-shot, resumed and sharded-and-merged campaigns provably
//!   produce the same front;
//! * every report carries [front-quality metrics](metrics) (hypervolume
//!   against fixed reference points, spread) so exploration quality is
//!   tracked, not just throughput;
//! * [`Campaign::run_sampled`] spends an explicit **flow budget** where
//!   the front is still moving instead of enumerating the whole grid: an
//!   adaptive [sampling planner](sample) (ε-greedy bandit or successive
//!   halving over grid-axis arms, seeded and fully deterministic) plans
//!   each round against the accumulated report via the same resume
//!   machinery, and the report records the per-round provenance;
//! * [`coordinate()`] closes the distributed loop: it deals id slices to N
//!   workers over a pluggable [`WorkerTransport`] (OS processes or
//!   in-process threads out of the box), detects stragglers by deadline,
//!   salvages a killed worker's streamed points and re-deals only its
//!   *unfinished* ids, warm-starting every worker from a **persistent
//!   match-cache file**
//!   ([`SharedMatchCache::save_to`](noc::prelude::SharedMatchCache::save_to)
//!   / [`warm_start`](noc::prelude::SharedMatchCache::warm_start)) — the
//!   merged front is identical to the single-shot front even with
//!   workers dying mid-run.
//!
//! # Quickstart
//!
//! ```
//! use noc::prelude::*;
//! use noc::workloads::WorkloadFamily;
//! use noc_explore::{Campaign, ScenarioGrid, WorkloadSpec};
//!
//! let grid = ScenarioGrid::new()
//!     .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
//!     .synthesis_objectives([Objective::Links, Objective::Energy]);
//! let report = Campaign::new(grid).run();
//! assert_eq!(report.points.len(), 2);
//! for point in report.front_points() {
//!     println!("{}: {:?}", point.label, point.objectives);
//! }
//! println!("{}", report.to_json());
//! ```
//!
//! Reports are deterministic per grid at any thread count; see the
//! [`campaign`] module docs for why.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod coordinate;
pub mod json;
pub mod metrics;
pub mod pareto;
pub mod report;
pub mod sample;
pub mod scenario;
pub mod shard;
pub mod verify;

pub use campaign::{Campaign, CampaignPlan, CACHE_CAPACITY};
pub use coordinate::{
    coordinate, run_worker, ChaosKill, CoordinatorConfig, ProcessTransport, ThreadTransport,
    WorkerAssignment, WorkerHandle, WorkerStatus, WorkerTransport,
};
pub use metrics::FrontMetrics;
pub use pareto::{dominates, pareto_indices, ObjectiveKind, ParetoFront};
pub use report::{
    CacheSizeRecord, CampaignReport, CoordinatorRecord, JsonLinesSink, NullSink, PointRecord,
    ResultSink, SamplerRecord, SamplerRoundRecord, VerifyRecord, WarmCacheRecord, WaveRecord,
    SCHEMA_VERSION,
};
pub use sample::{SamplerConfig, SamplerPolicy};
pub use scenario::{Scenario, ScenarioGrid, SimSpec, WorkloadSpec};
pub use shard::{merge_reports, partition, ShardManifest, ShardMode};
pub use verify::VerifySummary;

/// The common imports for declaring and running campaigns.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignPlan};
    pub use crate::pareto::{ObjectiveKind, ParetoFront};
    pub use crate::report::{CampaignReport, JsonLinesSink, ResultSink};
    pub use crate::sample::{SamplerConfig, SamplerPolicy};
    pub use crate::scenario::{ScenarioGrid, SimSpec, WorkloadSpec};
    pub use crate::shard::{merge_reports, ShardManifest, ShardMode};
    pub use noc::workloads::WorkloadFamily;
}
