//! Multi-objective dominance and the Pareto front.
//!
//! Every objective is *minimized*. A point `a` **dominates** `b` when `a`
//! is no worse in every objective and strictly better in at least one
//! (Marcon et al.'s energy/timing trade-off generalized to an arbitrary
//! objective vector). The Pareto front is the set of offered points no
//! other offered point dominates; equal vectors do not dominate each
//! other, so exact ties all stay on the front — which is what makes the
//! front a pure *set* property, invariant under the order points arrive
//! in (campaign workers finish in nondeterministic order).

/// The metrics a campaign can fold into its objective vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ObjectiveKind {
    /// Total communication energy at the measurement load point, joules.
    EnergyJoules,
    /// Mean packet latency at the measurement load point, cycles.
    AvgLatencyCycles,
    /// Chip area of the floorplan, mm².
    AreaMm2,
    /// Synthesis wall-time, milliseconds. **Nondeterministic** — two runs
    /// of the same scenario measure different times, so fronts over this
    /// objective are not reproducible. Excluded from
    /// [`ObjectiveKind::DEFAULT`] for exactly that reason; opt in when
    /// exploring synthesis-effort trade-offs interactively.
    SynthTimeMs,
}

impl ObjectiveKind {
    /// The default campaign objective vector: the deterministic triple
    /// (energy, latency, area).
    pub const DEFAULT: [ObjectiveKind; 3] = [
        ObjectiveKind::EnergyJoules,
        ObjectiveKind::AvgLatencyCycles,
        ObjectiveKind::AreaMm2,
    ];

    /// Stable snake_case label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            ObjectiveKind::EnergyJoules => "energy_joules",
            ObjectiveKind::AvgLatencyCycles => "avg_latency_cycles",
            ObjectiveKind::AreaMm2 => "area_mm2",
            ObjectiveKind::SynthTimeMs => "synth_time_ms",
        }
    }

    /// The inverse of [`label`](Self::label), used when parsing reports.
    pub fn from_label(label: &str) -> Option<ObjectiveKind> {
        match label {
            "energy_joules" => Some(ObjectiveKind::EnergyJoules),
            "avg_latency_cycles" => Some(ObjectiveKind::AvgLatencyCycles),
            "area_mm2" => Some(ObjectiveKind::AreaMm2),
            "synth_time_ms" => Some(ObjectiveKind::SynthTimeMs),
            _ => None,
        }
    }

    /// The **fixed** hypervolume reference value for this objective — a
    /// generous worst-case bound, deliberately constant (never derived
    /// from observed data) so hypervolume is comparable across campaigns,
    /// shards and PRs. A front member at or beyond the reference in any
    /// coordinate simply contributes no volume.
    pub fn reference(self) -> f64 {
        match self {
            // Communication energy at a measurement point is pJ–nJ; 1 µJ
            // is orders of magnitude above any simulated design.
            ObjectiveKind::EnergyJoules => 1e-6,
            // The saturation cutoff stops ramps at a small multiple of
            // zero-load latency; 1000 cycles is far past any kept point.
            ObjectiveKind::AvgLatencyCycles => 1e3,
            // Reticle-scale chips are < 1000 mm².
            ObjectiveKind::AreaMm2 => 1e3,
            // 100 s of synthesis wall-time per point.
            ObjectiveKind::SynthTimeMs => 1e5,
        }
    }
}

/// `true` when `a` dominates `b` under minimization: `a[i] <= b[i]` for
/// every objective and `a[i] < b[i]` for at least one.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// use noc_explore::pareto::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no domination
/// assert!(!dominates(&[0.0, 9.0], &[1.0, 2.0])); // trade-off: incomparable
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// One non-dominated member of a [`ParetoFront`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontMember {
    /// Caller-chosen identity of the point (campaigns use the scenario id).
    pub index: usize,
    /// The point's objective vector.
    pub objectives: Vec<f64>,
}

/// An incrementally maintained Pareto front with dominance-based pruning:
/// offering a dominated point is a no-op, and offering a dominating point
/// evicts every member it dominates.
///
/// # Examples
///
/// ```
/// use noc_explore::pareto::ParetoFront;
///
/// let mut front = ParetoFront::new(2);
/// assert!(front.offer(0, vec![1.0, 5.0]));
/// assert!(front.offer(1, vec![5.0, 1.0])); // incomparable: both stay
/// assert!(!front.offer(2, vec![6.0, 2.0])); // dominated by point 1
/// assert!(front.offer(3, vec![0.5, 0.5])); // dominates both: they leave
/// assert_eq!(front.indices(), vec![3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    dims: usize,
    members: Vec<FrontMember>,
}

impl ParetoFront {
    /// An empty front over `dims`-dimensional objective vectors.
    pub fn new(dims: usize) -> Self {
        ParetoFront {
            dims,
            members: Vec::new(),
        }
    }

    /// Offers a point; returns whether it joined the front (i.e. no
    /// current member dominates it). Members the new point dominates are
    /// pruned.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-length or non-finite objective vector — a NaN
    /// breaks the transitivity dominance pruning relies on, so it is
    /// rejected loudly rather than silently corrupting the front.
    pub fn offer(&mut self, index: usize, objectives: Vec<f64>) -> bool {
        assert_eq!(objectives.len(), self.dims, "objective vector length");
        assert!(
            objectives.iter().all(|v| v.is_finite()),
            "non-finite objective for point {index}: {objectives:?}"
        );
        if self
            .members
            .iter()
            .any(|m| dominates(&m.objectives, &objectives))
        {
            return false;
        }
        self.members
            .retain(|m| !dominates(&objectives, &m.objectives));
        // Keep members sorted by index so the front reads in scenario
        // order regardless of offer order.
        let at = self.members.partition_point(|m| m.index < index);
        self.members.insert(at, FrontMember { index, objectives });
        true
    }

    /// The current non-dominated members, sorted by index.
    pub fn members(&self) -> &[FrontMember] {
        &self.members
    }

    /// The member indices, sorted ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.index).collect()
    }

    /// Number of members on the front.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no point has been offered (or all were pruned, which
    /// cannot happen: the first offer always joins).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Indices of the non-dominated vectors in `vectors`, sorted ascending —
/// the one-shot form of [`ParetoFront`].
pub fn pareto_indices(vectors: &[Vec<f64>]) -> Vec<usize> {
    let dims = vectors.first().map_or(0, Vec::len);
    let mut front = ParetoFront::new(dims);
    for (i, v) in vectors.iter().enumerate() {
        front.offer(i, v.clone());
    }
    front.indices()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_objective_front_is_the_minimum() {
        let vs: Vec<Vec<f64>> = [3.0, 1.0, 2.0, 1.0].iter().map(|&v| vec![v]).collect();
        // Both points tied at the minimum stay.
        assert_eq!(pareto_indices(&vs), vec![1, 3]);
    }

    #[test]
    fn equal_vectors_coexist() {
        let mut front = ParetoFront::new(2);
        assert!(front.offer(7, vec![1.0, 1.0]));
        assert!(front.offer(2, vec![1.0, 1.0]));
        assert_eq!(front.indices(), vec![2, 7]);
    }

    #[test]
    fn dominating_offer_evicts_members() {
        let mut front = ParetoFront::new(2);
        front.offer(0, vec![2.0, 2.0]);
        front.offer(1, vec![3.0, 1.0]);
        front.offer(2, vec![1.0, 1.0]);
        assert_eq!(front.indices(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "non-finite objective")]
    fn nan_is_rejected() {
        ParetoFront::new(1).offer(0, vec![f64::NAN]);
    }
}
