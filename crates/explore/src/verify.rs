//! Retro-verification of existing campaign reports.
//!
//! Reports written before schema v4 (and points whose campaign predates
//! the verify gate) carry no [`VerifyRecord`](crate::report::VerifyRecord).
//! [`Campaign::verify_report`]
//! fills the gap: it re-synthesizes each *synthesis key* the report's
//! points share — once, exactly as the campaign engine would — runs the
//! static deadlock verifier against the resulting model, and writes a
//! fresh verdict into every point. Synthesis is deterministic per grid,
//! so the re-synthesized architecture is the one the report's
//! measurements came from; the verdict is retroactively trustworthy.
//!
//! ```
//! use noc::workloads::WorkloadFamily;
//! use noc_explore::{Campaign, ScenarioGrid, WorkloadSpec};
//!
//! let campaign = Campaign::new(
//!     ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]),
//! );
//! let mut report = campaign.run();
//! // Strip the verdicts, as if the report had been written by a pre-v4 run.
//! for point in &mut report.points {
//!     point.verify = None;
//! }
//! let summary = campaign.verify_report(&mut report).unwrap();
//! assert_eq!((summary.verified, summary.failed.len()), (1, 0));
//! assert!(report.points[0].verify.as_ref().unwrap().deadlock_free);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

use noc::prelude::*;

use crate::campaign::{Campaign, SynthOutcome, CACHE_CAPACITY};
use crate::report::CampaignReport;

/// What [`Campaign::verify_report`] did: coverage counts plus the ids of
/// every point whose architecture failed verification. A fresh
/// [`VerifyRecord`](crate::report::VerifyRecord) lands in each verified
/// point; this summary is the aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifySummary {
    /// Points that now carry a verdict (fresh or refreshed).
    pub verified: usize,
    /// Points whose verdict proves deadlock freedom.
    pub passed: usize,
    /// Scenario ids whose architecture is **not** verified deadlock-free,
    /// ascending. Non-empty means the report records measurements of an
    /// unproven design.
    pub failed: Vec<usize>,
    /// Points skipped because their synthesis fails (no model exists to
    /// verify; such points already carry a synthesis error).
    pub skipped: usize,
    /// Distinct synthesis keys re-synthesized.
    pub synthesis_runs: usize,
}

impl VerifySummary {
    /// `true` when every point with a model verified deadlock-free.
    pub fn all_clear(&self) -> bool {
        self.failed.is_empty()
    }
}

impl fmt::Display for VerifySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points verified ({} deadlock-free, {} failed, {} skipped) over {} synthesis runs",
            self.verified,
            self.passed,
            self.failed.len(),
            self.skipped,
            self.synthesis_runs
        )
    }
}

impl Campaign {
    /// Verifies every point of `report` against this campaign's grid,
    /// writing a fresh [`VerifyRecord`](crate::report::VerifyRecord) into each (replacing any prior
    /// one) and returning the coverage summary.
    ///
    /// Each synthesis key is re-synthesized once, sequentially; points
    /// sharing a key share the verdict, exactly like a live campaign.
    /// Points whose synthesis fails keep `verify: None` and count as
    /// skipped.
    ///
    /// Fails without touching `report` when a point does not belong to
    /// this grid — an id beyond the grid, or a label that disagrees with
    /// the grid's scenario under the same id (the report came from a
    /// different campaign; verifying re-synthesized architectures against
    /// it would silently certify the wrong designs).
    pub fn verify_report(&self, report: &mut CampaignReport) -> Result<VerifySummary, String> {
        let scenarios = self.grid.enumerate();
        for point in &report.points {
            let scenario = scenarios.get(point.scenario_id).ok_or_else(|| {
                format!(
                    "point {} is outside this grid ({} scenarios)",
                    point.scenario_id,
                    scenarios.len()
                )
            })?;
            if scenario.label() != point.label {
                return Err(format!(
                    "point {} is \"{}\" in the report but \"{}\" in this grid — wrong campaign",
                    point.scenario_id,
                    point.label,
                    scenario.label()
                ));
            }
        }

        let match_cache = self
            .share_match_cache
            .then(|| SharedMatchCache::new(CACHE_CAPACITY));
        let placements = Mutex::new(HashMap::new());
        let mut artifacts: HashMap<String, SynthOutcome> = HashMap::new();
        let mut summary = VerifySummary::default();
        let t0 = Instant::now();
        let span = self.resolved_telemetry().map(|t| {
            t.span("verify.report")
                .field("points", report.points.len() as u64)
        });
        for point in &mut report.points {
            let scenario = &scenarios[point.scenario_id];
            let key = self.synthesis_key(scenario);
            let outcome = artifacts.entry(key).or_insert_with(|| {
                summary.synthesis_runs += 1;
                self.synthesize(scenario, match_cache.as_ref(), &placements)
            });
            match outcome {
                Ok(shared) => {
                    let verify = shared.verify.clone();
                    summary.verified += 1;
                    if verify.deadlock_free {
                        summary.passed += 1;
                    } else {
                        summary.failed.push(point.scenario_id);
                    }
                    point.verify = Some(verify);
                }
                Err(_) => summary.skipped += 1,
            }
        }
        drop(span);
        if let Some(t) = self.resolved_telemetry() {
            t.add("verify.report_points", summary.verified as u64);
            t.event(
                "verify.report",
                &[
                    ("passed", (summary.passed as u64).into()),
                    ("failed", (summary.failed.len() as u64).into()),
                    ("wall_ms", (t0.elapsed().as_secs_f64() * 1e3).into()),
                ],
            );
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioGrid, WorkloadSpec};
    use noc::workloads::WorkloadFamily;

    fn small_campaign() -> Campaign {
        Campaign::new(
            ScenarioGrid::new()
                .workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)])
                .synthesis_objectives([Objective::Links, Objective::Energy]),
        )
    }

    #[test]
    fn backfills_stripped_reports_and_matches_the_live_verdict() {
        let campaign = small_campaign();
        let live = campaign.run();
        let mut stripped = live.clone();
        for point in &mut stripped.points {
            point.verify = None;
        }

        let summary = campaign.verify_report(&mut stripped).unwrap();
        assert_eq!(summary.verified, 2);
        assert_eq!(summary.passed, 2);
        assert!(summary.all_clear());
        assert_eq!(summary.skipped, 0);
        assert_eq!(summary.synthesis_runs, 2);

        // Synthesis is deterministic: the retro verdict equals the live
        // one in everything but wall-time.
        for (retro, live) in stripped.points.iter().zip(&live.points) {
            let (r, l) = (
                retro.verify.as_ref().unwrap(),
                live.verify.as_ref().unwrap(),
            );
            assert_eq!(
                (
                    r.deadlock_free,
                    r.num_vcs,
                    r.cdg_vertices,
                    r.cdg_edges,
                    r.routes_checked
                ),
                (
                    l.deadlock_free,
                    l.num_vcs,
                    l.cdg_vertices,
                    l.cdg_edges,
                    l.routes_checked
                ),
                "point {}",
                retro.label
            );
            assert!(r.cycle.is_empty() && r.lint.is_empty());
        }
    }

    #[test]
    fn points_sharing_a_synthesis_key_share_one_run() {
        let campaign = Campaign::new(ScenarioGrid::smoke());
        let mut report = campaign.run();
        let summary = campaign.verify_report(&mut report).unwrap();
        assert_eq!(summary.verified, 12);
        // The smoke grid has 6 synthesis keys feeding 12 points.
        assert_eq!(summary.synthesis_runs, 6);
        assert!(summary.all_clear());
    }

    #[test]
    fn rejects_reports_from_a_different_grid() {
        let campaign = small_campaign();
        let mut report = campaign.run();
        report.points[1].label = "someone/else/entirely".into();
        let err = campaign.verify_report(&mut report).unwrap_err();
        assert!(err.contains("wrong campaign"), "{err}");
        // Untouched on failure.
        assert!(report.points[0].verify.is_some());

        let mut out_of_range = campaign.run();
        out_of_range.points[0].scenario_id = 99;
        let err = campaign.verify_report(&mut out_of_range).unwrap_err();
        assert!(err.contains("outside this grid"), "{err}");
    }

    #[test]
    fn summary_renders_counts() {
        let s = VerifySummary {
            verified: 3,
            passed: 2,
            failed: vec![7],
            skipped: 1,
            synthesis_runs: 2,
        };
        assert_eq!(
            s.to_string(),
            "3 points verified (2 deadlock-free, 1 failed, 1 skipped) over 2 synthesis runs"
        );
        assert!(!s.all_clear());
    }
}
