//! Adaptive budgeted scenario sampling: spend a fixed flow budget where
//! the Pareto front is still moving, instead of enumerating the full
//! cross-product grid.
//!
//! The paper's central argument is budget allocation — synthesis effort
//! should go where it buys energy/performance trade-off — and the related
//! mapping-exploration literature (Marcon et al., *Exploring NoC Mapping
//! Strategies*) shows budgeted heuristic search matching exhaustive
//! sweeps at a fraction of the evaluations. This module applies that idea
//! to campaigns: [`Campaign::run_sampled`] runs a campaign in **rounds**
//! under an explicit budget, each round a [`CampaignPlan`](crate::CampaignPlan) chosen by a
//! planner policy and folded into the accumulated [`CampaignReport`]
//! before the next round is planned.
//!
//! # Planner policies
//!
//! Both policies plan over **arms**: `(axis, value)` pairs of the grid's
//! multi-valued axes (see [`Scenario::axis_values`]) — `workload=fig5`,
//! `sim=ramp`, … Pulling an arm evaluates one not-yet-evaluated scenario
//! carrying that value. Single-valued axes contribute no arms (every
//! scenario would match); a grid with no multi-valued axis degrades to
//! one `grid=all` arm, i.e. uniform random sampling.
//!
//! * [`SamplerPolicy::Bandit`] — ε-greedy multi-armed bandit. Each
//!   round pulls `round_flows` arms: unpulled arms first (optimistic
//!   initialization), then with probability ε a uniformly random arm
//!   (exploration), otherwise the arm with the best mean reward
//!   (exploitation). The **reward** of a round is the hypervolume gain of
//!   the folded report over the previous round, attributed to the pulled
//!   arms in proportion to their pulls — arms whose scenarios stopped
//!   improving the front stop being pulled.
//! * [`SamplerPolicy::Halving`] — successive halving. All arms start
//!   active; each stage spreads its share of the remaining budget evenly
//!   across active arms, then keeps the better half by **front hit
//!   rate** (fraction of an arm's evaluated scenarios on the current
//!   front) and drops the rest. Surviving arms — the axis regions whose
//!   points keep landing on the front — receive the remaining budget as
//!   denser sweeps of their sizes and seeds. If every active arm runs out
//!   of unevaluated scenarios, eliminated arms are revived rather than
//!   stranding budget.
//!
//! # Determinism
//!
//! All randomness flows through one [`StdRng`] seeded from
//! [`SamplerConfig::seed`] (the workspace's vendored deterministic
//! xoshiro shim), arms are built in grid-enumeration order, and ties
//! break toward the lower arm index — so a given (grid, budget, seed,
//! policy) evaluates the same scenario sequence on every run and at every
//! thread count. `tests/explore_sample.rs` locks this in.
//!
//! # Re-planning is resuming
//!
//! A round's plan is literally [`Campaign::plan_resume`] against the
//! accumulated report, restricted to the round's chosen ids
//! ([`CampaignPlan::restrict`](crate::CampaignPlan::restrict)): the same machinery that lets a killed
//! campaign resume also carries every prior round's records into the next
//! fold. A sampled report is therefore a normal partial
//! [`CampaignReport`] — resumable to the full grid, mergeable with other
//! reports — plus a [`SamplerRecord`] of per-round provenance (arms
//! pulled, hypervolume trajectory, which is monotone non-decreasing
//! because records only accumulate).

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use noc::prelude::SharedMatchCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::campaign::{Campaign, SynthOutcome};
use crate::report::{CampaignReport, PointRecord, ResultSink, SamplerRecord, SamplerRoundRecord};
use crate::scenario::Scenario;

/// The planner policy of a sampling campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerPolicy {
    /// ε-greedy multi-armed bandit over grid-axis arms, rewarded by
    /// per-round hypervolume gain.
    Bandit {
        /// Exploration probability in `[0, 1]`: chance a pull picks a
        /// uniformly random arm instead of the best-mean one.
        epsilon: f64,
    },
    /// Successive halving: evenly funded stages, the better half of the
    /// arms (by front hit rate) promoted to the next, denser stage.
    Halving,
}

impl SamplerPolicy {
    /// The default bandit (ε = 0.3).
    pub const DEFAULT_BANDIT: SamplerPolicy = SamplerPolicy::Bandit { epsilon: 0.3 };

    /// Stable CLI / report label (`"bandit"` / `"halving"`).
    pub fn label(&self) -> &'static str {
        match self {
            SamplerPolicy::Bandit { .. } => "bandit",
            SamplerPolicy::Halving => "halving",
        }
    }

    /// Parses [`label`](Self::label) back (bandit at its default ε).
    pub fn from_label(label: &str) -> Option<SamplerPolicy> {
        match label {
            "bandit" => Some(SamplerPolicy::DEFAULT_BANDIT),
            "halving" => Some(SamplerPolicy::Halving),
            _ => None,
        }
    }
}

/// Configuration of [`Campaign::run_sampled`].
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Maximum scenario points to evaluate (failed points count — they
    /// consumed their flow). The sampler stops early when the grid runs
    /// out of unevaluated points.
    pub budget: usize,
    /// Planner policy.
    pub policy: SamplerPolicy,
    /// Seed of the deterministic scenario sequence.
    pub seed: u64,
    /// Bandit points per round; `0` (the default) auto-sizes to
    /// `max(2, budget / 4)` — four re-planning opportunities per budget.
    /// Halving ignores it (stage sizes derive from arm count and
    /// remaining budget).
    pub round_flows: usize,
}

impl SamplerConfig {
    /// A bandit sampler with the given budget, seed 1, auto round size.
    pub fn new(budget: usize) -> Self {
        SamplerConfig {
            budget,
            policy: SamplerPolicy::DEFAULT_BANDIT,
            seed: 1,
            round_flows: 0,
        }
    }

    /// Replaces the policy.
    #[must_use]
    pub fn policy(mut self, policy: SamplerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the bandit round size (`0` = auto).
    #[must_use]
    pub fn round_flows(mut self, flows: usize) -> Self {
        self.round_flows = flows;
        self
    }

    fn effective_round_flows(&self) -> usize {
        match self.round_flows {
            0 => (self.budget / 4).max(2),
            n => n,
        }
    }
}

/// One pullable arm: every scenario carrying one `(axis, value)` pair.
struct Arm {
    /// `axis=value`, the label reported in [`SamplerRoundRecord::arms`].
    label: String,
    /// Grid ids of the scenarios carrying this value, ascending.
    scenario_ids: Vec<usize>,
    /// Times this arm was pulled.
    pulls: usize,
    /// Cumulative hypervolume-gain reward (bandit only).
    reward: f64,
}

impl Arm {
    fn mean_reward(&self) -> f64 {
        if self.pulls == 0 {
            0.0
        } else {
            self.reward / self.pulls as f64
        }
    }

    /// Ids not yet evaluated and not already chosen this round.
    fn candidates(&self, evaluated: &BTreeSet<usize>, chosen: &BTreeSet<usize>) -> Vec<usize> {
        self.scenario_ids
            .iter()
            .copied()
            .filter(|id| !evaluated.contains(id) && !chosen.contains(id))
            .collect()
    }
}

/// Arms of the grid: one per value of every multi-valued axis, in axis
/// then first-appearance order; a single `grid=all` arm when no axis has
/// two values.
fn build_arms(scenarios: &[Scenario]) -> Vec<Arm> {
    let axis_count = scenarios.first().map_or(0, |s| s.axis_values().len());
    let mut arms: Vec<Arm> = Vec::new();
    for axis in 0..axis_count {
        let mut values: Vec<Arm> = Vec::new();
        for scenario in scenarios {
            let (name, value) = scenario.axis_values()[axis].clone();
            let label = format!("{name}={value}");
            match values.iter_mut().find(|a| a.label == label) {
                Some(arm) => arm.scenario_ids.push(scenario.id),
                None => values.push(Arm {
                    label,
                    scenario_ids: vec![scenario.id],
                    pulls: 0,
                    reward: 0.0,
                }),
            }
        }
        if values.len() > 1 {
            arms.extend(values);
        }
    }
    if arms.is_empty() {
        arms.push(Arm {
            label: "grid=all".to_string(),
            scenario_ids: scenarios.iter().map(|s| s.id).collect(),
            pulls: 0,
            reward: 0.0,
        });
    }
    arms
}

/// Forwards completed points to the real sink but swallows the per-round
/// `finish` calls — the sampler finishes once, with the final report.
struct RoundSink<'a>(&'a mut dyn ResultSink);

impl ResultSink for RoundSink<'_> {
    fn point(&mut self, record: &PointRecord) {
        self.0.point(record);
    }
}

/// Running totals the per-round reports are folded into. (The match
/// cache needs no totaling: one cache lives across every round, so the
/// last round's report already carries its cumulative per-size rows.)
#[derive(Default)]
struct Totals {
    flows_synthesized: usize,
    synthesis_reused: usize,
}

impl Totals {
    fn absorb(&mut self, report: &CampaignReport) {
        self.flows_synthesized += report.flows_synthesized;
        self.synthesis_reused += report.synthesis_reused;
    }
}

/// The mutable state one sampling campaign threads through its rounds.
/// `artifacts` and `match_cache` live for the whole sampled campaign, so
/// a synthesis key evaluated in one round is never re-synthesized in a
/// later one and VF2 enumerations warm across rounds — budgeted runs
/// keep the exhaustive engine's once-per-key guarantee.
struct Sampler<'a> {
    campaign: &'a Campaign,
    config: &'a SamplerConfig,
    arms: Vec<Arm>,
    rng: StdRng,
    evaluated: BTreeSet<usize>,
    accumulated: Option<CampaignReport>,
    rounds: Vec<SamplerRoundRecord>,
    totals: Totals,
    artifacts: HashMap<String, SynthOutcome>,
    match_cache: Option<SharedMatchCache>,
}

impl Sampler<'_> {
    fn budget_left(&self) -> usize {
        self.config.budget.saturating_sub(self.evaluated.len())
    }

    /// Pulls `arm_index`, choosing one unevaluated scenario of that arm
    /// uniformly at random; returns the chosen id (the caller guarantees
    /// a candidate exists).
    fn pull(&mut self, arm_index: usize, chosen: &mut BTreeSet<usize>, pulled: &mut Vec<String>) {
        let candidates = self.arms[arm_index].candidates(&self.evaluated, chosen);
        let id = candidates[self.rng.gen_range(0..candidates.len())];
        chosen.insert(id);
        pulled.push(self.arms[arm_index].label.clone());
        self.arms[arm_index].pulls += 1;
    }

    /// Executes one round over `chosen`: plan the remaining grid against
    /// the accumulated report, restrict to the round, run, fold, record
    /// provenance. Returns the hypervolume gain.
    fn run_round(
        &mut self,
        chosen: &BTreeSet<usize>,
        pulled: Vec<String>,
        sink: &mut dyn ResultSink,
    ) -> f64 {
        let plan = match &self.accumulated {
            None => self.campaign.plan(),
            Some(prior) => self
                .campaign
                .plan_resume(prior)
                .expect("accumulated report shares this campaign's objectives"),
        }
        .restrict(chosen);
        let mut round_sink = RoundSink(sink);
        let report = self.campaign.run_plan_shared(
            plan,
            &mut round_sink,
            &mut self.artifacts,
            self.match_cache.as_ref(),
        );
        let hv_before = self.accumulated.as_ref().map_or(0.0, |r| r.hypervolume);
        let gain = report.hypervolume - hv_before;
        self.totals.absorb(&report);
        self.evaluated.extend(chosen.iter().copied());
        self.rounds.push(SamplerRoundRecord {
            round: self.rounds.len(),
            flows: chosen.len(),
            hypervolume: report.hypervolume,
            arms: pulled,
        });
        self.accumulated = Some(report);
        gain
    }

    /// ε-greedy bandit rounds until the budget (or grid) is exhausted.
    fn run_bandit(&mut self, epsilon: f64, sink: &mut dyn ResultSink) {
        let round_flows = self.config.effective_round_flows();
        loop {
            let want = round_flows.min(self.budget_left());
            if want == 0 {
                break;
            }
            let mut chosen: BTreeSet<usize> = BTreeSet::new();
            let mut pulled: Vec<String> = Vec::new();
            let mut pulls_of: Vec<usize> = vec![0; self.arms.len()];
            for _ in 0..want {
                let available: Vec<usize> = (0..self.arms.len())
                    .filter(|&i| !self.arms[i].candidates(&self.evaluated, &chosen).is_empty())
                    .collect();
                let Some(&first) = available.first() else {
                    break; // grid exhausted
                };
                let arm = match available.iter().find(|&&i| self.arms[i].pulls == 0) {
                    // Optimistic initialization: try every arm once.
                    Some(&unpulled) => unpulled,
                    None if self.rng.gen_bool(epsilon) => {
                        available[self.rng.gen_range(0..available.len())]
                    }
                    None => available.iter().copied().fold(first, |best, i| {
                        if self.arms[i].mean_reward() > self.arms[best].mean_reward() {
                            i
                        } else {
                            best
                        }
                    }),
                };
                self.pull(arm, &mut chosen, &mut pulled);
                pulls_of[arm] += 1;
            }
            if chosen.is_empty() {
                break;
            }
            let flows = chosen.len();
            let gain = self.run_round(&chosen, pulled, sink);
            // Attribute the round's hypervolume gain to the pulled arms,
            // proportional to their pulls.
            for (arm, &pulls) in self.arms.iter_mut().zip(&pulls_of) {
                if pulls > 0 {
                    arm.reward += gain * pulls as f64 / flows as f64;
                }
            }
        }
    }

    /// An arm's front hit rate: evaluated members on the current front /
    /// evaluated members (0 when none evaluated).
    fn front_hit_rate(&self, arm: &Arm) -> f64 {
        let Some(report) = &self.accumulated else {
            return 0.0;
        };
        let mut evaluated = 0usize;
        let mut on_front = 0usize;
        for &id in &arm.scenario_ids {
            if let Some(point) = report.point(id) {
                evaluated += 1;
                if point.on_front {
                    on_front += 1;
                }
            }
        }
        if evaluated == 0 {
            0.0
        } else {
            on_front as f64 / evaluated as f64
        }
    }

    /// Successive-halving stages until the budget (or grid) is exhausted.
    fn run_halving(&mut self, sink: &mut dyn ResultSink) {
        let mut active: Vec<usize> = (0..self.arms.len()).collect();
        // ceil(log2(arms)) halving stages plus a final exploitation stage
        // on the survivors.
        let total_stages = (self.arms.len().next_power_of_two().trailing_zeros() as usize) + 1;
        let mut stage = 0usize;
        while self.budget_left() > 0 {
            let stages_left = total_stages.saturating_sub(stage).max(1);
            let stage_budget = self
                .budget_left()
                .div_ceil(stages_left)
                .max(active.len())
                .min(self.budget_left());
            let mut chosen: BTreeSet<usize> = BTreeSet::new();
            let mut pulled: Vec<String> = Vec::new();
            // Round-robin the stage budget across active arms.
            'fill: loop {
                let mut progressed = false;
                for &arm in &active {
                    if chosen.len() >= stage_budget {
                        break 'fill;
                    }
                    if !self.arms[arm]
                        .candidates(&self.evaluated, &chosen)
                        .is_empty()
                    {
                        self.pull(arm, &mut chosen, &mut pulled);
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            if chosen.is_empty() {
                // Every active arm is exhausted: revive eliminated arms
                // that still hold unevaluated scenarios, or stop.
                let revivable: Vec<usize> = (0..self.arms.len())
                    .filter(|&i| {
                        !self.arms[i]
                            .candidates(&self.evaluated, &BTreeSet::new())
                            .is_empty()
                    })
                    .collect();
                if revivable.is_empty() || revivable == active {
                    break;
                }
                active = revivable;
                continue;
            }
            self.run_round(&chosen, pulled, sink);
            // Promote the better half by front hit rate (stable: ties keep
            // the lower arm index, the original order).
            if active.len() > 1 {
                let mut scored: Vec<(usize, f64)> = active
                    .iter()
                    .map(|&i| (i, self.front_hit_rate(&self.arms[i])))
                    .collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("hit rates are finite")
                        .then(a.0.cmp(&b.0))
                });
                scored.truncate(active.len().div_ceil(2));
                active = scored.into_iter().map(|(i, _)| i).collect();
                active.sort_unstable();
            }
            stage += 1;
        }
    }
}

impl Campaign {
    /// Runs an adaptive **budgeted** sampling campaign: at most
    /// `config.budget` scenario points of the grid are evaluated, chosen
    /// round-by-round by `config.policy` (see the [module docs](self)),
    /// and folded into one report whose [`sampler`](CampaignReport::sampler)
    /// field records the per-round provenance.
    ///
    /// The returned report is an ordinary partial campaign report:
    /// [`resume_from`](Campaign::resume_from) completes it to the full
    /// grid, [`merge_reports`](crate::merge_reports) pools it with other
    /// shards/samples of the same grid.
    ///
    /// # Panics
    ///
    /// Panics on a zero budget or an empty grid — a sampler with nothing
    /// to spend (or on) is a caller bug, not a degenerate report.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_explore::{Campaign, SamplerConfig, ScenarioGrid};
    ///
    /// let campaign = Campaign::new(ScenarioGrid::smoke());
    /// let sampled = campaign.run_sampled(&SamplerConfig::new(4));
    /// let provenance = sampled.sampler.as_ref().unwrap();
    /// assert_eq!(sampled.points.len(), 4);
    /// assert_eq!(provenance.flows_spent, 4);
    /// assert!(sampled.hypervolume > 0.0);
    /// // Same (grid, budget, seed, policy) ⇒ same scenario sequence.
    /// let again = campaign.run_sampled(&SamplerConfig::new(4));
    /// assert_eq!(sampled.front, again.front);
    /// ```
    pub fn run_sampled(&self, config: &SamplerConfig) -> CampaignReport {
        self.run_sampled_with_sink(config, &mut crate::report::NullSink)
    }

    /// [`run_sampled`](Self::run_sampled), streaming each evaluated point
    /// into `sink` as its round completes (`sink.finish` fires once, with
    /// the final report).
    pub fn run_sampled_with_sink(
        &self,
        config: &SamplerConfig,
        sink: &mut dyn ResultSink,
    ) -> CampaignReport {
        assert!(config.budget > 0, "sampling budget must be positive");
        let scenarios = self.grid.enumerate();
        assert!(!scenarios.is_empty(), "cannot sample an empty grid");
        let t0 = Instant::now();
        let mut sampler = Sampler {
            campaign: self,
            config,
            arms: build_arms(&scenarios),
            rng: StdRng::seed_from_u64(config.seed),
            evaluated: BTreeSet::new(),
            accumulated: None,
            rounds: Vec::new(),
            totals: Totals::default(),
            artifacts: HashMap::new(),
            match_cache: self
                .share_match_cache
                .then(|| SharedMatchCache::new(crate::campaign::CACHE_CAPACITY)),
        };
        match config.policy {
            SamplerPolicy::Bandit { epsilon } => {
                assert!(
                    (0.0..=1.0).contains(&epsilon),
                    "epsilon must be in [0, 1], got {epsilon}"
                );
                sampler.run_bandit(epsilon, sink)
            }
            SamplerPolicy::Halving => sampler.run_halving(sink),
        }
        let Sampler {
            evaluated,
            accumulated,
            rounds,
            totals,
            ..
        } = sampler;
        let mut report = accumulated.expect("a positive budget runs at least one round");
        // The per-round reports carried prior rounds' records; the final
        // report is one sampled campaign, so provenance is the totals —
        // except `match_cache`, whose last-round rows are already
        // cumulative (one cache served every round).
        report.flows_synthesized = totals.flows_synthesized;
        report.synthesis_reused = totals.synthesis_reused;
        report.carried_points = 0;
        report.threads = self.resolve_threads(evaluated.len().max(1));
        report.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        report.sampler = Some(SamplerRecord {
            policy: config.policy.label().to_string(),
            seed: config.seed,
            budget: config.budget,
            flows_spent: evaluated.len(),
            grid_len: scenarios.len(),
            rounds,
        });
        sink.finish(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;

    fn smoke() -> Campaign {
        Campaign::new(ScenarioGrid::smoke())
    }

    #[test]
    fn arms_cover_multi_valued_axes_only() {
        let arms = build_arms(&ScenarioGrid::smoke().enumerate());
        // Smoke grid: 3 workloads × 2 objectives × 2 sims are
        // multi-valued; engine, technology and floorplan seed are not.
        let labels: Vec<&str> = arms.iter().map(|a| a.label.as_str()).collect();
        assert_eq!(labels.len(), 7, "{labels:?}");
        assert!(labels.contains(&"workload=fig5"));
        assert!(labels.contains(&"synthesis_objective=Energy"));
        assert!(labels.contains(&"sim=ramp"));
        assert!(!labels.iter().any(|l| l.starts_with("engine=")));
        // Every arm indexes real grid ids; axis arms partition the grid.
        let workload_ids: usize = arms
            .iter()
            .filter(|a| a.label.starts_with("workload="))
            .map(|a| a.scenario_ids.len())
            .sum();
        assert_eq!(workload_ids, 12);
    }

    #[test]
    fn single_valued_grid_degrades_to_one_arm() {
        use crate::scenario::WorkloadSpec;
        use noc::workloads::WorkloadFamily;
        let grid = ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]);
        let arms = build_arms(&grid.enumerate());
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].label, "grid=all");
    }

    #[test]
    fn budget_caps_the_evaluated_points() {
        for policy in [SamplerPolicy::DEFAULT_BANDIT, SamplerPolicy::Halving] {
            let report = smoke().run_sampled(&SamplerConfig::new(5).policy(policy));
            assert_eq!(report.points.len(), 5, "{}", policy.label());
            let s = report.sampler.as_ref().unwrap();
            assert_eq!(s.flows_spent, 5);
            assert_eq!(s.grid_len, 12);
            assert_eq!(s.rounds.iter().map(|r| r.flows).sum::<usize>(), 5);
            assert_eq!(s.policy, policy.label());
        }
    }

    #[test]
    fn budget_beyond_grid_evaluates_everything_once() {
        let report = smoke().run_sampled(&SamplerConfig::new(100));
        assert_eq!(report.points.len(), 12);
        assert_eq!(report.sampler.as_ref().unwrap().flows_spent, 12);
        // And matches the exhaustive campaign's front exactly.
        assert_eq!(report.front, smoke().run().front);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_is_rejected() {
        smoke().run_sampled(&SamplerConfig::new(0));
    }
}
