//! The distributed-campaign coordinator: deal scenario slices to worker
//! processes, watch their artifacts land, re-deal what stragglers leave
//! unfinished, and fold everything into the single-shot front.
//!
//! [Sharding](crate::shard) made campaigns *partitionable* — stable
//! scenario ids, disjoint [`ShardManifest`](crate::ShardManifest) slices,
//! [`merge_reports`](crate::merge_reports()) — but actually dealing slices
//! to machines, noticing a dead or wedged worker and re-running exactly
//! its unfinished points was still an operator's shell loop. This module
//! closes that loop:
//!
//! * [`coordinate`] runs **waves**: it splits the outstanding scenario
//!   ids across `workers` assignments, launches each through a pluggable
//!   [`WorkerTransport`], and waits for their artifacts (a JSON-Lines
//!   stream plus a final report, both plain files in a work directory).
//! * A worker that exits without a complete report — or blows the
//!   per-wave **straggler deadline** and is killed — is *salvaged*: its
//!   flushed stream lines are recovered with
//!   [`CampaignReport::from_json_lines`], and only the ids **not** in the
//!   stream are re-dealt to the next wave. Nothing is ever re-run twice
//!   because a shard report says exactly which ids completed.
//! * The wave loop ends when no ids remain; the collected reports (full
//!   and salvaged) fold through [`merge_reports`](crate::merge_reports()),
//!   which — by the front's permutation invariance — reproduces the
//!   single-shot front exactly (`explore coordinate --smoke` asserts this
//!   in CI, with a worker killed mid-run).
//!
//! Underneath, the coordinator keeps one **persistent warm-start match
//! cache**: every worker is pointed at the cache file
//! ([`SharedMatchCache::warm_start`]), each completed worker saves its
//! grown cache next to its report, and the coordinator
//! [absorbs](SharedMatchCache::absorb) those into the file between waves
//! — so a re-dealt worker (and every later run) starts warm, and the
//! merged report's `match_cache` rows carry aggregate
//! [`warm_hits`](crate::report::CacheSizeRecord::warm_hits).
//!
//! Two transports ship: [`ProcessTransport`] spawns real OS processes
//! (the `explore worker` CLI subcommand — kill-able, crash-isolated),
//! and [`ThreadTransport`] runs workers as in-process threads (no
//! process spawning; used by tests, examples and doctests). A fleet
//! backend (SSH, a job queue, containers) slots in by implementing
//! [`WorkerTransport`] — the coordinator only ever watches the
//! filesystem, so anything that eventually materializes the artifact
//! files works.
//!
//! ```
//! use noc::workloads::WorkloadFamily;
//! use noc_explore::coordinate::{coordinate, CoordinatorConfig, ThreadTransport};
//! use noc_explore::{Campaign, ScenarioGrid, WorkloadSpec};
//!
//! let campaign = Campaign::new(
//!     ScenarioGrid::new().workloads([WorkloadSpec::fixed(WorkloadFamily::Fig5)]),
//! );
//! let work_dir = std::env::temp_dir().join(format!("coord_doc_{}", std::process::id()));
//! let config = CoordinatorConfig::new(2).work_dir(&work_dir);
//! let mut transport = ThreadTransport::new(campaign.clone());
//! let report = coordinate(&campaign, &config, &mut transport).unwrap();
//! assert_eq!(report.points.len(), 1);
//! assert_eq!(report.coordinator.as_ref().unwrap().waves.len(), 1);
//! # std::fs::remove_dir_all(&work_dir).ok();
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use noc::prelude::SharedMatchCache;
use noc_telemetry::Telemetry;

use crate::campaign::Campaign;
use crate::report::{
    CampaignReport, CoordinatorRecord, JsonLinesSink, WarmCacheRecord, WaveRecord,
};
use crate::shard::merge_reports;

pub use crate::campaign::CACHE_CAPACITY;

/// Everything a worker needs to run its slice: which scenario ids, where
/// to stream completed points, where to put the final report, and the
/// optional warm-start cache plumbing. Transports turn this into a
/// process/thread/job; [`run_worker`] executes it.
#[derive(Debug, Clone)]
pub struct WorkerAssignment {
    /// Globally unique worker ordinal (across waves) — worker `k` of the
    /// whole coordination, not of its wave.
    pub ordinal: usize,
    /// The wave this assignment belongs to.
    pub wave: usize,
    /// Scenario ids to evaluate, ascending.
    pub ids: Vec<usize>,
    /// Where the worker streams each completed point as JSON Lines
    /// (flushed per record — the salvage artifact).
    pub stream_path: PathBuf,
    /// Where the worker writes its final report (atomically: the
    /// coordinator treats this file's existence as completion).
    pub report_path: PathBuf,
    /// Cache file to warm-start from, if the coordination persists one.
    pub cache_in: Option<PathBuf>,
    /// Where the worker saves its grown cache for the coordinator to
    /// absorb.
    pub cache_out: Option<PathBuf>,
    /// Fault injection: sleep this long after streaming each point,
    /// simulating a slow machine (`0` = none). Set by
    /// [`ChaosKill::stall_ms`] so an injected kill deterministically
    /// lands mid-stream instead of racing a fast worker to the finish.
    pub stall_per_point_ms: u64,
}

impl WorkerAssignment {
    /// The ids as a comma-separated list (`"0,3,5"`) — the CLI wire form
    /// parsed by `explore worker --ids`.
    pub fn ids_csv(&self) -> String {
        self.ids
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// What a [`WorkerHandle`] reports when polled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Still working (or at least, not yet observed to have stopped).
    Running,
    /// The worker stopped — successfully or not; the coordinator decides
    /// by reading the artifacts, never the exit status.
    Exited,
}

/// A launched worker, as much of it as the coordinator needs: poll
/// whether it stopped, and kill it when it blows the deadline.
pub trait WorkerHandle: Send {
    /// Non-blocking liveness poll.
    fn status(&mut self) -> WorkerStatus;

    /// Terminate the worker (used on stragglers and for fault injection).
    /// Transports that cannot kill (e.g. threads) abandon instead: the
    /// coordinator stops reading the worker's artifacts either way.
    fn kill(&mut self);
}

/// Launches workers. Implement this to put workers wherever compute
/// lives — local processes ([`ProcessTransport`]), in-process threads
/// ([`ThreadTransport`]), or a remote fleet (SSH/job-queue/container
/// backends): the coordinator only watches `assignment`'s artifact
/// paths, so a transport merely has to make those files appear.
pub trait WorkerTransport {
    /// Starts one worker on `assignment`. A launch failure is fatal to
    /// the coordination (it means the fleet itself is broken, not one
    /// straggler).
    fn launch(&mut self, assignment: &WorkerAssignment) -> Result<Box<dyn WorkerHandle>, String>;
}

/// Spawns each worker as a real OS process: `program` + fixed
/// `base_args` + the assignment rendered as `worker` subcommand flags
/// (`worker --ids … --stream-out … --out … [--cache-in … --cache-out …]`).
/// This is what `explore coordinate` uses, pointing the program at its
/// own binary — crash isolation and a real `kill` for stragglers.
#[derive(Debug)]
pub struct ProcessTransport {
    program: PathBuf,
    base_args: Vec<String>,
}

impl ProcessTransport {
    /// A transport launching `program` with `base_args` (grid/thread
    /// flags shared by every worker) before the per-assignment flags.
    pub fn new(program: impl Into<PathBuf>, base_args: Vec<String>) -> Self {
        ProcessTransport {
            program: program.into(),
            base_args,
        }
    }
}

impl WorkerTransport for ProcessTransport {
    fn launch(&mut self, assignment: &WorkerAssignment) -> Result<Box<dyn WorkerHandle>, String> {
        let mut command = std::process::Command::new(&self.program);
        command
            .arg("worker")
            .args(&self.base_args)
            .arg("--ids")
            .arg(assignment.ids_csv())
            .arg("--stream-out")
            .arg(&assignment.stream_path)
            .arg("--out")
            .arg(&assignment.report_path);
        if let Some(cache_in) = &assignment.cache_in {
            command.arg("--cache-in").arg(cache_in);
        }
        if let Some(cache_out) = &assignment.cache_out {
            command.arg("--cache-out").arg(cache_out);
        }
        if assignment.stall_per_point_ms > 0 {
            command
                .arg("--stall-ms")
                .arg(assignment.stall_per_point_ms.to_string());
        }
        // Worker stderr goes to a per-worker log next to its artifacts —
        // when a whole wave dies before streaming a point, these logs
        // are the only diagnosis trail.
        let log = std::fs::File::create(assignment.report_path.with_extension("log"))
            .map(std::process::Stdio::from)
            .unwrap_or_else(|_| std::process::Stdio::null());
        let child = command
            .stdout(std::process::Stdio::null())
            .stderr(log)
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", self.program.display()))?;
        Ok(Box::new(ProcessHandle { child }))
    }
}

#[derive(Debug)]
struct ProcessHandle {
    child: std::process::Child,
}

impl WorkerHandle for ProcessHandle {
    fn status(&mut self) -> WorkerStatus {
        match self.child.try_wait() {
            Ok(None) => WorkerStatus::Running,
            // An errored wait means the child is gone too.
            Ok(Some(_)) | Err(_) => WorkerStatus::Exited,
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait(); // reap; never blocks after SIGKILL
    }
}

/// Runs each worker as an in-process thread executing [`run_worker`] on a
/// clone of the campaign. No processes, no second binary — the transport
/// for tests, examples and single-machine runs that just want the
/// re-dealing loop. `kill` abandons the thread (threads cannot be
/// killed); the coordinator stops reading its artifacts, and per-wave
/// artifact names keep an abandoned straggler from clobbering its
/// replacement.
#[derive(Debug)]
pub struct ThreadTransport {
    campaign: Campaign,
}

impl ThreadTransport {
    /// A transport running workers for `campaign` (the coordinator's
    /// campaign — same grid, same objectives).
    pub fn new(campaign: Campaign) -> Self {
        ThreadTransport { campaign }
    }
}

impl WorkerTransport for ThreadTransport {
    fn launch(&mut self, assignment: &WorkerAssignment) -> Result<Box<dyn WorkerHandle>, String> {
        let campaign = self.campaign.clone();
        let assignment = assignment.clone();
        let thread = std::thread::spawn(move || {
            let _ = run_worker(&campaign, &assignment);
        });
        Ok(Box::new(ThreadHandle {
            thread: Some(thread),
        }))
    }
}

#[derive(Debug)]
struct ThreadHandle {
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WorkerHandle for ThreadHandle {
    fn status(&mut self) -> WorkerStatus {
        match &self.thread {
            Some(thread) if !thread.is_finished() => WorkerStatus::Running,
            _ => WorkerStatus::Exited,
        }
    }

    fn kill(&mut self) {
        // Threads cannot be killed; drop the handle and abandon it.
        self.thread.take();
    }
}

/// Executes one [`WorkerAssignment`] to completion — the worker half of
/// the protocol, shared by [`ThreadTransport`] and the `explore worker`
/// CLI subcommand:
///
/// 1. warm-start the match cache from `cache_in` (missing file ⇒ cold;
///    corrupt file ⇒ cold with the reason recorded in the report's
///    `warm_cache.degraded`),
/// 2. plan the campaign restricted to exactly the assigned ids,
/// 3. run it, streaming every completed point to `stream_path` (flushed
///    per record, so a kill leaves a salvageable JSON-Lines stream),
/// 4. save the grown cache to `cache_out`,
/// 5. write the report to `report_path` via a temp-file rename, so the
///    coordinator never observes a half-written report.
pub fn run_worker(
    campaign: &Campaign,
    assignment: &WorkerAssignment,
) -> Result<CampaignReport, String> {
    let warm = assignment
        .cache_in
        .as_ref()
        .map(|path| SharedMatchCache::warm_start(path, CACHE_CAPACITY));
    let cache = warm
        .as_ref()
        .map(|w| w.cache.clone())
        .unwrap_or_else(|| SharedMatchCache::new(CACHE_CAPACITY));

    let ids: BTreeSet<usize> = assignment.ids.iter().copied().collect();
    let plan = campaign.plan().restrict(&ids);
    let stream = std::fs::File::create(&assignment.stream_path)
        .map_err(|e| format!("cannot create {}: {e}", assignment.stream_path.display()))?;
    let mut sink = StallingSink {
        inner: JsonLinesSink::new(stream, campaign.objectives.clone()),
        stall: Duration::from_millis(assignment.stall_per_point_ms),
    };
    let mut report = campaign.run_plan_with_cache(plan, &mut sink, &cache);

    if let Some(cache_out) = &assignment.cache_out {
        cache
            .save_to(cache_out)
            .map_err(|e| format!("cannot save cache {}: {e}", cache_out.display()))?;
    }
    if let (Some(cache_in), Some(warm)) = (&assignment.cache_in, &warm) {
        report.warm_cache = Some(WarmCacheRecord {
            path: cache_in.display().to_string(),
            loaded_graphs: warm.loaded_graphs,
            saved_graphs: cache.graph_count(),
            degraded: warm.degraded.clone(),
        });
    }

    // Report presence signals completion: write-then-rename so a kill
    // mid-write can only ever leave a stale temp file behind.
    let tmp = assignment.report_path.with_extension("json.tmp");
    std::fs::write(&tmp, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &assignment.report_path)
        .map_err(|e| format!("cannot move report into place: {e}"))?;
    Ok(report)
}

/// Fault injection for CI and tests: kill the worker with this global
/// [`ordinal`](WorkerAssignment::ordinal) once its stream holds at least
/// `after_points` flushed records — a deterministic stand-in for a
/// machine dying mid-shard, exercising the real kill + salvage + re-deal
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Global worker ordinal to kill (0 = the first worker launched).
    pub ordinal: usize,
    /// Streamed points to wait for before killing (≥ 1 guarantees the
    /// salvage path has something to recover).
    pub after_points: usize,
    /// Per-point stall injected into the targeted worker
    /// ([`WorkerAssignment::stall_per_point_ms`]): without it a fast
    /// worker can finish its whole slice between two polls, and the kill
    /// would have nothing left to re-deal.
    pub stall_ms: u64,
}

impl ChaosKill {
    /// Kill the first worker once it has streamed one point, stalling it
    /// 150 ms per point so the kill always leaves unfinished ids — the
    /// standard CI fault.
    pub fn first_worker() -> Self {
        ChaosKill {
            ordinal: 0,
            after_points: 1,
            stall_ms: 150,
        }
    }
}

/// Coordination knobs. `workers` is the only required choice; the
/// defaults suit a single machine.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Fleet width: assignments dealt per wave.
    pub workers: usize,
    /// Straggler deadline per wave: workers still running this long after
    /// the wave launched are killed and their unfinished ids re-dealt.
    pub deadline: Duration,
    /// Artifact-poll interval.
    pub poll: Duration,
    /// Wave cap — a fleet that keeps failing eventually errors out
    /// instead of spinning.
    pub max_waves: usize,
    /// Directory for worker artifacts (created if missing).
    pub work_dir: PathBuf,
    /// Persistent match-cache file: workers warm-start from it, and the
    /// coordinator folds their grown caches back after every wave.
    pub cache_path: Option<PathBuf>,
    /// Optional fault injection (see [`ChaosKill`]).
    pub chaos: Option<ChaosKill>,
    /// Narrate wave lifecycle (deal/complete/kill/salvage/re-deal) to
    /// stderr as it happens.
    pub verbose: bool,
    /// Explicit telemetry override; `None` falls back to the process-wide
    /// handle ([`noc_telemetry::active`]).
    pub telemetry: Option<Telemetry>,
}

impl CoordinatorConfig {
    /// A config dealing to `workers` workers with a 60 s straggler
    /// deadline, 20 ms polling, 8 waves max, artifacts under
    /// `EXPLORE_coordinate/`, no cache persistence, no fault injection.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a coordination needs at least one worker");
        CoordinatorConfig {
            workers,
            deadline: Duration::from_secs(60),
            poll: Duration::from_millis(20),
            max_waves: 8,
            work_dir: PathBuf::from("EXPLORE_coordinate"),
            cache_path: None,
            chaos: None,
            verbose: false,
            telemetry: None,
        }
    }

    /// Replaces the straggler deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Replaces the artifact directory.
    #[must_use]
    pub fn work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.work_dir = dir.into();
        self
    }

    /// Enables the persistent warm-start cache at `path`.
    #[must_use]
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Replaces the wave cap.
    #[must_use]
    pub fn max_waves(mut self, max_waves: usize) -> Self {
        assert!(max_waves > 0, "need at least one wave");
        self.max_waves = max_waves;
        self
    }

    /// Injects a worker kill (see [`ChaosKill`]).
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosKill) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Narrates wave lifecycle to stderr (`explore coordinate --verbose`).
    #[must_use]
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Routes the coordinator's lifecycle events to an explicit telemetry
    /// handle instead of the process-wide one.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// [`JsonLinesSink`] plus the fault-injected per-point stall (a no-op
/// sleep of zero when no chaos targets this worker).
struct StallingSink {
    inner: JsonLinesSink<std::fs::File>,
    stall: Duration,
}

impl crate::report::ResultSink for StallingSink {
    fn point(&mut self, record: &crate::report::PointRecord) {
        self.inner.point(record);
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
    }

    fn finish(&mut self, report: &CampaignReport) {
        self.inner.finish(report);
    }
}

/// One in-flight worker the coordinator is watching.
struct Tracked {
    assignment: WorkerAssignment,
    handle: Box<dyn WorkerHandle>,
    done: bool,
    killed: bool,
}

/// Runs `campaign`'s whole grid as a coordinated multi-worker campaign:
/// deal → watch → salvage stragglers → re-deal → merge (see the [module
/// docs](self) for the protocol). Returns the merged report with
/// [`coordinator`](CampaignReport::coordinator) provenance filled in —
/// its front is identical to `campaign.run()`'s, however many workers
/// died on the way, as long as every scenario id eventually completes
/// within [`max_waves`](CoordinatorConfig::max_waves).
///
/// Fails on an empty grid, a transport that cannot launch, a wave that
/// makes no progress (every dealt worker died without salvaging a single
/// new point — re-dealing would spin forever; check the per-worker
/// `*.log` files in the work directory for the workers' own errors),
/// exhausting the wave cap, or a merge conflict (which deterministic
/// scenarios cannot produce).
pub fn coordinate(
    campaign: &Campaign,
    config: &CoordinatorConfig,
    transport: &mut dyn WorkerTransport,
) -> Result<CampaignReport, String> {
    let mut remaining: BTreeSet<usize> = campaign.plan().scenario_ids().into_iter().collect();
    if remaining.is_empty() {
        return Err("cannot coordinate an empty grid".to_string());
    }
    std::fs::create_dir_all(&config.work_dir)
        .map_err(|e| format!("cannot create {}: {e}", config.work_dir.display()))?;

    // The persistent cache: what past runs left behind (if anything),
    // grown by absorbing worker caches after every wave.
    let warm = config
        .cache_path
        .as_ref()
        .map(|path| SharedMatchCache::warm_start(path, CACHE_CAPACITY));
    let accumulator = warm
        .as_ref()
        .map(|w| w.cache.clone())
        .unwrap_or_else(|| SharedMatchCache::new(CACHE_CAPACITY));

    let tel = match &config.telemetry {
        Some(t) => Some(t),
        None => noc_telemetry::active(),
    };
    let mut reports: Vec<CampaignReport> = Vec::new();
    let mut waves: Vec<WaveRecord> = Vec::new();
    let mut ordinal = 0;

    for wave in 0.. {
        if remaining.is_empty() {
            break;
        }
        let wave_t0 = Instant::now();
        if wave >= config.max_waves {
            return Err(format!(
                "{} scenario(s) still unfinished after {} wave(s) — fleet too unreliable, giving up",
                remaining.len(),
                config.max_waves
            ));
        }

        // Deal: contiguous chunks (range-style), preserving synthesis-key
        // neighbors so intra-worker artifact sharing survives.
        let outstanding: Vec<usize> = remaining.iter().copied().collect();
        let fleet = config.workers.min(outstanding.len());
        let chunk = outstanding.len().div_ceil(fleet);
        let mut tracked: Vec<Tracked> = Vec::new();
        for ids in outstanding.chunks(chunk) {
            let name = format!("wave{wave}_worker{ordinal}");
            let assignment = WorkerAssignment {
                ordinal,
                wave,
                ids: ids.to_vec(),
                stream_path: config.work_dir.join(format!("{name}.jsonl")),
                report_path: config.work_dir.join(format!("{name}.json")),
                cache_in: config.cache_path.clone(),
                cache_out: config
                    .cache_path
                    .as_ref()
                    .map(|_| config.work_dir.join(format!("{name}_cache.json"))),
                stall_per_point_ms: match config.chaos {
                    Some(chaos) if chaos.ordinal == ordinal => chaos.stall_ms,
                    _ => 0,
                },
            };
            // Clear any leftovers from a previous coordination in the
            // same work dir: artifact names are deterministic, and a
            // stale report here would be silently credited to a worker
            // that actually crashed before writing one.
            std::fs::remove_file(&assignment.stream_path).ok();
            std::fs::remove_file(&assignment.report_path).ok();
            if let Some(cache_out) = &assignment.cache_out {
                std::fs::remove_file(cache_out).ok();
            }
            let handle = transport.launch(&assignment)?;
            if let Some(t) = tel {
                t.event(
                    "coordinator.deal",
                    &[
                        ("wave", (wave as u64).into()),
                        ("worker", (ordinal as u64).into()),
                        ("scenarios", assignment.ids.len().into()),
                        ("ids", assignment.ids_csv().into()),
                    ],
                );
            }
            tracked.push(Tracked {
                assignment,
                handle,
                done: false,
                killed: false,
            });
            ordinal += 1;
        }
        if config.verbose {
            eprintln!(
                "coordinate: wave {wave}: dealt {} worker(s) covering {} scenario(s)",
                tracked.len(),
                outstanding.len()
            );
        }

        // Watch: poll until every worker stopped or the deadline passed;
        // stragglers are killed (their streams stay salvageable).
        let launched = tracked.len();
        let t0 = Instant::now();
        let mut killed = 0;
        loop {
            for worker in tracked.iter_mut().filter(|w| !w.done) {
                if let Some(chaos) = config.chaos {
                    if worker.assignment.ordinal == chaos.ordinal
                        && streamed_points(&worker.assignment.stream_path) >= chaos.after_points
                    {
                        worker.handle.kill();
                        worker.killed = true;
                        worker.done = true;
                        killed += 1;
                        if let Some(t) = tel {
                            t.event(
                                "coordinator.kill",
                                &[
                                    ("wave", (wave as u64).into()),
                                    ("worker", (worker.assignment.ordinal as u64).into()),
                                    ("reason", "chaos".into()),
                                ],
                            );
                        }
                        if config.verbose {
                            eprintln!(
                                "coordinate: wave {wave}: killed worker {} (chaos injection)",
                                worker.assignment.ordinal
                            );
                        }
                        continue;
                    }
                }
                if worker.handle.status() == WorkerStatus::Exited {
                    worker.done = true;
                }
            }
            if tracked.iter().all(|w| w.done) {
                break;
            }
            if t0.elapsed() >= config.deadline {
                for worker in tracked.iter_mut().filter(|w| !w.done) {
                    worker.handle.kill();
                    worker.killed = true;
                    worker.done = true;
                    killed += 1;
                    if let Some(t) = tel {
                        t.event(
                            "coordinator.kill",
                            &[
                                ("wave", (wave as u64).into()),
                                ("worker", (worker.assignment.ordinal as u64).into()),
                                ("reason", "deadline".into()),
                            ],
                        );
                    }
                    if config.verbose {
                        eprintln!(
                            "coordinate: wave {wave}: killed straggler worker {} \
                             (deadline {:?} passed)",
                            worker.assignment.ordinal, config.deadline
                        );
                    }
                }
                break;
            }
            std::thread::sleep(config.poll);
        }

        // Collect: a complete report from finishers, a salvaged partial
        // from everyone else; either way the recorded ids are done.
        let before = remaining.len();
        let mut completed = 0;
        let mut salvaged_points = 0;
        for worker in &tracked {
            let report = match complete_report(worker) {
                Some(report) => {
                    completed += 1;
                    if let Some(t) = tel {
                        t.event(
                            "coordinator.complete",
                            &[
                                ("wave", (wave as u64).into()),
                                ("worker", (worker.assignment.ordinal as u64).into()),
                                ("points", report.points.len().into()),
                            ],
                        );
                    }
                    report
                }
                None => {
                    let salvaged = salvage_stream(campaign, &worker.assignment.stream_path)?;
                    salvaged_points += salvaged.points.len();
                    if let Some(t) = tel {
                        t.event(
                            "coordinator.salvage",
                            &[
                                ("wave", (wave as u64).into()),
                                ("worker", (worker.assignment.ordinal as u64).into()),
                                ("points", salvaged.points.len().into()),
                            ],
                        );
                    }
                    if config.verbose {
                        eprintln!(
                            "coordinate: wave {wave}: salvaged {} point(s) from worker {}",
                            salvaged.points.len(),
                            worker.assignment.ordinal
                        );
                    }
                    salvaged
                }
            };
            for point in &report.points {
                remaining.remove(&point.scenario_id);
            }
            reports.push(report);
            if let Some(cache_out) = &worker.assignment.cache_out {
                // Killed workers usually leave no cache file; absorb
                // whatever exists, skip the rest.
                if let Ok(cache) = SharedMatchCache::load_from(cache_out, CACHE_CAPACITY) {
                    accumulator.absorb(&cache);
                }
            }
        }
        if let Some(path) = &config.cache_path {
            accumulator
                .save_to(path)
                .map_err(|e| format!("cannot save cache {}: {e}", path.display()))?;
        }
        if let Some(t) = tel {
            t.span_event(
                "coordinator.wave",
                wave_t0.elapsed(),
                &[
                    ("wave", (wave as u64).into()),
                    ("workers", launched.into()),
                    ("completed", completed.into()),
                    ("killed", killed.into()),
                    ("salvaged_points", salvaged_points.into()),
                    ("redealt", remaining.len().into()),
                ],
            );
            if !remaining.is_empty() {
                let csv = remaining
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                t.event(
                    "coordinator.redeal",
                    &[
                        ("wave", (wave as u64).into()),
                        ("scenarios", remaining.len().into()),
                        ("ids", csv.into()),
                    ],
                );
            }
        }
        if config.verbose {
            eprintln!(
                "coordinate: wave {wave}: {completed} completed, {killed} killed, \
                 {salvaged_points} salvaged point(s), {} scenario(s) re-dealt",
                remaining.len()
            );
        }
        waves.push(WaveRecord {
            wave,
            workers: launched,
            completed,
            killed,
            salvaged_points,
            redealt: remaining.len(),
        });
        if remaining.len() == before {
            return Err(format!(
                "wave {wave} made no progress on {} scenario(s) — every worker died before \
                 streaming a point; giving up instead of re-dealing forever",
                remaining.len()
            ));
        }
    }

    let mut merged = merge_reports(&reports)?;
    merged.coordinator = Some(CoordinatorRecord {
        workers: config.workers,
        deadline_ms: config.deadline.as_secs_f64() * 1e3,
        waves,
    });
    if let (Some(path), Some(warm)) = (&config.cache_path, &warm) {
        merged.warm_cache = Some(WarmCacheRecord {
            path: path.display().to_string(),
            loaded_graphs: warm.loaded_graphs,
            saved_graphs: accumulator.graph_count(),
            degraded: warm.degraded.clone(),
        });
    }
    Ok(merged)
}

/// Reads a worker's final report, if it completed one (and was not
/// killed: a killed worker's stream is the trusted artifact — the report
/// cannot have been renamed into place after the kill).
fn complete_report(worker: &Tracked) -> Option<CampaignReport> {
    if worker.killed {
        return None;
    }
    let text = std::fs::read_to_string(&worker.assignment.report_path).ok()?;
    CampaignReport::from_json(&text).ok()
}

/// Recovers the maximally complete partial report from a killed/failed
/// worker's stream. A missing or empty stream salvages zero points
/// (which is fine — those ids are simply re-dealt); actual mid-stream
/// corruption is a real error surfaced to the caller.
fn salvage_stream(campaign: &Campaign, stream_path: &Path) -> Result<CampaignReport, String> {
    let text = std::fs::read_to_string(stream_path).unwrap_or_default();
    CampaignReport::from_json_lines(&text, &campaign.objectives)
        .map_err(|e| format!("corrupt stream {}: {e}", stream_path.display()))
}

/// Complete (newline-terminated, hence fully flushed) records in a
/// stream file — a trailing half-written line is not counted.
fn streamed_points(path: &Path) -> usize {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut lines: Vec<&str> = text.split('\n').collect();
    lines.pop(); // the tail after the last newline is unterminated
    lines.iter().filter(|line| !line.trim().is_empty()).count()
}
