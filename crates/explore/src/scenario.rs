//! Declarative scenario spaces: the grid of axes a campaign fans out over.
//!
//! A [`ScenarioGrid`] is the cross product of independent axes — workload
//! instances × search-engine configurations × synthesis objectives ×
//! technology profiles × floorplan seeds × simulation specs. Enumeration
//! is deterministic: scenario ids are positions in that product, so a grid
//! names the same scenarios on every run and on every thread count.

use noc::prelude::*;
use noc::workloads::WorkloadFamily;

/// One workload axis value: a family instantiated at a size and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Generator family.
    pub family: WorkloadFamily,
    /// Requested node count (fixed benchmarks ignore it).
    pub n: usize,
    /// Generator seed (fixed benchmarks ignore it).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Spec for a sized family.
    pub fn new(family: WorkloadFamily, n: usize, seed: u64) -> Self {
        WorkloadSpec { family, n, seed }
    }

    /// Spec for a fixed benchmark (`n`/`seed` pinned to its natural size).
    pub fn fixed(family: WorkloadFamily) -> Self {
        WorkloadSpec {
            family,
            n: family.fixed_size().unwrap_or(0),
            seed: 0,
        }
    }

    /// Builds the deterministic application graph.
    pub fn instantiate(&self) -> Acg {
        self.family.instantiate(self.n, self.seed)
    }

    /// Stable label, e.g. `tgff_n12_s3`.
    pub fn label(&self) -> String {
        match self.family.fixed_size() {
            Some(_) => self.family.label().to_string(),
            None => format!("{}_n{}_s{}", self.family.label(), self.n, self.seed),
        }
    }
}

/// Per-scenario simulation spec: which load points to sample and where the
/// objective measurement sits.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Stable label used in reports (e.g. `"base_load"`).
    pub label: String,
    /// Injection rates swept (packets/node/cycle), ramped in order.
    pub rates: Vec<f64>,
    /// Traffic cycles generated per point.
    pub duration_cycles: u64,
    /// Payload bits per packet.
    pub payload_bits: u64,
    /// Traffic seed.
    pub seed: u64,
    /// Stop the ramp past this multiple of zero-load latency (see
    /// [`noc::sim::sweep::SweepConfig::saturation_cutoff`]).
    pub saturation_cutoff: Option<f64>,
    /// Index into `rates` of the point whose latency/energy feed the
    /// objective vector (clamped to the last simulated point if the
    /// saturation cutoff stops the ramp earlier). Defaults to `0`: measure
    /// at base load, let the tail of the ramp characterize saturation.
    pub measure_index: usize,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            label: "base_load".into(),
            rates: vec![0.05],
            duration_cycles: 300,
            payload_bits: 64,
            seed: 1,
            saturation_cutoff: Some(8.0),
            measure_index: 0,
        }
    }
}

/// One fully-resolved point of the scenario space.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the grid enumeration (stable across runs and threads).
    pub id: usize,
    /// The application.
    pub workload: WorkloadSpec,
    /// Label of the engine axis value.
    pub engine_label: String,
    /// Decomposition-engine configuration.
    pub engine: DecomposerConfig,
    /// Synthesis objective (what the branch-and-bound minimizes).
    pub objective: Objective,
    /// Technology profile.
    pub technology: TechnologyProfile,
    /// Floorplanner seed.
    pub floorplan_seed: u64,
    /// Square-core area fed to the automatic floorplanner, mm².
    pub core_area_mm2: f64,
    /// Simulation spec.
    pub sim: SimSpec,
    /// Router model fidelity the sweep simulates under (the innermost
    /// axis; [`RouterFidelity::Ideal`] reproduces the pre-axis behavior
    /// bit-for-bit).
    pub router_fidelity: RouterFidelity,
}

impl Scenario {
    /// Human-readable point label for reports. Ideal-fidelity labels are
    /// byte-identical to pre-axis reports; credit fidelity appends one
    /// more `/`-separated part.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{:?}/{}/fp{}/{}",
            self.workload.label(),
            self.engine_label,
            self.objective,
            self.technology.name(),
            self.floorplan_seed,
            self.sim.label,
        );
        if !matches!(self.router_fidelity, RouterFidelity::Ideal) {
            label.push('/');
            label.push_str(self.router_fidelity.label());
        }
        label
    }

    /// The scenario's value on each named grid axis, in enumeration-nest
    /// order (workload outermost, sim innermost). This is the coordinate
    /// system adaptive samplers plan over: an *arm* is one `(axis,
    /// value)` pair, and pulling it means evaluating scenarios that carry
    /// that value (see [`crate::sample`]). `core_area_mm2` is excluded —
    /// it is a grid-wide constant, not an axis.
    pub fn axis_values(&self) -> [(&'static str, String); 7] {
        [
            ("workload", self.workload.label()),
            ("engine", self.engine_label.clone()),
            ("synthesis_objective", format!("{:?}", self.objective)),
            ("technology", self.technology.name().to_string()),
            ("floorplan_seed", self.floorplan_seed.to_string()),
            ("sim", self.sim.label.clone()),
            ("router_fidelity", self.router_fidelity.label().to_string()),
        ]
    }

    /// Key of everything that feeds *synthesis* (workload, engine,
    /// objective, technology, floorplan) — scenarios sharing this key
    /// differ only in simulation spec, so their synthesized architecture
    /// is identical and the campaign computes it once.
    pub fn synthesis_key(&self) -> String {
        format!(
            "{}|{}|{:?}|{}|{}|{}",
            self.workload.label(),
            self.engine_label,
            self.objective,
            self.technology.name(),
            self.floorplan_seed,
            self.core_area_mm2,
        )
    }
}

/// The declarative scenario space: a builder for the cross product of
/// campaign axes. Every axis defaults to a single paper-default value, so
/// `ScenarioGrid::new().workload_family(...)` is already a runnable sweep.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    workloads: Vec<WorkloadSpec>,
    engines: Vec<(String, DecomposerConfig)>,
    objectives: Vec<Objective>,
    technologies: Vec<TechnologyProfile>,
    floorplan_seeds: Vec<u64>,
    core_area_mm2: f64,
    sims: Vec<SimSpec>,
    router_fidelities: Vec<RouterFidelity>,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioGrid {
    /// An empty-workload grid with paper defaults on every other axis:
    /// depth-first sequential engine, `Links` objective, 180 nm
    /// technology, floorplan seed 1, 1 mm² cores, one base-load sim spec.
    pub fn new() -> Self {
        ScenarioGrid {
            workloads: Vec::new(),
            engines: vec![("dfs".into(), DecomposerConfig::default())],
            objectives: vec![Objective::Links],
            technologies: vec![TechnologyProfile::cmos_180nm()],
            floorplan_seeds: vec![1],
            core_area_mm2: 1.0,
            sims: vec![SimSpec::default()],
            router_fidelities: vec![RouterFidelity::Ideal],
        }
    }

    /// Adds explicit workload instances.
    #[must_use]
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(specs);
        self
    }

    /// Adds a sized family swept over `sizes` × `seeds`.
    #[must_use]
    pub fn workload_family(
        mut self,
        family: WorkloadFamily,
        sizes: impl IntoIterator<Item = usize> + Clone,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Self {
        for seed in seeds {
            for n in sizes.clone() {
                self.workloads.push(WorkloadSpec::new(family, n, seed));
            }
        }
        self
    }

    /// Replaces the engine axis with labeled decomposer configurations.
    #[must_use]
    pub fn engines(
        mut self,
        engines: impl IntoIterator<Item = (impl Into<String>, DecomposerConfig)>,
    ) -> Self {
        self.engines = engines
            .into_iter()
            .map(|(label, config)| (label.into(), config))
            .collect();
        assert!(!self.engines.is_empty(), "need at least one engine");
        self
    }

    /// Replaces the synthesis-objective axis.
    #[must_use]
    pub fn synthesis_objectives(mut self, objectives: impl IntoIterator<Item = Objective>) -> Self {
        self.objectives = objectives.into_iter().collect();
        assert!(!self.objectives.is_empty(), "need at least one objective");
        self
    }

    /// Replaces the technology axis.
    #[must_use]
    pub fn technologies(
        mut self,
        technologies: impl IntoIterator<Item = TechnologyProfile>,
    ) -> Self {
        self.technologies = technologies.into_iter().collect();
        assert!(
            !self.technologies.is_empty(),
            "need at least one technology"
        );
        self
    }

    /// Replaces the floorplan-seed axis.
    #[must_use]
    pub fn floorplan_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.floorplan_seeds = seeds.into_iter().collect();
        assert!(!self.floorplan_seeds.is_empty(), "need at least one seed");
        self
    }

    /// Sets the square-core area used by the automatic floorplanner.
    #[must_use]
    pub fn core_area_mm2(mut self, area: f64) -> Self {
        assert!(area > 0.0, "core area must be positive");
        self.core_area_mm2 = area;
        self
    }

    /// Replaces the simulation-spec axis.
    #[must_use]
    pub fn sims(mut self, sims: impl IntoIterator<Item = SimSpec>) -> Self {
        self.sims = sims.into_iter().collect();
        assert!(!self.sims.is_empty(), "need at least one sim spec");
        self
    }

    /// Replaces the router-fidelity axis (defaults to ideal only, which
    /// keeps grids and labels identical to pre-axis campaigns).
    #[must_use]
    pub fn router_fidelities(
        mut self,
        fidelities: impl IntoIterator<Item = RouterFidelity>,
    ) -> Self {
        self.router_fidelities = fidelities.into_iter().collect();
        assert!(
            !self.router_fidelities.is_empty(),
            "need at least one router fidelity"
        );
        self
    }

    /// Number of scenario points the grid enumerates to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.engines.len()
            * self.objectives.len()
            * self.technologies.len()
            * self.floorplan_seeds.len()
            * self.sims.len()
            * self.router_fidelities.len()
    }

    /// `true` when no workload has been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cross product in a stable order (workloads
    /// outermost, router fidelity innermost — adjacent ids differ only
    /// in sim spec or fidelity, which is what makes synthesis reuse
    /// effective).
    pub fn enumerate(&self) -> Vec<Scenario> {
        let mut scenarios = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for (engine_label, engine) in &self.engines {
                for &objective in &self.objectives {
                    for technology in &self.technologies {
                        for &floorplan_seed in &self.floorplan_seeds {
                            for sim in &self.sims {
                                for &router_fidelity in &self.router_fidelities {
                                    scenarios.push(Scenario {
                                        id: scenarios.len(),
                                        workload: workload.clone(),
                                        engine_label: engine_label.clone(),
                                        engine: engine.clone(),
                                        objective,
                                        technology: technology.clone(),
                                        floorplan_seed,
                                        core_area_mm2: self.core_area_mm2,
                                        sim: sim.clone(),
                                        router_fidelity,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// The CI smoke grid: small fixed and generated workloads, two
    /// synthesis objectives, two sim specs differing only in load ramp
    /// (exercising synthesis reuse), ~1 s of total work.
    pub fn smoke() -> Self {
        ScenarioGrid::new()
            .workloads([
                WorkloadSpec::fixed(WorkloadFamily::Fig5),
                WorkloadSpec::new(WorkloadFamily::Tgff, 8, 8),
                WorkloadSpec::new(WorkloadFamily::PajekPlanted, 10, 3),
            ])
            .synthesis_objectives([Objective::Links, Objective::Energy])
            .sims([
                SimSpec {
                    label: "base_load".into(),
                    rates: vec![0.05],
                    duration_cycles: 200,
                    ..SimSpec::default()
                },
                SimSpec {
                    label: "ramp".into(),
                    rates: vec![0.05, 0.15, 0.30],
                    duration_cycles: 200,
                    saturation_cutoff: Some(6.0),
                    ..SimSpec::default()
                },
            ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_stable_and_counts_match() {
        let grid = ScenarioGrid::smoke();
        let scenarios = grid.enumerate();
        assert_eq!(scenarios.len(), grid.len());
        assert_eq!(scenarios.len(), 3 * 2 * 2);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.id, i);
        }
        // Enumeration is deterministic.
        let again = grid.enumerate();
        assert!(scenarios
            .iter()
            .zip(&again)
            .all(|(a, b)| a.label() == b.label()));
    }

    #[test]
    fn adjacent_ids_share_synthesis_keys() {
        // Sim specs are the innermost axis: consecutive scenarios pair up
        // under one synthesis key.
        let scenarios = ScenarioGrid::smoke().enumerate();
        assert_eq!(scenarios[0].synthesis_key(), scenarios[1].synthesis_key());
        assert_ne!(scenarios[1].synthesis_key(), scenarios[2].synthesis_key());
    }

    #[test]
    fn router_fidelity_axis_multiplies_the_grid_and_marks_labels() {
        let base = ScenarioGrid::smoke();
        let both = ScenarioGrid::smoke().router_fidelities([
            RouterFidelity::Ideal,
            RouterFidelity::Credit(CreditConfig::default()),
        ]);
        assert_eq!(both.len(), base.len() * 2);
        let scenarios = both.enumerate();
        // Fidelity is the innermost axis: ideal/credit alternate, and a
        // credit scenario still shares its neighbor's synthesis key.
        assert!(matches!(
            scenarios[0].router_fidelity,
            RouterFidelity::Ideal
        ));
        assert!(matches!(
            scenarios[1].router_fidelity,
            RouterFidelity::Credit(_)
        ));
        assert_eq!(scenarios[0].synthesis_key(), scenarios[1].synthesis_key());
        // Ideal labels are byte-identical to a fidelity-free grid; credit
        // labels append exactly one part.
        let plain = base.enumerate();
        assert_eq!(scenarios[0].label(), plain[0].label());
        assert_eq!(scenarios[1].label(), format!("{}/credit", plain[0].label()));
        // The axis shows up in the sampler's coordinate system.
        assert_eq!(
            scenarios[1].axis_values()[6],
            ("router_fidelity", "credit".to_string())
        );
    }

    #[test]
    fn workload_family_sweeps_sizes_and_seeds() {
        let grid = ScenarioGrid::new().workload_family(WorkloadFamily::Tgff, [5, 8], 1..=3);
        assert_eq!(grid.len(), 6);
    }

    #[test]
    fn fixed_spec_instantiates_fixed_benchmark() {
        let spec = WorkloadSpec::fixed(WorkloadFamily::Automotive);
        assert_eq!(spec.instantiate().core_count(), 18);
        assert_eq!(spec.label(), "automotive18");
    }
}
