//! Campaign results: per-point records, the campaign report, streaming
//! sinks, and the hand-rolled JSON serialization (consistent with the
//! repository's `BENCH_*.json` files — no serde in this workspace).

use std::io::Write;

use crate::pareto::ObjectiveKind;

/// One sampled load point of a scenario's sweep, as recorded in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointRecord {
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Mean packet latency, cycles.
    pub latency_cycles: f64,
    /// Delivered throughput, payload bits per cycle.
    pub throughput_bits_per_cycle: f64,
    /// Total communication energy, joules.
    pub energy_joules: f64,
}

/// Everything recorded about one evaluated scenario point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Scenario id (position in the grid enumeration).
    pub scenario_id: usize,
    /// Human-readable scenario label.
    pub label: String,
    /// Workload label (family, size, seed).
    pub workload: String,
    /// Node count of the instantiated application.
    pub nodes: usize,
    /// Engine-axis label.
    pub engine: String,
    /// Synthesis objective, `Debug`-formatted.
    pub synthesis_objective: String,
    /// Technology profile name.
    pub technology: String,
    /// Sim-spec label.
    pub sim: String,
    /// Objective vector, parallel to the campaign's
    /// [`ObjectiveKind`] list; empty when `error` is set.
    pub objectives: Vec<f64>,
    /// Filled after the campaign completes: `true` iff this point is on
    /// the Pareto front.
    pub on_front: bool,
    /// `true` when the synthesized architecture was reused from another
    /// scenario sharing the same synthesis key.
    pub reused_synthesis: bool,
    /// Best decomposition cost (the paper's COST).
    pub total_cost: f64,
    /// Search-tree nodes expanded by the owning synthesis run (reused
    /// points repeat the owner's value — sum over *non-reused* points
    /// for total campaign search effort).
    pub nodes_visited: u64,
    /// VF2 cache hits of the owning synthesis run (repeated on reused
    /// points, like [`nodes_visited`](Self::nodes_visited)). With a
    /// campaign-shared match cache and several workers, which of two
    /// concurrent runs gets the hit is scheduling-dependent — this is
    /// the one provenance field a thread count can perturb.
    pub cache_hits: u64,
    /// Synthesis wall-time, ms (the original run's time when reused).
    pub synth_ms: f64,
    /// The simulated latency-vs-load curve (possibly truncated by the
    /// saturation cutoff).
    pub sweep: Vec<SweepPointRecord>,
    /// `true` when the saturation cutoff stopped the ramp early.
    pub saturated: bool,
    /// Failure description when the flow or simulation failed; such
    /// points never join the front.
    pub error: Option<String>,
}

impl PointRecord {
    /// The record as a single-line JSON object (the streaming form emitted
    /// by [`JsonLinesSink`] and embedded in [`CampaignReport::to_json`]).
    pub fn to_json(&self, kinds: &[ObjectiveKind]) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(&mut s, "scenario_id", &self.scenario_id.to_string());
        push_str_kv(&mut s, "label", &self.label);
        push_str_kv(&mut s, "workload", &self.workload);
        push_kv(&mut s, "nodes", &self.nodes.to_string());
        push_str_kv(&mut s, "engine", &self.engine);
        push_str_kv(&mut s, "synthesis_objective", &self.synthesis_objective);
        push_str_kv(&mut s, "technology", &self.technology);
        push_str_kv(&mut s, "sim", &self.sim);
        if let Some(error) = &self.error {
            push_str_kv(&mut s, "error", error);
        } else {
            for (kind, value) in kinds.iter().zip(&self.objectives) {
                push_kv(&mut s, kind.label(), &json_f64(*value));
            }
            push_kv(
                &mut s,
                "on_front",
                if self.on_front { "true" } else { "false" },
            );
        }
        push_kv(
            &mut s,
            "reused_synthesis",
            if self.reused_synthesis {
                "true"
            } else {
                "false"
            },
        );
        push_kv(&mut s, "total_cost", &json_f64(self.total_cost));
        push_kv(&mut s, "nodes_visited", &self.nodes_visited.to_string());
        push_kv(&mut s, "cache_hits", &self.cache_hits.to_string());
        push_kv(&mut s, "synth_ms", &json_f64(self.synth_ms));
        push_kv(
            &mut s,
            "saturated",
            if self.saturated { "true" } else { "false" },
        );
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"rate\": {}, \"latency_cycles\": {}, \"throughput_bits_per_cycle\": {}, \"energy_joules\": {}}}",
                    json_f64(p.rate),
                    json_f64(p.latency_cycles),
                    json_f64(p.throughput_bits_per_cycle),
                    json_f64(p.energy_joules),
                )
            })
            .collect();
        push_kv(&mut s, "sweep", &format!("[{}]", sweep.join(", ")));
        s.push('}');
        s
    }
}

/// The folded outcome of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The objective vector's dimensions, in order.
    pub objective_kinds: Vec<ObjectiveKind>,
    /// One record per scenario, in scenario-id order.
    pub points: Vec<PointRecord>,
    /// Scenario ids on the Pareto front, ascending.
    pub front: Vec<usize>,
    /// Campaign worker threads used.
    pub threads: usize,
    /// Full synthesis runs executed.
    pub flows_synthesized: usize,
    /// Scenario points that reused a shared synthesis artifact.
    pub synthesis_reused: usize,
    /// Campaign wall-time, milliseconds.
    pub wall_ms: f64,
}

impl CampaignReport {
    /// The records on the Pareto front, in scenario order.
    pub fn front_points(&self) -> impl Iterator<Item = &PointRecord> {
        self.points.iter().filter(|p| p.on_front)
    }

    /// Serializes the full report (hand-rolled, stable key order).
    pub fn to_json(&self) -> String {
        let kinds: Vec<String> = self
            .objective_kinds
            .iter()
            .map(|k| format!("\"{}\"", k.label()))
            .collect();
        let front: Vec<String> = self.front.iter().map(usize::to_string).collect();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| format!("    {}", p.to_json(&self.objective_kinds)))
            .collect();
        format!(
            "{{\n  \"report\": \"noc_explore_campaign\",\n  \"objectives\": [{}],\n  \"threads\": {},\n  \"flows_synthesized\": {},\n  \"synthesis_reused\": {},\n  \"wall_ms\": {},\n  \"pareto_front\": [{}],\n  \"points\": [\n{}\n  ]\n}}\n",
            kinds.join(", "),
            self.threads,
            self.flows_synthesized,
            self.synthesis_reused,
            json_f64(self.wall_ms),
            front.join(", "),
            points.join(",\n"),
        )
    }
}

/// Receives campaign results as they are produced.
///
/// `point` fires once per completed scenario, in **completion order** —
/// nondeterministic under a multi-threaded campaign, though each record's
/// content is deterministic. `finish` fires once with the assembled
/// report (records in scenario order, front flags filled in).
pub trait ResultSink: Send {
    /// A scenario point finished evaluating.
    fn point(&mut self, record: &PointRecord);
    /// The campaign completed.
    fn finish(&mut self, _report: &CampaignReport) {}
}

/// Discards everything ([`Campaign::run`](crate::Campaign::run) uses it).
#[derive(Debug, Default)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn point(&mut self, _record: &PointRecord) {}
}

/// Streams each completed point as one JSON object per line (JSON Lines),
/// flushing after every record so progress is observable while the
/// campaign runs.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
    kinds: Vec<ObjectiveKind>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; `kinds` must match the campaign's objective vector.
    pub fn new(writer: W, kinds: Vec<ObjectiveKind>) -> Self {
        JsonLinesSink { writer, kinds }
    }
}

impl<W: Write + Send> ResultSink for JsonLinesSink<W> {
    fn point(&mut self, record: &PointRecord) {
        let _ = writeln!(self.writer, "{}", record.to_json(&self.kinds));
        let _ = self.writer.flush();
    }
}

/// JSON-formats a float (`null` for non-finite values, which JSON cannot
/// represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_kv(s: &mut String, key: &str, raw_value: &str) {
    if !s.ends_with('{') {
        s.push_str(", ");
    }
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(raw_value);
}

fn push_str_kv(s: &mut String, key: &str, value: &str) {
    let escaped: String = value
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    push_kv(s, key, &format!("\"{escaped}\""));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PointRecord {
        PointRecord {
            scenario_id: 3,
            label: "fig5/dfs/Links/cmos_180nm/fp1/base_load".into(),
            workload: "fig5".into(),
            nodes: 8,
            engine: "dfs".into(),
            synthesis_objective: "Links".into(),
            technology: "cmos_180nm".into(),
            sim: "base_load".into(),
            objectives: vec![1.5e-9, 12.25, 16.0],
            on_front: true,
            reused_synthesis: false,
            total_cost: 17.0,
            nodes_visited: 42,
            cache_hits: 7,
            synth_ms: 0.5,
            sweep: vec![SweepPointRecord {
                rate: 0.05,
                latency_cycles: 12.25,
                throughput_bits_per_cycle: 3.0,
                energy_joules: 1.5e-9,
            }],
            saturated: false,
            error: None,
        }
    }

    #[test]
    fn point_json_is_well_formed() {
        let json = record().to_json(&ObjectiveKind::DEFAULT);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"energy_joules\": 0.0000000015"));
        assert!(json.contains("\"on_front\": true"));
        assert!(json.contains("\"sweep\": [{\"rate\": 0.05"));
        assert!(!json.contains("error"));
    }

    #[test]
    fn failed_points_serialize_the_error_instead_of_objectives() {
        let mut r = record();
        r.error = Some("no legal decomposition".into());
        r.objectives.clear();
        let json = r.to_json(&ObjectiveKind::DEFAULT);
        assert!(json.contains("\"error\": \"no legal decomposition\""));
        assert!(!json.contains("on_front"));
    }

    #[test]
    fn string_escaping_handles_quotes_and_newlines() {
        let mut s = String::from("{");
        push_str_kv(&mut s, "k", "a\"b\\c\nd");
        assert_eq!(s, "{\"k\": \"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_point() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf, ObjectiveKind::DEFAULT.to_vec());
            sink.point(&record());
            sink.point(&record());
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
    }
}
