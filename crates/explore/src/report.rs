//! Campaign results: per-point records, the campaign report, streaming
//! sinks, and the hand-rolled JSON serialization **and parsing**
//! (consistent with the repository's `BENCH_*.json` files — no serde in
//! this workspace; the reader in [`crate::json`] mirrors the writer here,
//! which is what makes reports resumable and shard reports mergeable).

use std::io::Write;

use crate::json::JsonValue;
use crate::metrics::FrontMetrics;
use crate::pareto::{ObjectiveKind, ParetoFront};

/// Schema version written into every report by
/// [`CampaignReport::to_json`]. The version is a single major: any report
/// claiming a **newer** version than this reader was built for is
/// rejected outright (its fields may mean something this code cannot
/// know), while older versions get a compatibility path
/// ([`from_json`](CampaignReport::from_json) treats a missing
/// `schema_version` as v1, the PR 3 wire format).
///
/// History: **v1** — the unversioned PR 3 format; **v2** — adds
/// `schema_version` itself and the optional `sampler` provenance object
/// written by budgeted sampling campaigns
/// ([`Campaign::run_sampled`](crate::Campaign::run_sampled)); **v3** —
/// adds `warm_hits` to every `match_cache` row plus two optional
/// provenance objects: `warm_cache` (written by runs that warm-started
/// from a persisted match-cache file) and `coordinator` (written on the
/// merged report of [`coordinate`](crate::coordinate::coordinate) runs).
/// All v3 additions default to zero/absent when reading older reports;
/// **v4** — adds the optional per-point `verify` object: the static
/// deadlock-freedom verdict of the synthesized architecture's routing
/// ([`VerifyRecord`], produced by `noc-verify`'s extended channel
/// dependency graph analysis). Absent in v1–v3 reports and parsed as
/// `None` ("never verified") — run `explore verify` to fill it in;
/// **v5** — adds the per-point `router_fidelity` string (`"ideal"` or
/// `"credit"`), the router-model axis the point's sweep simulated under.
/// Absent in v1–v4 reports and parsed as `"ideal"`, which is exactly
/// what those campaigns ran.
pub const SCHEMA_VERSION: u64 = 5;

/// One sampled load point of a scenario's sweep, as recorded in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPointRecord {
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Mean packet latency, cycles.
    pub latency_cycles: f64,
    /// Delivered throughput, payload bits per cycle.
    pub throughput_bits_per_cycle: f64,
    /// Total communication energy, joules.
    pub energy_joules: f64,
}

/// Cumulative shared match-cache traffic for one graph size, as recorded
/// in reports (the explore-side mirror of
/// [`noc::synthesis::SizeCacheStats`](noc::prelude::SizeCacheStats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSizeRecord {
    /// Vertex count the row aggregates.
    pub vertex_count: usize,
    /// VF2 enumerations answered from the campaign-shared cache.
    pub hits: u64,
    /// Enumerations that had to run.
    pub misses: u64,
    /// The subset of [`hits`](Self::hits) answered by entries loaded from
    /// a persisted cache file rather than computed this run — zero unless
    /// the campaign warm-started its match cache (schema v3; absent in
    /// older reports and parsed as zero).
    pub warm_hits: u64,
}

/// One round of an adaptive sampling campaign, as recorded in reports:
/// which arms the planner pulled and where the folded front's hypervolume
/// stood once the round's points were in (see [`crate::sample`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerRoundRecord {
    /// Round number, starting at 0.
    pub round: usize,
    /// Scenario points evaluated this round.
    pub flows: usize,
    /// Reference-normalized hypervolume of the folded front *after* this
    /// round — the trajectory is monotone non-decreasing because records
    /// only accumulate.
    pub hypervolume: f64,
    /// Arm labels pulled this round (`axis=value`, one entry per pull, in
    /// pull order — deterministic per (grid, budget, seed)).
    pub arms: Vec<String>,
}

/// Provenance of a budgeted sampling campaign
/// ([`Campaign::run_sampled`](crate::Campaign::run_sampled)): policy,
/// seed, budget and the per-round trajectory. Carried verbatim through
/// `to_json → from_json`, so sampled reports stay first-class interchange
/// artifacts — they can be resumed (completing the grid) and merged like
/// any other partial report.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerRecord {
    /// Planner policy label (`"bandit"` or `"halving"`).
    pub policy: String,
    /// RNG seed the scenario sequence was derived from.
    pub seed: u64,
    /// Flow budget the sampler was given.
    pub budget: usize,
    /// Scenario points actually evaluated (≤ budget, and ≤ grid size).
    pub flows_spent: usize,
    /// Total points in the grid the sampler drew from.
    pub grid_len: usize,
    /// Per-round provenance, in round order.
    pub rounds: Vec<SamplerRoundRecord>,
}

/// Provenance of a campaign that warm-started its VF2 match cache from a
/// persisted file (`SharedMatchCache::warm_start`): where the cache came
/// from, how much of it loaded, and how much was saved back. Written by
/// coordinator workers and `explore --cache` runs (schema v3).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmCacheRecord {
    /// Path of the cache file the run loaded (and typically re-saved).
    pub path: String,
    /// Distinct size-tagged graphs loaded; `0` on a cold start.
    pub loaded_graphs: usize,
    /// Distinct size-tagged graphs persisted after the run.
    pub saved_graphs: usize,
    /// `Some(reason)` when the file existed but was corrupt/unreadable and
    /// the run degraded to a cold start instead of failing.
    pub degraded: Option<String>,
}

/// One re-dealing wave of a coordinated campaign (see
/// [`coordinate`](crate::coordinate::coordinate)): how many workers
/// launched, how they ended, and how much work rolled into the next wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveRecord {
    /// Wave number, starting at 0.
    pub wave: usize,
    /// Worker processes launched this wave.
    pub workers: usize,
    /// Workers that exited with a complete shard report.
    pub completed: usize,
    /// Workers killed — straggler deadline or injected fault.
    pub killed: usize,
    /// Point records salvaged from killed/failed workers' JSON-Lines
    /// streams (these ids are *not* re-dealt).
    pub salvaged_points: usize,
    /// Scenario ids left unfinished by this wave and re-dealt to the next.
    pub redealt: usize,
}

/// Provenance of a coordinated (multi-worker, straggler-re-dealing)
/// campaign, written on the merged report by
/// [`coordinate`](crate::coordinate::coordinate) (schema v3).
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorRecord {
    /// Configured fleet width (workers per wave).
    pub workers: usize,
    /// Straggler deadline per wave, milliseconds.
    pub deadline_ms: f64,
    /// Per-wave provenance, in wave order. More than one wave means work
    /// was re-dealt.
    pub waves: Vec<WaveRecord>,
}

impl CoordinatorRecord {
    /// Total workers killed across every wave.
    pub fn killed(&self) -> usize {
        self.waves.iter().map(|w| w.killed).sum()
    }

    /// Total scenario ids re-dealt across every wave.
    pub fn redealt(&self) -> usize {
        self.waves.iter().map(|w| w.redealt).sum()
    }
}

/// The static deadlock-freedom verdict of one synthesized architecture,
/// as recorded per point (schema v4) — the report-side projection of a
/// [`noc::verify::Verdict`]. Reused points repeat
/// their synthesis owner's verdict, like `synth_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRecord {
    /// `true` when the verifier *proved* the routing deadlock-free: no
    /// lint errors and an acyclic VC-aware extended channel dependency
    /// graph over every route table the policy can select.
    pub deadlock_free: bool,
    /// Virtual channels the architecture's assignment uses.
    pub num_vcs: usize,
    /// Distinct `(channel, VC)` resources some route occupies.
    pub cdg_vertices: usize,
    /// Distinct dependency edges in the extended CDG.
    pub cdg_edges: usize,
    /// Routes inspected across all route sets.
    pub routes_checked: usize,
    /// Verification wall-time, ms (the owner's time when reused).
    pub verify_ms: f64,
    /// The witness cycle, one rendered dependency edge per entry (each
    /// naming the inducing routes); empty when no cycle exists.
    pub cycle: Vec<String>,
    /// Rendered lint errors; empty when the spec is well-formed.
    pub lint: Vec<String>,
}

impl VerifyRecord {
    /// Projects a verifier verdict into the report form.
    pub fn from_verdict(verdict: &noc::verify::Verdict, verify_ms: f64) -> Self {
        VerifyRecord {
            deadlock_free: verdict.is_deadlock_free(),
            num_vcs: verdict.num_vcs,
            cdg_vertices: verdict.cdg_vertices,
            cdg_edges: verdict.cdg_edges,
            routes_checked: verdict.routes_checked,
            verify_ms,
            cycle: verdict
                .cycle
                .as_ref()
                .map(|c| c.render_edges())
                .unwrap_or_default(),
            lint: verdict.render_lint(),
        }
    }

    /// One-line summary for logs and point errors.
    pub fn summary(&self) -> String {
        if self.deadlock_free {
            format!(
                "deadlock-free ({} VCs, CDG {}v/{}e)",
                self.num_vcs, self.cdg_vertices, self.cdg_edges
            )
        } else if let Some(first) = self.cycle.first() {
            format!("cyclic dependency: {first}")
        } else {
            format!("route lint failed: {}", self.lint.join("; "))
        }
    }
}

/// Everything recorded about one evaluated scenario point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Scenario id (position in the grid enumeration).
    pub scenario_id: usize,
    /// Human-readable scenario label.
    pub label: String,
    /// Workload label (family, size, seed).
    pub workload: String,
    /// Node count of the instantiated application.
    pub nodes: usize,
    /// Engine-axis label.
    pub engine: String,
    /// Synthesis objective, `Debug`-formatted.
    pub synthesis_objective: String,
    /// Technology profile name.
    pub technology: String,
    /// Sim-spec label.
    pub sim: String,
    /// Router-fidelity axis label (`"ideal"` or `"credit"`, schema v5;
    /// absent in older reports and parsed as `"ideal"`).
    pub router_fidelity: String,
    /// Objective vector, parallel to the campaign's
    /// [`ObjectiveKind`] list; empty when `error` is set.
    pub objectives: Vec<f64>,
    /// Filled after the campaign completes: `true` iff this point is on
    /// the Pareto front.
    pub on_front: bool,
    /// `true` when the synthesized architecture was reused from another
    /// scenario sharing the same synthesis key.
    pub reused_synthesis: bool,
    /// Best decomposition cost (the paper's COST).
    pub total_cost: f64,
    /// Search-tree nodes expanded by the owning synthesis run (reused
    /// points repeat the owner's value — sum over *non-reused* points
    /// for total campaign search effort).
    pub nodes_visited: u64,
    /// VF2 cache hits of the owning synthesis run (repeated on reused
    /// points, like [`nodes_visited`](Self::nodes_visited)). With a
    /// campaign-shared match cache and several workers, which of two
    /// concurrent runs gets the hit is scheduling-dependent — this is
    /// the one provenance field a thread count can perturb.
    pub cache_hits: u64,
    /// Synthesis wall-time, ms (the original run's time when reused).
    pub synth_ms: f64,
    /// Static deadlock-freedom verdict of the synthesized architecture
    /// (schema v4). `None` means "never verified": pre-v4 reports, and
    /// points whose synthesis failed before a model existed.
    pub verify: Option<VerifyRecord>,
    /// The simulated latency-vs-load curve (possibly truncated by the
    /// saturation cutoff).
    pub sweep: Vec<SweepPointRecord>,
    /// `true` when the saturation cutoff stopped the ramp early.
    pub saturated: bool,
    /// Failure description when the flow or simulation failed; such
    /// points never join the front.
    pub error: Option<String>,
}

impl PointRecord {
    /// The record as a single-line JSON object (the streaming form emitted
    /// by [`JsonLinesSink`] and embedded in [`CampaignReport::to_json`]).
    pub fn to_json(&self, kinds: &[ObjectiveKind]) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_kv(&mut s, "scenario_id", &self.scenario_id.to_string());
        push_str_kv(&mut s, "label", &self.label);
        push_str_kv(&mut s, "workload", &self.workload);
        push_kv(&mut s, "nodes", &self.nodes.to_string());
        push_str_kv(&mut s, "engine", &self.engine);
        push_str_kv(&mut s, "synthesis_objective", &self.synthesis_objective);
        push_str_kv(&mut s, "technology", &self.technology);
        push_str_kv(&mut s, "sim", &self.sim);
        push_str_kv(&mut s, "router_fidelity", &self.router_fidelity);
        if let Some(error) = &self.error {
            push_str_kv(&mut s, "error", error);
        } else {
            for (kind, value) in kinds.iter().zip(&self.objectives) {
                push_kv(&mut s, kind.label(), &json_f64(*value));
            }
            push_kv(
                &mut s,
                "on_front",
                if self.on_front { "true" } else { "false" },
            );
        }
        push_kv(
            &mut s,
            "reused_synthesis",
            if self.reused_synthesis {
                "true"
            } else {
                "false"
            },
        );
        push_kv(&mut s, "total_cost", &json_f64(self.total_cost));
        push_kv(&mut s, "nodes_visited", &self.nodes_visited.to_string());
        push_kv(&mut s, "cache_hits", &self.cache_hits.to_string());
        push_kv(&mut s, "synth_ms", &json_f64(self.synth_ms));
        if let Some(verify) = &self.verify {
            let cycle: Vec<String> = verify.cycle.iter().map(|e| json_string(e)).collect();
            let lint: Vec<String> = verify.lint.iter().map(|e| json_string(e)).collect();
            push_kv(
                &mut s,
                "verify",
                &format!(
                    "{{\"deadlock_free\": {}, \"num_vcs\": {}, \"cdg_vertices\": {}, \"cdg_edges\": {}, \"routes_checked\": {}, \"verify_ms\": {}, \"cycle\": [{}], \"lint\": [{}]}}",
                    verify.deadlock_free,
                    verify.num_vcs,
                    verify.cdg_vertices,
                    verify.cdg_edges,
                    verify.routes_checked,
                    json_f64(verify.verify_ms),
                    cycle.join(", "),
                    lint.join(", "),
                ),
            );
        }
        push_kv(
            &mut s,
            "saturated",
            if self.saturated { "true" } else { "false" },
        );
        let sweep: Vec<String> = self
            .sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"rate\": {}, \"latency_cycles\": {}, \"throughput_bits_per_cycle\": {}, \"energy_joules\": {}}}",
                    json_f64(p.rate),
                    json_f64(p.latency_cycles),
                    json_f64(p.throughput_bits_per_cycle),
                    json_f64(p.energy_joules),
                )
            })
            .collect();
        push_kv(&mut s, "sweep", &format!("[{}]", sweep.join(", ")));
        s.push('}');
        s
    }

    /// Parses one record back from the object emitted by
    /// [`to_json`](Self::to_json); `kinds` must match the report's
    /// objective vector (objective values are stored under their labels).
    pub fn from_json_value(v: &JsonValue, kinds: &[ObjectiveKind]) -> Result<PointRecord, String> {
        let error = match v.get("error") {
            Some(e) => Some(
                e.as_str()
                    .ok_or("point 'error' must be a string")?
                    .to_string(),
            ),
            None => None,
        };
        let objectives = if error.is_some() {
            Vec::new()
        } else {
            kinds
                .iter()
                .map(|k| {
                    v.get(k.label())
                        .and_then(parse_f64)
                        .ok_or_else(|| format!("point missing objective '{}'", k.label()))
                })
                .collect::<Result<Vec<f64>, String>>()?
        };
        let sweep = v
            .get("sweep")
            .and_then(JsonValue::as_array)
            .ok_or("point missing 'sweep'")?
            .iter()
            .map(|p| {
                Ok(SweepPointRecord {
                    rate: need_f64(p, "rate")?,
                    latency_cycles: need_f64(p, "latency_cycles")?,
                    throughput_bits_per_cycle: need_f64(p, "throughput_bits_per_cycle")?,
                    energy_joules: need_f64(p, "energy_joules")?,
                })
            })
            .collect::<Result<Vec<SweepPointRecord>, String>>()?;
        Ok(PointRecord {
            scenario_id: need_usize(v, "scenario_id")?,
            label: need_str(v, "label")?,
            workload: need_str(v, "workload")?,
            nodes: need_usize(v, "nodes")?,
            engine: need_str(v, "engine")?,
            synthesis_objective: need_str(v, "synthesis_objective")?,
            technology: need_str(v, "technology")?,
            sim: need_str(v, "sim")?,
            // v5 field; v1–v4 campaigns all ran the ideal router.
            router_fidelity: v
                .get("router_fidelity")
                .and_then(JsonValue::as_str)
                .unwrap_or("ideal")
                .to_string(),
            objectives,
            on_front: v
                .get("on_front")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            reused_synthesis: need_bool(v, "reused_synthesis")?,
            total_cost: need_f64(v, "total_cost")?,
            nodes_visited: need_u64(v, "nodes_visited")?,
            cache_hits: need_u64(v, "cache_hits")?,
            synth_ms: need_f64(v, "synth_ms")?,
            // v4 field; v1–v3 points were never statically verified.
            verify: match v.get("verify") {
                None => None,
                Some(w) => Some(VerifyRecord {
                    deadlock_free: need_bool(w, "deadlock_free")?,
                    num_vcs: need_usize(w, "num_vcs")?,
                    cdg_vertices: need_usize(w, "cdg_vertices")?,
                    cdg_edges: need_usize(w, "cdg_edges")?,
                    routes_checked: need_usize(w, "routes_checked")?,
                    verify_ms: need_f64(w, "verify_ms")?,
                    cycle: need_str_array(w, "cycle")?,
                    lint: need_str_array(w, "lint")?,
                }),
            },
            sweep,
            saturated: need_bool(v, "saturated")?,
            error,
        })
    }
}

/// The folded outcome of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The objective vector's dimensions, in order.
    pub objective_kinds: Vec<ObjectiveKind>,
    /// One record per evaluated scenario, ascending by scenario id. A
    /// full campaign records every grid point; shard and partial reports
    /// hold a subset (use [`point`](Self::point) for id lookup).
    pub points: Vec<PointRecord>,
    /// Scenario ids on the Pareto front, ascending.
    pub front: Vec<usize>,
    /// Campaign worker threads used.
    pub threads: usize,
    /// Full synthesis runs executed *by this run* (carried points keep
    /// their original provenance but add nothing here).
    pub flows_synthesized: usize,
    /// Scenario points that reused a shared synthesis artifact this run.
    pub synthesis_reused: usize,
    /// Records folded in from a prior report instead of being re-run
    /// (resume) or from other shards (merge).
    pub carried_points: usize,
    /// Campaign wall-time, milliseconds.
    pub wall_ms: f64,
    /// Reference-normalized hypervolume of the front (see
    /// [`crate::metrics`]); `0` for an empty front.
    pub hypervolume: f64,
    /// Schott spacing of the distinct normalized front vectors; `0` below
    /// two distinct members.
    pub spread: f64,
    /// Per-graph-size traffic of the campaign-shared match cache,
    /// ascending by vertex count (empty when sharing was disabled).
    pub match_cache: Vec<CacheSizeRecord>,
    /// Adaptive-sampling provenance when this report came from
    /// [`Campaign::run_sampled`](crate::Campaign::run_sampled); `None`
    /// for exhaustive campaigns, merges and resumes.
    pub sampler: Option<SamplerRecord>,
    /// Warm-start provenance when this run loaded a persisted match-cache
    /// file; `None` for cold runs (schema v3).
    pub warm_cache: Option<WarmCacheRecord>,
    /// Fleet provenance when this is the merged report of a coordinated
    /// campaign; `None` otherwise (schema v3).
    pub coordinator: Option<CoordinatorRecord>,
}

impl CampaignReport {
    /// Folds `points` into a report: sorts by scenario id, computes the
    /// Pareto front over the non-failed records, flags members, and fills
    /// the front-quality metrics. Run provenance (threads, counts,
    /// wall-time, cache stats) is zeroed for the caller to fill.
    ///
    /// # Panics
    ///
    /// Panics if two records share a scenario id — partitions and resumes
    /// must be disjoint by construction; a collision means the caller
    /// merged overlapping sources without deduplicating.
    pub fn assemble(objective_kinds: Vec<ObjectiveKind>, mut points: Vec<PointRecord>) -> Self {
        points.sort_by_key(|p| p.scenario_id);
        for pair in points.windows(2) {
            assert_ne!(
                pair[0].scenario_id, pair[1].scenario_id,
                "duplicate records for scenario {}",
                pair[0].scenario_id
            );
        }
        let mut front = ParetoFront::new(objective_kinds.len());
        for p in &points {
            if p.error.is_none() {
                front.offer(p.scenario_id, p.objectives.clone());
            }
        }
        let front_ids = front.indices();
        for p in &mut points {
            p.on_front = front_ids.binary_search(&p.scenario_id).is_ok();
        }
        let metrics = FrontMetrics::of_front(front.members(), &objective_kinds);
        CampaignReport {
            objective_kinds,
            points,
            front: front_ids,
            threads: 0,
            flows_synthesized: 0,
            synthesis_reused: 0,
            carried_points: 0,
            wall_ms: 0.0,
            hypervolume: metrics.hypervolume,
            spread: metrics.spread,
            match_cache: Vec::new(),
            sampler: None,
            warm_cache: None,
            coordinator: None,
        }
    }

    /// The record for scenario `id`, if this report holds one (records
    /// are sorted by id, so this is a binary search).
    pub fn point(&self, id: usize) -> Option<&PointRecord> {
        self.points
            .binary_search_by_key(&id, |p| p.scenario_id)
            .ok()
            .map(|at| &self.points[at])
    }

    /// The records on the Pareto front, in scenario order.
    pub fn front_points(&self) -> impl Iterator<Item = &PointRecord> {
        self.points.iter().filter(|p| p.on_front)
    }

    /// Serializes the full report (hand-rolled, stable key order).
    pub fn to_json(&self) -> String {
        let kinds: Vec<String> = self
            .objective_kinds
            .iter()
            .map(|k| format!("\"{}\"", k.label()))
            .collect();
        let front: Vec<String> = self.front.iter().map(usize::to_string).collect();
        let cache: Vec<String> = self
            .match_cache
            .iter()
            .map(|c| {
                format!(
                    "{{\"vertex_count\": {}, \"hits\": {}, \"misses\": {}, \"warm_hits\": {}}}",
                    c.vertex_count, c.hits, c.misses, c.warm_hits
                )
            })
            .collect();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| format!("    {}", p.to_json(&self.objective_kinds)))
            .collect();
        let sampler = match &self.sampler {
            None => String::new(),
            Some(s) => {
                let rounds: Vec<String> = s
                    .rounds
                    .iter()
                    .map(|r| {
                        // Arm labels embed user-settable axis values
                        // (workload/engine/sim labels) — escape them like
                        // every other string field.
                        let arms: Vec<String> = r.arms.iter().map(|a| json_string(a)).collect();
                        format!(
                            "{{\"round\": {}, \"flows\": {}, \"hypervolume\": {}, \"arms\": [{}]}}",
                            r.round,
                            r.flows,
                            json_f64(r.hypervolume),
                            arms.join(", "),
                        )
                    })
                    .collect();
                format!(
                    "  \"sampler\": {{\"policy\": {}, \"seed\": {}, \"budget\": {}, \"flows_spent\": {}, \"grid_len\": {}, \"rounds\": [{}]}},\n",
                    json_string(&s.policy),
                    s.seed,
                    s.budget,
                    s.flows_spent,
                    s.grid_len,
                    rounds.join(", "),
                )
            }
        };
        let warm_cache = match &self.warm_cache {
            None => String::new(),
            Some(w) => {
                let degraded = match &w.degraded {
                    None => String::new(),
                    Some(reason) => format!(", \"degraded\": {}", json_string(reason)),
                };
                format!(
                    "  \"warm_cache\": {{\"path\": {}, \"loaded_graphs\": {}, \"saved_graphs\": {}{}}},\n",
                    json_string(&w.path),
                    w.loaded_graphs,
                    w.saved_graphs,
                    degraded,
                )
            }
        };
        let coordinator = match &self.coordinator {
            None => String::new(),
            Some(c) => {
                let waves: Vec<String> = c
                    .waves
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"wave\": {}, \"workers\": {}, \"completed\": {}, \"killed\": {}, \"salvaged_points\": {}, \"redealt\": {}}}",
                            w.wave, w.workers, w.completed, w.killed, w.salvaged_points, w.redealt
                        )
                    })
                    .collect();
                format!(
                    "  \"coordinator\": {{\"workers\": {}, \"deadline_ms\": {}, \"waves\": [{}]}},\n",
                    c.workers,
                    json_f64(c.deadline_ms),
                    waves.join(", "),
                )
            }
        };
        format!(
            "{{\n  \"report\": \"noc_explore_campaign\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \"objectives\": [{}],\n  \"threads\": {},\n  \"flows_synthesized\": {},\n  \"synthesis_reused\": {},\n  \"carried_points\": {},\n  \"wall_ms\": {},\n  \"hypervolume\": {},\n  \"spread\": {},\n{}{}{}  \"match_cache\": [{}],\n  \"pareto_front\": [{}],\n  \"points\": [\n{}\n  ]\n}}\n",
            kinds.join(", "),
            self.threads,
            self.flows_synthesized,
            self.synthesis_reused,
            self.carried_points,
            json_f64(self.wall_ms),
            json_f64(self.hypervolume),
            json_f64(self.spread),
            sampler,
            warm_cache,
            coordinator,
            cache.join(", "),
            front.join(", "),
            points.join(",\n"),
        )
    }

    /// Parses a report previously written by [`to_json`](Self::to_json) —
    /// the reader half of the resume/shard story. Round-trips exactly:
    /// records, front, metrics and provenance all survive
    /// `to_json → from_json`.
    ///
    /// Reports are a cross-PR interchange format, so the reader is
    /// explicitly versioned: a missing `schema_version` means **v1** (the
    /// format before versioning existed) and parses normally, while a
    /// version newer than [`SCHEMA_VERSION`] is rejected with a clear
    /// error instead of being silently misparsed.
    pub fn from_json(text: &str) -> Result<CampaignReport, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("malformed report JSON: {e}"))?;
        match v.get("report").and_then(JsonValue::as_str) {
            Some("noc_explore_campaign") => {}
            Some(other) => return Err(format!("not a campaign report: '{other}'")),
            None => return Err("missing 'report' marker".to_string()),
        }
        let version = match v.get("schema_version") {
            None => 1, // pre-versioning reports (PR 3 and earlier)
            Some(n) => n
                .as_u64()
                .ok_or("'schema_version' must be a non-negative integer")?,
        };
        if version > SCHEMA_VERSION {
            return Err(format!(
                "report schema v{version} is newer than this reader understands (v{SCHEMA_VERSION}) \
                 — refusing to guess at unknown fields; re-read it with the noc-explore that wrote it"
            ));
        }
        let objective_kinds = v
            .get("objectives")
            .and_then(JsonValue::as_array)
            .ok_or("missing 'objectives'")?
            .iter()
            .map(|k| {
                let label = k.as_str().ok_or("objective labels must be strings")?;
                ObjectiveKind::from_label(label)
                    .ok_or_else(|| format!("unknown objective '{label}'"))
            })
            .collect::<Result<Vec<ObjectiveKind>, String>>()?;
        let mut points = v
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("missing 'points'")?
            .iter()
            .map(|p| PointRecord::from_json_value(p, &objective_kinds))
            .collect::<Result<Vec<PointRecord>, String>>()?;
        // `point()` binary-searches and resume trusts id lookups, so
        // restore the sorted-by-id invariant (hand-edited or externally
        // reordered files) and reject outright duplicates.
        points.sort_by_key(|p| p.scenario_id);
        for pair in points.windows(2) {
            if pair[0].scenario_id == pair[1].scenario_id {
                return Err(format!(
                    "duplicate records for scenario {}",
                    pair[0].scenario_id
                ));
            }
        }
        let front = v
            .get("pareto_front")
            .and_then(JsonValue::as_array)
            .ok_or("missing 'pareto_front'")?
            .iter()
            .map(|id| {
                id.as_usize()
                    .ok_or("front ids must be integers".to_string())
            })
            .collect::<Result<Vec<usize>, String>>()?;
        let match_cache = match v.get("match_cache") {
            None => Vec::new(),
            Some(rows) => rows
                .as_array()
                .ok_or("'match_cache' must be an array")?
                .iter()
                .map(|row| {
                    Ok(CacheSizeRecord {
                        vertex_count: need_usize(row, "vertex_count")?,
                        hits: need_u64(row, "hits")?,
                        misses: need_u64(row, "misses")?,
                        // v3 field; v1/v2 rows predate warm starts.
                        warm_hits: row
                            .get("warm_hits")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                    })
                })
                .collect::<Result<Vec<CacheSizeRecord>, String>>()?,
        };
        let warm_cache = match v.get("warm_cache") {
            None => None,
            Some(w) => Some(WarmCacheRecord {
                path: need_str(w, "path")?,
                loaded_graphs: need_usize(w, "loaded_graphs")?,
                saved_graphs: need_usize(w, "saved_graphs")?,
                degraded: match w.get("degraded") {
                    None => None,
                    Some(reason) => Some(
                        reason
                            .as_str()
                            .ok_or("'degraded' must be a string")?
                            .to_string(),
                    ),
                },
            }),
        };
        let coordinator = match v.get("coordinator") {
            None => None,
            Some(c) => Some(CoordinatorRecord {
                workers: need_usize(c, "workers")?,
                deadline_ms: need_f64(c, "deadline_ms")?,
                waves: c
                    .get("waves")
                    .and_then(JsonValue::as_array)
                    .ok_or("'coordinator' missing 'waves'")?
                    .iter()
                    .map(|w| {
                        Ok(WaveRecord {
                            wave: need_usize(w, "wave")?,
                            workers: need_usize(w, "workers")?,
                            completed: need_usize(w, "completed")?,
                            killed: need_usize(w, "killed")?,
                            salvaged_points: need_usize(w, "salvaged_points")?,
                            redealt: need_usize(w, "redealt")?,
                        })
                    })
                    .collect::<Result<Vec<WaveRecord>, String>>()?,
            }),
        };
        let sampler = match v.get("sampler") {
            None => None,
            Some(s) => {
                let rounds = s
                    .get("rounds")
                    .and_then(JsonValue::as_array)
                    .ok_or("'sampler' missing 'rounds'")?
                    .iter()
                    .map(|r| {
                        Ok(SamplerRoundRecord {
                            round: need_usize(r, "round")?,
                            flows: need_usize(r, "flows")?,
                            hypervolume: need_f64(r, "hypervolume")?,
                            arms: r
                                .get("arms")
                                .and_then(JsonValue::as_array)
                                .ok_or("sampler round missing 'arms'")?
                                .iter()
                                .map(|a| {
                                    a.as_str()
                                        .map(str::to_string)
                                        .ok_or_else(|| "arm labels must be strings".to_string())
                                })
                                .collect::<Result<Vec<String>, String>>()?,
                        })
                    })
                    .collect::<Result<Vec<SamplerRoundRecord>, String>>()?;
                Some(SamplerRecord {
                    policy: need_str(s, "policy")?,
                    seed: need_u64(s, "seed")?,
                    budget: need_usize(s, "budget")?,
                    flows_spent: need_usize(s, "flows_spent")?,
                    grid_len: need_usize(s, "grid_len")?,
                    rounds,
                })
            }
        };
        Ok(CampaignReport {
            objective_kinds,
            points,
            front,
            threads: need_usize(&v, "threads")?,
            flows_synthesized: need_usize(&v, "flows_synthesized")?,
            synthesis_reused: need_usize(&v, "synthesis_reused")?,
            carried_points: v
                .get("carried_points")
                .and_then(JsonValue::as_usize)
                .unwrap_or(0),
            wall_ms: need_f64(&v, "wall_ms")?,
            hypervolume: v.get("hypervolume").and_then(parse_f64).unwrap_or(0.0),
            spread: v.get("spread").and_then(parse_f64).unwrap_or(0.0),
            match_cache,
            sampler,
            warm_cache,
            coordinator,
        })
    }

    /// Recovers a partial report from a [`JsonLinesSink`] stream — the
    /// maximally complete artifact a **killed** campaign leaves behind
    /// (the sink flushes every line and again on drop). A kill can still
    /// land *mid-write*, so a malformed **final** line is dropped rather
    /// than failing the whole recovery; malformed JSON anywhere earlier
    /// is a real corruption and errors. Duplicate ids keep the first
    /// occurrence; the front and metrics are recomputed from the
    /// recovered records, provenance is unknowable and left `0`.
    pub fn from_json_lines(text: &str, kinds: &[ObjectiveKind]) -> Result<CampaignReport, String> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, line)| (i + 1, line.trim()))
            .filter(|(_, line)| !line.is_empty())
            .collect();
        let mut points: Vec<PointRecord> = Vec::new();
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (at, &(lineno, line)) in lines.iter().enumerate() {
            let v = match JsonValue::parse(line) {
                Ok(v) => v,
                // Truncated tail from a kill mid-write: salvage the rest.
                Err(_) if at + 1 == lines.len() => break,
                Err(e) => return Err(format!("line {lineno}: malformed JSON: {e}")),
            };
            let record = PointRecord::from_json_value(&v, kinds)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            if seen.insert(record.scenario_id) {
                points.push(record);
            }
        }
        Ok(CampaignReport::assemble(kinds.to_vec(), points))
    }
}

/// Receives campaign results as they are produced.
///
/// `point` fires once per completed scenario, in **completion order** —
/// nondeterministic under a multi-threaded campaign, though each record's
/// content is deterministic. `finish` fires once with the assembled
/// report (records in scenario order, front flags filled in).
pub trait ResultSink: Send {
    /// A scenario point finished evaluating.
    fn point(&mut self, record: &PointRecord);
    /// The campaign completed.
    fn finish(&mut self, _report: &CampaignReport) {}
}

/// Discards everything ([`Campaign::run`](crate::Campaign::run) uses it).
#[derive(Debug, Default)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn point(&mut self, _record: &PointRecord) {}
}

/// Streams each completed point as one JSON object per line (JSON Lines),
/// flushing after every record — and again on `finish` and on drop — so a
/// killed campaign leaves a maximally complete partial stream behind for
/// [`CampaignReport::from_json_lines`] to resume from.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: W,
    kinds: Vec<ObjectiveKind>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; `kinds` must match the campaign's objective vector.
    pub fn new(writer: W, kinds: Vec<ObjectiveKind>) -> Self {
        JsonLinesSink { writer, kinds }
    }
}

impl<W: Write + Send> ResultSink for JsonLinesSink<W> {
    fn point(&mut self, record: &PointRecord) {
        let _ = writeln!(self.writer, "{}", record.to_json(&self.kinds));
        let _ = self.writer.flush();
    }

    fn finish(&mut self, _report: &CampaignReport) {
        let _ = self.writer.flush();
    }
}

impl<W: Write + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// JSON-formats a float (`null` for non-finite values, which JSON cannot
/// represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The reader of [`json_f64`]'s output: numbers parse as themselves,
/// `null` parses back to `NaN` (what the writers emit for non-finite
/// values — sign and infiniteness are not preserved, matching the lossy
/// write).
fn parse_f64(v: &JsonValue) -> Option<f64> {
    if v.is_null() {
        Some(f64::NAN)
    } else {
        v.as_f64()
    }
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(parse_f64)
        .ok_or_else(|| format!("missing number '{key}'"))
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer '{key}'"))
}

fn need_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing integer '{key}'"))
}

fn need_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

fn need_str_array(v: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing array '{key}'"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("'{key}' entries must be strings"))
        })
        .collect()
}

fn need_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing bool '{key}'"))
}

fn push_kv(s: &mut String, key: &str, raw_value: &str) {
    if !s.ends_with('{') {
        s.push_str(", ");
    }
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(raw_value);
}

/// `value` as a quoted, escaped JSON string literal.
fn json_string(value: &str) -> String {
    let escaped: String = value
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}

fn push_str_kv(s: &mut String, key: &str, value: &str) {
    push_kv(s, key, &json_string(value));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PointRecord {
        PointRecord {
            scenario_id: 3,
            label: "fig5/dfs/Links/cmos_180nm/fp1/base_load".into(),
            workload: "fig5".into(),
            nodes: 8,
            engine: "dfs".into(),
            synthesis_objective: "Links".into(),
            technology: "cmos_180nm".into(),
            sim: "base_load".into(),
            router_fidelity: "ideal".into(),
            objectives: vec![1.5e-9, 12.25, 16.0],
            on_front: true,
            reused_synthesis: false,
            total_cost: 17.0,
            nodes_visited: 42,
            cache_hits: 7,
            synth_ms: 0.5,
            verify: Some(VerifyRecord {
                deadlock_free: true,
                num_vcs: 2,
                cdg_vertices: 9,
                cdg_edges: 6,
                routes_checked: 12,
                verify_ms: 0.25,
                cycle: Vec::new(),
                lint: Vec::new(),
            }),
            sweep: vec![SweepPointRecord {
                rate: 0.05,
                latency_cycles: 12.25,
                throughput_bits_per_cycle: 3.0,
                energy_joules: 1.5e-9,
            }],
            saturated: false,
            error: None,
        }
    }

    fn report() -> CampaignReport {
        let mut failed = record();
        failed.scenario_id = 4;
        failed.error = Some("no legal decomposition".into());
        failed.objectives.clear();
        failed.total_cost = f64::NAN;
        let mut r =
            CampaignReport::assemble(ObjectiveKind::DEFAULT.to_vec(), vec![record(), failed]);
        r.threads = 2;
        r.flows_synthesized = 1;
        r.synthesis_reused = 1;
        r.carried_points = 1;
        r.wall_ms = 12.5;
        r.match_cache = vec![
            CacheSizeRecord {
                vertex_count: 8,
                hits: 3,
                misses: 10,
                warm_hits: 2,
            },
            CacheSizeRecord {
                vertex_count: 10,
                hits: 1,
                misses: 9,
                warm_hits: 0,
            },
        ];
        r
    }

    #[test]
    fn point_json_is_well_formed() {
        let json = record().to_json(&ObjectiveKind::DEFAULT);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"energy_joules\": 0.0000000015"));
        assert!(json.contains("\"on_front\": true"));
        assert!(json.contains("\"sweep\": [{\"rate\": 0.05"));
        assert!(!json.contains("error"));
    }

    #[test]
    fn point_round_trips_exactly() {
        let original = record();
        let json = original.to_json(&ObjectiveKind::DEFAULT);
        let parsed = PointRecord::from_json_value(
            &JsonValue::parse(&json).unwrap(),
            &ObjectiveKind::DEFAULT,
        )
        .unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn failed_points_serialize_the_error_instead_of_objectives() {
        let mut r = record();
        r.error = Some("no legal decomposition".into());
        r.objectives.clear();
        let json = r.to_json(&ObjectiveKind::DEFAULT);
        assert!(json.contains("\"error\": \"no legal decomposition\""));
        assert!(!json.contains("on_front"));
        // And the parser accepts the error shape (NaN provenance fields
        // break PartialEq, so compare the load-bearing parts).
        let parsed = PointRecord::from_json_value(
            &JsonValue::parse(&json).unwrap(),
            &ObjectiveKind::DEFAULT,
        )
        .unwrap();
        assert_eq!(parsed.error.as_deref(), Some("no legal decomposition"));
        assert!(parsed.objectives.is_empty());
        assert!(!parsed.on_front);
    }

    #[test]
    fn report_round_trips() {
        let original = report();
        let parsed = CampaignReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed.objective_kinds, original.objective_kinds);
        assert_eq!(parsed.front, original.front);
        assert_eq!(parsed.points[0], original.points[0]);
        assert_eq!(parsed.points[1].error, original.points[1].error);
        assert_eq!(
            (
                parsed.threads,
                parsed.flows_synthesized,
                parsed.synthesis_reused
            ),
            (2, 1, 1)
        );
        assert_eq!(parsed.carried_points, 1);
        assert_eq!(parsed.wall_ms, 12.5);
        assert_eq!(parsed.hypervolume, original.hypervolume);
        assert_eq!(parsed.spread, original.spread);
        assert_eq!(parsed.match_cache, original.match_cache);
        // And writing the parsed report reproduces the bytes.
        assert_eq!(parsed.to_json(), original.to_json());
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(CampaignReport::from_json("{}").is_err());
        assert!(CampaignReport::from_json("{\"report\": \"other\"}").is_err());
        assert!(CampaignReport::from_json("not json").is_err());
    }

    #[test]
    fn reports_carry_the_schema_version() {
        let json = report().to_json();
        assert!(
            json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
            "{json}"
        );
    }

    #[test]
    fn versionless_v1_reports_still_parse() {
        // A PR 3-era report predates `schema_version`; strip the field to
        // reproduce one and check the compatibility path keeps it
        // resumable.
        let original = report();
        let v1 = original
            .to_json()
            .replace(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"), "");
        assert!(!v1.contains("schema_version"));
        let parsed = CampaignReport::from_json(&v1).unwrap();
        assert_eq!(parsed.front, original.front);
        assert_eq!(parsed.points[0], original.points[0]);
    }

    #[test]
    fn future_schema_versions_are_rejected_with_a_clear_error() {
        let future = report().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 99",
        );
        let err = CampaignReport::from_json(&future).unwrap_err();
        assert!(err.contains("v99"), "{err}");
        assert!(err.contains(&format!("v{SCHEMA_VERSION}")), "{err}");

        let garbage = report().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": \"two\"",
        );
        let err = CampaignReport::from_json(&garbage).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn sampler_provenance_round_trips() {
        let mut original = report();
        original.sampler = Some(SamplerRecord {
            policy: "bandit".into(),
            seed: 7,
            budget: 8,
            flows_spent: 8,
            grid_len: 12,
            rounds: vec![
                SamplerRoundRecord {
                    round: 0,
                    flows: 4,
                    hypervolume: 0.9,
                    arms: vec!["workload=fig5".into(), "sim=ramp".into()],
                },
                SamplerRoundRecord {
                    round: 1,
                    flows: 4,
                    hypervolume: 0.95,
                    arms: vec!["workload=tgff_n8_s8".into()],
                },
            ],
        });
        let parsed = CampaignReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed.sampler, original.sampler);
        // And writing the parsed report reproduces the bytes.
        assert_eq!(parsed.to_json(), original.to_json());
    }

    #[test]
    fn warm_cache_and_coordinator_provenance_round_trip() {
        let mut original = report();
        original.warm_cache = Some(WarmCacheRecord {
            path: "cache/match_cache.json".into(),
            loaded_graphs: 41,
            saved_graphs: 58,
            degraded: None,
        });
        original.coordinator = Some(CoordinatorRecord {
            workers: 2,
            deadline_ms: 30000.0,
            waves: vec![
                WaveRecord {
                    wave: 0,
                    workers: 2,
                    completed: 1,
                    killed: 1,
                    salvaged_points: 2,
                    redealt: 4,
                },
                WaveRecord {
                    wave: 1,
                    workers: 1,
                    completed: 1,
                    killed: 0,
                    salvaged_points: 0,
                    redealt: 0,
                },
            ],
        });
        let parsed = CampaignReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed.warm_cache, original.warm_cache);
        assert_eq!(parsed.coordinator, original.coordinator);
        assert_eq!(parsed.coordinator.as_ref().unwrap().killed(), 1);
        assert_eq!(parsed.coordinator.as_ref().unwrap().redealt(), 4);
        // And writing the parsed report reproduces the bytes.
        assert_eq!(parsed.to_json(), original.to_json());

        // A degraded warm start keeps its reason through the round trip.
        original.warm_cache.as_mut().unwrap().degraded = Some("truncated \"file\"".into());
        let parsed = CampaignReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed.warm_cache, original.warm_cache);
    }

    #[test]
    fn v2_cache_rows_without_warm_hits_parse_as_zero() {
        // A v2-era report predates warm_hits on match_cache rows; strip
        // the field (and claim v2) to reproduce one.
        let original = report();
        let v2 = original
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 2",
            )
            .replace(", \"warm_hits\": 2}", "}")
            .replace(", \"warm_hits\": 0}", "}");
        assert!(!v2.contains("warm_hits"));
        let parsed = CampaignReport::from_json(&v2).unwrap();
        assert_eq!(parsed.match_cache.len(), 2);
        assert!(parsed.match_cache.iter().all(|c| c.warm_hits == 0));
        assert_eq!(parsed.match_cache[0].hits, 3);
        assert!(parsed.warm_cache.is_none());
        assert!(parsed.coordinator.is_none());
    }

    #[test]
    fn v3_points_without_verify_parse_as_none() {
        // A v3-era report predates the per-point verify verdict; strip
        // the object (and claim v3) to reproduce one.
        let original = report();
        let verify_obj = ", \"verify\": {\"deadlock_free\": true, \"num_vcs\": 2, \
                          \"cdg_vertices\": 9, \"cdg_edges\": 6, \"routes_checked\": 12, \
                          \"verify_ms\": 0.25, \"cycle\": [], \"lint\": []}";
        let v3 = original
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 3",
            )
            .replace(verify_obj, "");
        assert!(!v3.contains("\"verify\""), "strip failed: {v3}");
        let parsed = CampaignReport::from_json(&v3).unwrap();
        assert!(parsed.points.iter().all(|p| p.verify.is_none()));
        // Everything else still round-trips from the v3 body.
        assert_eq!(parsed.front, original.front);
        assert_eq!(parsed.points[0].objectives, original.points[0].objectives);
    }

    #[test]
    fn v4_points_without_router_fidelity_parse_as_ideal() {
        // A v4-era report predates the router-fidelity axis; strip the
        // field (and claim v4) to reproduce one. Every pre-v5 campaign
        // ran the ideal router, so that is what absence means.
        let original = report();
        let v4 = original
            .to_json()
            .replace(
                &format!("\"schema_version\": {SCHEMA_VERSION}"),
                "\"schema_version\": 4",
            )
            .replace(", \"router_fidelity\": \"ideal\"", "");
        assert!(!v4.contains("router_fidelity"), "strip failed: {v4}");
        let parsed = CampaignReport::from_json(&v4).unwrap();
        assert!(parsed.points.iter().all(|p| p.router_fidelity == "ideal"));
        assert_eq!(parsed.front, original.front);
        assert_eq!(parsed.points[0].objectives, original.points[0].objectives);
    }

    #[test]
    fn verify_witness_round_trips_with_escaping() {
        let mut original = report();
        original.points[0].verify = Some(VerifyRecord {
            deadlock_free: false,
            num_vcs: 1,
            cdg_vertices: 4,
            cdg_edges: 4,
            routes_checked: 4,
            verify_ms: 0.125,
            cycle: vec![
                "0->1@vc0 => 1->2@vc0 via 0->2 [assigned]".into(),
                "witness with \"quotes\"\nand newlines".into(),
            ],
            lint: vec!["route 1->1 in set 'assigned' has bad endpoints".into()],
        });
        let json = original.to_json();
        assert!(json.contains("\"deadlock_free\": false"));
        let parsed = CampaignReport::from_json(&json).unwrap();
        assert_eq!(parsed.points[0].verify, original.points[0].verify);
        assert_eq!(parsed.to_json(), json);
        assert_eq!(
            parsed.points[0].verify.as_ref().unwrap().summary(),
            "cyclic dependency: 0->1@vc0 => 1->2@vc0 via 0->2 [assigned]"
        );
    }

    #[test]
    fn sampler_arm_labels_are_escaped() {
        // Arm labels embed user-settable axis labels, which can contain
        // JSON-hostile characters.
        let mut original = report();
        original.sampler = Some(SamplerRecord {
            policy: "bandit".into(),
            seed: 1,
            budget: 2,
            flows_spent: 2,
            grid_len: 4,
            rounds: vec![SamplerRoundRecord {
                round: 0,
                flows: 2,
                hypervolume: 0.5,
                arms: vec!["sim=ramp\"hot\"".into(), "workload=a\\b\nc".into()],
            }],
        });
        let parsed = CampaignReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed.sampler, original.sampler);
    }

    #[test]
    fn assemble_computes_front_and_metrics() {
        let mut a = record();
        a.scenario_id = 0;
        let mut b = record();
        b.scenario_id = 1;
        b.objectives = vec![2.0e-9, 20.0, 20.0]; // dominated by a
        let r = CampaignReport::assemble(ObjectiveKind::DEFAULT.to_vec(), vec![b, a]);
        assert_eq!(r.front, vec![0]);
        assert!(r.points[0].on_front && !r.points[1].on_front);
        assert!(r.hypervolume > 0.0);
        assert_eq!(r.point(1).unwrap().scenario_id, 1);
        assert!(r.point(7).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate records for scenario")]
    fn assemble_rejects_duplicate_ids() {
        CampaignReport::assemble(ObjectiveKind::DEFAULT.to_vec(), vec![record(), record()]);
    }

    #[test]
    fn string_escaping_handles_quotes_and_newlines() {
        let mut s = String::from("{");
        push_str_kv(&mut s, "k", "a\"b\\c\nd");
        assert_eq!(s, "{\"k\": \"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_point() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf, ObjectiveKind::DEFAULT.to_vec());
            sink.point(&record());
            sink.point(&record());
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn json_lines_stream_recovers_into_a_partial_report() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf, ObjectiveKind::DEFAULT.to_vec());
            let mut other = record();
            other.scenario_id = 9;
            other.objectives = vec![1.0e-9, 30.0, 20.0];
            sink.point(&record());
            sink.point(&other);
            sink.point(&record()); // duplicate id: first occurrence wins
        }
        let text = String::from_utf8(buf).unwrap();
        let partial = CampaignReport::from_json_lines(&text, &ObjectiveKind::DEFAULT).unwrap();
        assert_eq!(partial.points.len(), 2);
        assert_eq!(partial.front, vec![3, 9]); // incomparable: both stay
        assert_eq!(partial.points[0], record());
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let mut other = record();
        other.scenario_id = 9;
        let full = format!(
            "{}\n{}\n",
            record().to_json(&ObjectiveKind::DEFAULT),
            other.to_json(&ObjectiveKind::DEFAULT),
        );
        // A kill mid-write leaves the last record half-flushed.
        let cut = full.len() - 40;
        let partial =
            CampaignReport::from_json_lines(&full[..cut], &ObjectiveKind::DEFAULT).unwrap();
        assert_eq!(partial.points.len(), 1);
        assert_eq!(partial.points[0].scenario_id, 3);
        // But garbage *before* the end is real corruption.
        let corrupted = format!("not json\n{}", record().to_json(&ObjectiveKind::DEFAULT));
        let err = CampaignReport::from_json_lines(&corrupted, &ObjectiveKind::DEFAULT).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
