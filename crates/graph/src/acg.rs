//! Application Characterization Graph (ACG).
//!
//! Section 4 of the paper: "The application is specified by a graph
//! `G(V, E)`, called Application Characterization Graph (ACG), where each
//! vertex represents a core, and the directed edge `e_ij` characterizes the
//! data transfer from vertex `i` to vertex `j`. The communication volume and
//! the required bandwidth from vertex `i` to vertex `j` are denoted by
//! `v(e_ij)` and `b(e_ij)`."

use std::collections::BTreeMap;

use crate::{DiGraph, Edge, GraphError, NodeId, Result};

/// Communication demand annotated on one ACG edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeDemand {
    /// Communication volume `v(e)` in bits transferred per application
    /// iteration (e.g. per encrypted block for AES).
    pub volume: f64,
    /// Required bandwidth `b(e)` in bits/second.
    pub bandwidth: f64,
}

impl EdgeDemand {
    /// Creates a demand with the given volume and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is negative or NaN.
    pub fn new(volume: f64, bandwidth: f64) -> Self {
        assert!(
            volume >= 0.0 && volume.is_finite(),
            "volume must be finite and >= 0"
        );
        assert!(
            bandwidth >= 0.0 && bandwidth.is_finite(),
            "bandwidth must be finite and >= 0"
        );
        EdgeDemand { volume, bandwidth }
    }

    /// A demand with the given volume and zero explicit bandwidth
    /// requirement.
    pub fn from_volume(volume: f64) -> Self {
        EdgeDemand::new(volume, 0.0)
    }
}

impl Default for EdgeDemand {
    /// Unit volume, no bandwidth requirement.
    fn default() -> Self {
        EdgeDemand::new(1.0, 0.0)
    }
}

/// Application Characterization Graph: cores plus annotated communication
/// demands.
///
/// Construct with [`AcgBuilder`]:
///
/// ```
/// use noc_graph::Acg;
///
/// let acg = Acg::builder(3)
///     .name(0, "cpu")
///     .name(1, "dsp")
///     .name(2, "mem")
///     .demand(0, 1, 128.0, 1.0e6)
///     .demand(1, 2, 64.0, 0.5e6)
///     .build();
/// assert_eq!(acg.core_count(), 3);
/// assert_eq!(acg.total_volume(), 192.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Acg {
    graph: DiGraph,
    demands: BTreeMap<Edge, EdgeDemand>,
    names: Vec<String>,
}

impl Acg {
    /// Starts building an ACG over `cores` cores.
    pub fn builder(cores: usize) -> AcgBuilder {
        AcgBuilder {
            graph: DiGraph::new(cores),
            demands: BTreeMap::new(),
            names: (0..cores).map(|i| format!("core{i}")).collect(),
        }
    }

    /// Builds an ACG from a plain graph with every edge given `demand`.
    pub fn from_graph_uniform(graph: DiGraph, demand: EdgeDemand) -> Self {
        let demands = graph.edges().map(|e| (e, demand)).collect();
        let names = (0..graph.node_count())
            .map(|i| format!("core{i}"))
            .collect();
        Acg {
            graph,
            demands,
            names,
        }
    }

    /// Number of cores (vertices).
    pub fn core_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying directed graph (the decomposition input).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Name of core `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn core_name(&self, v: NodeId) -> &str {
        &self.names[v.index()]
    }

    /// Demand of edge `src -> dst`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEdge`] if the ACG lacks that edge.
    pub fn demand(&self, src: NodeId, dst: NodeId) -> Result<EdgeDemand> {
        self.demands
            .get(&Edge::new(src, dst))
            .copied()
            .ok_or(GraphError::MissingEdge(src, dst))
    }

    /// Volume `v(e)` of edge `src -> dst`, zero when absent.
    pub fn volume(&self, src: NodeId, dst: NodeId) -> f64 {
        self.demands
            .get(&Edge::new(src, dst))
            .map_or(0.0, |d| d.volume)
    }

    /// Bandwidth `b(e)` of edge `src -> dst`, zero when absent.
    pub fn bandwidth(&self, src: NodeId, dst: NodeId) -> f64 {
        self.demands
            .get(&Edge::new(src, dst))
            .map_or(0.0, |d| d.bandwidth)
    }

    /// Iterates over `(edge, demand)` pairs in lexicographic edge order.
    pub fn demands(&self) -> impl Iterator<Item = (Edge, EdgeDemand)> + '_ {
        self.demands.iter().map(|(&e, &d)| (e, d))
    }

    /// Sum of all edge volumes.
    pub fn total_volume(&self) -> f64 {
        self.demands.values().map(|d| d.volume).sum()
    }

    /// Sum of all bandwidth requirements.
    pub fn total_bandwidth(&self) -> f64 {
        self.demands.values().map(|d| d.bandwidth).sum()
    }
}

/// Builder for [`Acg`]; see [`Acg::builder`].
#[derive(Debug, Clone)]
pub struct AcgBuilder {
    graph: DiGraph,
    demands: BTreeMap<Edge, EdgeDemand>,
    names: Vec<String>,
}

impl AcgBuilder {
    /// Names core `core`; cores default to `core<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of bounds.
    pub fn name(mut self, core: usize, name: impl Into<String>) -> Self {
        self.names[core] = name.into();
        self
    }

    /// Adds (or overwrites) the edge `src -> dst` with the given volume and
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are invalid (out of bounds or equal) or the
    /// quantities are negative; use [`AcgBuilder::try_demand`] to handle
    /// errors.
    pub fn demand(self, src: usize, dst: usize, volume: f64, bandwidth: f64) -> Self {
        self.try_demand(src, dst, volume, bandwidth)
            .unwrap_or_else(|e| panic!("AcgBuilder::demand: {e}"))
    }

    /// Fallible version of [`AcgBuilder::demand`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] or [`GraphError::SelfLoop`].
    pub fn try_demand(
        mut self,
        src: usize,
        dst: usize,
        volume: f64,
        bandwidth: f64,
    ) -> Result<Self> {
        let (s, d) = (NodeId(src), NodeId(dst));
        self.graph.try_add_edge(s, d)?;
        self.demands
            .insert(Edge::new(s, d), EdgeDemand::new(volume, bandwidth));
        Ok(self)
    }

    /// Adds an edge with the given volume and no bandwidth requirement.
    ///
    /// # Panics
    ///
    /// Same conditions as [`AcgBuilder::demand`].
    pub fn volume(self, src: usize, dst: usize, volume: f64) -> Self {
        self.demand(src, dst, volume, 0.0)
    }

    /// Finalizes the ACG.
    pub fn build(self) -> Acg {
        Acg {
            graph: self.graph,
            demands: self.demands,
            names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let acg = Acg::builder(4)
            .name(0, "alpha")
            .demand(0, 1, 10.0, 2.0)
            .demand(1, 2, 20.0, 4.0)
            .volume(2, 3, 5.0)
            .build();
        assert_eq!(acg.core_count(), 4);
        assert_eq!(acg.core_name(NodeId(0)), "alpha");
        assert_eq!(acg.core_name(NodeId(1)), "core1");
        assert_eq!(acg.graph().edge_count(), 3);
        assert_eq!(acg.volume(NodeId(1), NodeId(2)), 20.0);
        assert_eq!(acg.bandwidth(NodeId(1), NodeId(2)), 4.0);
        assert_eq!(acg.bandwidth(NodeId(2), NodeId(3)), 0.0);
        assert_eq!(acg.total_volume(), 35.0);
        assert_eq!(acg.total_bandwidth(), 6.0);
    }

    #[test]
    fn missing_edge_has_zero_volume_and_error_demand() {
        let acg = Acg::builder(2).volume(0, 1, 1.0).build();
        assert_eq!(acg.volume(NodeId(1), NodeId(0)), 0.0);
        assert_eq!(
            acg.demand(NodeId(1), NodeId(0)),
            Err(GraphError::MissingEdge(NodeId(1), NodeId(0)))
        );
    }

    #[test]
    fn overwriting_demand_keeps_latest() {
        let acg = Acg::builder(2)
            .demand(0, 1, 1.0, 1.0)
            .demand(0, 1, 9.0, 3.0)
            .build();
        assert_eq!(acg.volume(NodeId(0), NodeId(1)), 9.0);
        assert_eq!(acg.graph().edge_count(), 1);
    }

    #[test]
    fn try_demand_propagates_graph_errors() {
        let r = Acg::builder(2).try_demand(0, 0, 1.0, 1.0);
        assert!(matches!(r, Err(GraphError::SelfLoop(_))));
        let r = Acg::builder(2).try_demand(0, 7, 1.0, 1.0);
        assert!(matches!(r, Err(GraphError::NodeOutOfBounds { .. })));
    }

    #[test]
    #[should_panic(expected = "volume must be finite")]
    fn negative_volume_panics() {
        EdgeDemand::new(-1.0, 0.0);
    }

    #[test]
    fn uniform_from_graph() {
        let g = DiGraph::cycle(3);
        let acg = Acg::from_graph_uniform(g, EdgeDemand::from_volume(7.0));
        assert_eq!(acg.total_volume(), 21.0);
        assert_eq!(acg.demands().count(), 3);
    }

    #[test]
    fn default_demand_is_unit_volume() {
        let d = EdgeDemand::default();
        assert_eq!(d.volume, 1.0);
        assert_eq!(d.bandwidth, 0.0);
    }
}
