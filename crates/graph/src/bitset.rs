//! A compact fixed-capacity bit set used for adjacency rows.
//!
//! NoC application graphs are small (tens of vertices), so a dense bit-set
//! adjacency representation gives O(1) edge queries and very fast VF2
//! feasibility checks via word-parallel intersection counts.

/// A fixed-capacity set of `usize` values backed by `u64` words.
///
/// The capacity is chosen at construction and never grows; inserting an
/// out-of-range value panics. All operations are O(capacity / 64) or better.
///
/// # Examples
///
/// ```
/// use noc_graph::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Returns the capacity (exclusive upper bound on storable values).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= self.capacity()`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bitset insert out of range: {value} >= {}",
            self.capacity
        );
        let (w, b) = (value / 64, value % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`, returning `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set holds no values.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every value.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of values present in both `self` and `other`.
    ///
    /// Sets of different capacities are compared over the shorter word list.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place intersection with `other`: `self` keeps only the values
    /// also present in `other`. Word-parallel; values of `other` beyond
    /// `self`'s capacity are ignored (they cannot be in `self` anyway).
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_graph::BitSet;
    ///
    /// let mut a: BitSet = [1usize, 2, 70].into_iter().collect();
    /// let b: BitSet = [2usize, 3, 70].into_iter().collect();
    /// a.intersect_with(&b);
    /// assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 70]);
    /// ```
    pub fn intersect_with(&mut self, other: &BitSet) {
        let common = self.words.len().min(other.words.len());
        for (a, b) in self.words[..common].iter_mut().zip(&other.words) {
            *a &= b;
        }
        for a in &mut self.words[common..] {
            *a = 0;
        }
    }

    /// Overwrites `self`'s contents with `other`'s.
    ///
    /// # Panics
    ///
    /// Panics if `other` holds values beyond `self`'s capacity (i.e. has
    /// more backing words with any of the extra ones nonzero).
    pub fn copy_from(&mut self, other: &BitSet) {
        assert!(
            other.words.len() <= self.words.len()
                || other.words[self.words.len()..].iter().all(|&w| w == 0),
            "bitset copy would overflow capacity"
        );
        let common = self.words.len().min(other.words.len());
        self.words[..common].copy_from_slice(&other.words[..common]);
        for a in &mut self.words[common..] {
            *a = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` has values beyond `self`'s capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert!(
            other.words.len() <= self.words.len()
                || other.words[self.words.len()..].iter().all(|&w| w == 0),
            "bitset union would overflow capacity"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates over the values in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words, least-significant word first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// A capacity-independent, hashable key for the set's *contents*.
    ///
    /// [`BitSet`]'s derived `Eq`/`Hash` include the capacity, so two sets
    /// holding the same values at different capacities compare unequal.
    /// The stable key trims trailing zero words, making it a function of
    /// the member values alone — the property a cache keyed by "which
    /// edges remain" needs (see the decomposition engine's match cache).
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_graph::BitSet;
    ///
    /// let mut small = BitSet::new(10);
    /// let mut large = BitSet::new(1000);
    /// small.insert(3);
    /// large.insert(3);
    /// assert_ne!(small, large); // capacities differ
    /// assert_eq!(small.stable_key(), large.stable_key()); // contents agree
    /// ```
    pub fn stable_key(&self) -> BitSetKey {
        let mut end = self.words.len();
        while end > 0 && self.words[end - 1] == 0 {
            end -= 1;
        }
        BitSetKey(self.words[..end].to_vec().into_boxed_slice())
    }
}

/// A capacity-independent content key produced by [`BitSet::stable_key`];
/// implements `Hash`/`Eq`, so it can key hash maps (e.g. the decomposition
/// engine's VF2 match cache).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSetKey(Box<[u64]>);

impl BitSetKey {
    /// The trimmed backing words, least-significant word first.
    pub fn words(&self) -> &[u64] {
        &self.0
    }

    /// Rebuilds a key from backing words (least-significant first),
    /// trimming trailing zero words so the result is canonical — the
    /// inverse of [`words`](Self::words), used when keys are restored
    /// from a persisted cache file.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_graph::{BitSet, BitSetKey};
    ///
    /// let key = BitSet::from_iter([3usize, 64]).stable_key();
    /// assert_eq!(BitSetKey::from_words(key.words().to_vec()), key);
    /// // Trailing zero words never distinguish keys.
    /// assert_eq!(BitSetKey::from_words(vec![8, 1, 0, 0]).words(), &[8, 1]);
    /// ```
    pub fn from_words(mut words: Vec<u64>) -> BitSetKey {
        while words.last() == Some(&0) {
            words.pop();
        }
        BitSetKey(words.into_boxed_slice())
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the largest value seen.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// Ascending-order iterator over a [`BitSet`], created by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_and_contains_across_word_boundary() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64)); // duplicate
        assert_eq!(s.len(), 4);
        for v in [0, 63, 64, 129] {
            assert!(s.contains(v), "missing {v}");
        }
        assert!(!s.contains(1));
        assert!(!s.contains(128));
    }

    #[test]
    fn remove_round_trips() {
        let mut s = BitSet::new(70);
        s.insert(5);
        s.insert(65);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
        assert!(s.contains(65));
        assert!(!s.remove(200)); // out of range is a no-op
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = BitSet::new(200);
        for v in [199, 3, 77, 64, 0] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 77, 199]);
    }

    #[test]
    fn intersection_len_counts_common_members() {
        let a: BitSet = [1usize, 2, 3, 70].into_iter().collect();
        let b: BitSet = [2usize, 3, 4, 70, 71].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersection_len(&a), 3);
    }

    #[test]
    fn intersect_with_keeps_common_members() {
        let mut a: BitSet = [1usize, 2, 3, 70].into_iter().collect();
        let b: BitSet = [2usize, 3, 4, 70, 200].into_iter().collect();
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3, 70]);
        // A shorter other clears self's high words.
        let mut c: BitSet = [1usize, 200].into_iter().collect();
        let d: BitSet = [1usize].into_iter().collect();
        c.intersect_with(&d);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn copy_from_overwrites() {
        let mut a: BitSet = [1usize, 200].into_iter().collect();
        let b: BitSet = [3usize, 64].into_iter().collect();
        a.copy_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 64]);
        assert_eq!(a.capacity(), 201); // capacity unchanged
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn copy_from_rejects_overflow() {
        let mut a = BitSet::new(4);
        let b: BitSet = [70usize].into_iter().collect();
        a.copy_from(&b);
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitSet::new(100);
        a.insert(1);
        let b: BitSet = [2usize, 99].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 99]);
    }

    #[test]
    fn clear_empties() {
        let mut s: BitSet = [1usize, 2, 3].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [10usize, 5].into_iter().collect();
        assert_eq!(s.capacity(), 11);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stable_key_ignores_capacity() {
        let mut a = BitSet::new(65);
        let mut b = BitSet::new(1024);
        for v in [0, 63, 64] {
            a.insert(v);
            b.insert(v);
        }
        assert_eq!(a.stable_key(), b.stable_key());
        b.insert(700);
        assert_ne!(a.stable_key(), b.stable_key());
        // Empty sets of any capacity share the empty key.
        assert_eq!(BitSet::new(0).stable_key(), BitSet::new(999).stable_key());
        assert_eq!(BitSet::new(0).stable_key().words(), &[] as &[u64]);
    }

    #[test]
    fn stable_key_is_hashable() {
        use std::collections::HashMap;
        let mut map = HashMap::new();
        let s: BitSet = [1usize, 2, 3].into_iter().collect();
        map.insert(s.stable_key(), "first");
        let t: BitSet = {
            let mut t = BitSet::new(500);
            for v in [1usize, 2, 3] {
                t.insert(v);
            }
            t
        };
        assert_eq!(map.get(&t.stable_key()), Some(&"first"));
    }

    #[test]
    fn debug_is_nonempty() {
        let s: BitSet = [1usize].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
        let empty = BitSet::new(0);
        assert_eq!(format!("{empty:?}"), "{}");
    }
}
