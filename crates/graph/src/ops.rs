//! Graph sum, difference and subgraph extraction.
//!
//! These implement Definitions 1 and 2 of the DATE'05 paper:
//!
//! * **Sum** (Definition 1): `A = G + H` with `V_A = V_G ∪ V_H` and
//!   `E_A = E_G ∪ E_H`. On our dense fixed-order graphs both operands must
//!   have the same order and the edge sets are unioned.
//! * **Difference** (Definition 2): given a graph `G` and a subgraph `S`,
//!   the *remaining graph* `R` keeps the full vertex set (`V_R = V`) and
//!   removes exactly the subgraph's edges (`E_R = E − E_S`). This is the
//!   operation the decomposition loop applies after every matching.

use crate::{DiGraph, Edge, GraphError, NodeId, Result};

/// Returns the graph sum `g + h` (Definition 1).
///
/// # Errors
///
/// Returns [`GraphError::OrderMismatch`] when the operands have different
/// vertex counts.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), noc_graph::GraphError> {
/// use noc_graph::{ops, DiGraph};
/// let a = DiGraph::from_edges(3, [(0, 1)])?;
/// let b = DiGraph::from_edges(3, [(1, 2)])?;
/// let sum = ops::sum(&a, &b)?;
/// assert_eq!(sum.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn sum(g: &DiGraph, h: &DiGraph) -> Result<DiGraph> {
    if g.node_count() != h.node_count() {
        return Err(GraphError::OrderMismatch {
            left: g.node_count(),
            right: h.node_count(),
        });
    }
    let mut out = g.clone();
    for e in h.edges() {
        out.try_add_edge(e.src, e.dst)?;
    }
    Ok(out)
}

/// Returns the *remaining graph* `g − s` (Definition 2).
///
/// The vertex set is preserved; exactly the edges of `s` are removed.
///
/// # Errors
///
/// Returns [`GraphError::OrderMismatch`] if the orders differ and
/// [`GraphError::NotASubgraph`] if `s` has an edge absent from `g` (in which
/// case `s` is not a subgraph and the difference is undefined).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), noc_graph::GraphError> {
/// use noc_graph::{ops, DiGraph};
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// let s = DiGraph::from_edges(3, [(1, 2)])?;
/// let r = ops::difference(&g, &s)?;
/// assert_eq!(r.edge_count(), 2);
/// assert_eq!(r.node_count(), 3); // vertex set unchanged
/// # Ok(())
/// # }
/// ```
pub fn difference(g: &DiGraph, s: &DiGraph) -> Result<DiGraph> {
    if g.node_count() != s.node_count() {
        return Err(GraphError::OrderMismatch {
            left: g.node_count(),
            right: s.node_count(),
        });
    }
    let mut out = g.clone();
    for e in s.edges() {
        if !out.remove_edge(e.src, e.dst) {
            return Err(GraphError::NotASubgraph(e.src, e.dst));
        }
    }
    Ok(out)
}

/// Removes the listed edges from `g`, returning the remaining graph.
///
/// Unlike [`difference`] this accepts a bare edge list, which is how the
/// decomposition engine subtracts a *matching image* without materializing
/// an intermediate [`DiGraph`].
///
/// # Errors
///
/// Returns [`GraphError::NotASubgraph`] if any edge is absent from `g`.
pub fn subtract_edges<I>(g: &DiGraph, edges: I) -> Result<DiGraph>
where
    I: IntoIterator,
    I::Item: Into<Edge>,
{
    let mut out = g.clone();
    for e in edges {
        let e = e.into();
        if !out.remove_edge(e.src, e.dst) {
            return Err(GraphError::NotASubgraph(e.src, e.dst));
        }
    }
    Ok(out)
}

/// Builds the edge-induced subgraph of `g` containing exactly `edges`.
///
/// The vertex set is preserved (same order as `g`), matching the paper's
/// convention that subgraphs share the host vertex set.
///
/// # Errors
///
/// Returns [`GraphError::MissingEdge`] if an edge is not present in `g`.
pub fn edge_induced<I>(g: &DiGraph, edges: I) -> Result<DiGraph>
where
    I: IntoIterator,
    I::Item: Into<Edge>,
{
    let mut out = DiGraph::new(g.node_count());
    for e in edges {
        let e = e.into();
        if !g.has_edge(e.src, e.dst) {
            return Err(GraphError::MissingEdge(e.src, e.dst));
        }
        out.try_add_edge(e.src, e.dst)?;
    }
    Ok(out)
}

/// Relabels the order-`k` graph `small` into an order-`n` graph by the
/// injective vertex map `embed[i] = image of vertex i`.
///
/// This is how a library primitive's representation graph is *planted* into
/// a host graph: each pattern edge `(u, v)` becomes `(embed[u], embed[v])`.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] if any image vertex is `>= n`.
///
/// # Panics
///
/// Panics if `embed.len() != small.node_count()` or `embed` repeats a vertex.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), noc_graph::GraphError> {
/// use noc_graph::{ops, DiGraph, NodeId};
/// let pattern = DiGraph::cycle(3);
/// let planted = ops::embed(&pattern, 6, &[NodeId(5), NodeId(1), NodeId(3)])?;
/// assert!(planted.has_edge(NodeId(5), NodeId(1)));
/// assert!(planted.has_edge(NodeId(3), NodeId(5)));
/// # Ok(())
/// # }
/// ```
pub fn embed(small: &DiGraph, n: usize, embed: &[NodeId]) -> Result<DiGraph> {
    assert_eq!(
        embed.len(),
        small.node_count(),
        "embedding must map every pattern vertex"
    );
    let mut seen = std::collections::BTreeSet::new();
    for &v in embed {
        assert!(seen.insert(v), "embedding must be injective; {v} repeated");
    }
    let mut out = DiGraph::new(n);
    for e in small.edges() {
        out.try_add_edge(embed[e.src.index()], embed[e.dst.index()])?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> DiGraph {
        DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn sum_unions_edges() {
        let a = DiGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let b = DiGraph::from_edges(3, [(1, 2), (2, 0)]).unwrap();
        let s = sum(&a, &b).unwrap();
        assert_eq!(s, tri());
    }

    #[test]
    fn sum_rejects_order_mismatch() {
        let a = DiGraph::new(3);
        let b = DiGraph::new(4);
        assert!(matches!(sum(&a, &b), Err(GraphError::OrderMismatch { .. })));
    }

    #[test]
    fn difference_preserves_vertex_set() {
        let g = tri();
        let s = DiGraph::from_edges(3, [(2, 0)]).unwrap();
        let r = difference(&g, &s).unwrap();
        assert_eq!(r.node_count(), 3);
        assert_eq!(r.edge_vec(), vec![Edge::from((0, 1)), Edge::from((1, 2))]);
    }

    #[test]
    fn difference_of_self_is_edgeless() {
        let g = tri();
        let r = difference(&g, &g).unwrap();
        assert!(r.is_edgeless());
        assert_eq!(r.node_count(), 3);
    }

    #[test]
    fn difference_rejects_non_subgraph() {
        let g = tri();
        let s = DiGraph::from_edges(3, [(0, 2)]).unwrap(); // reverse edge absent
        assert_eq!(
            difference(&g, &s),
            Err(GraphError::NotASubgraph(NodeId(0), NodeId(2)))
        );
    }

    #[test]
    fn sum_then_difference_round_trips() {
        let a = DiGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let b = DiGraph::from_edges(4, [(1, 2), (3, 0)]).unwrap();
        let s = sum(&a, &b).unwrap();
        let r = difference(&s, &b).unwrap();
        assert_eq!(r, a);
    }

    #[test]
    fn subtract_edges_matches_difference() {
        let g = tri();
        let r1 = subtract_edges(&g, [(1, 2)]).unwrap();
        let s = DiGraph::from_edges(3, [(1, 2)]).unwrap();
        let r2 = difference(&g, &s).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn subtract_missing_edge_fails() {
        let g = tri();
        assert!(subtract_edges(&g, [(0, 2)]).is_err());
    }

    #[test]
    fn edge_induced_extracts_exactly_those_edges() {
        let g = DiGraph::complete(4);
        let s = edge_induced(&g, [(0, 1), (1, 0)]).unwrap();
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.node_count(), 4);
        assert!(edge_induced(&DiGraph::new(2), [(0, 1)]).is_err());
    }

    #[test]
    fn embed_plants_pattern() {
        let pat = DiGraph::out_star(3); // 0 -> 1, 0 -> 2
        let planted = embed(&pat, 10, &[NodeId(7), NodeId(2), NodeId(9)]).unwrap();
        assert_eq!(planted.edge_count(), 2);
        assert!(planted.has_edge(NodeId(7), NodeId(2)));
        assert!(planted.has_edge(NodeId(7), NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn embed_rejects_repeated_image() {
        let pat = DiGraph::path(2);
        let _ = embed(&pat, 5, &[NodeId(1), NodeId(1)]);
    }

    #[test]
    fn embed_rejects_out_of_bounds_image() {
        let pat = DiGraph::path(2);
        assert!(embed(&pat, 2, &[NodeId(0), NodeId(5)]).is_err());
    }
}
