//! Graphviz DOT export for directed graphs.
//!
//! Synthesized topologies are easiest to review visually; `to_dot` renders
//! any [`DiGraph`] (optionally with vertex labels and edge attributes) in a
//! form `dot -Tpdf` accepts.

use crate::DiGraph;

/// Renders `g` as a Graphviz `digraph`.
///
/// `name` is the graph name; `label` supplies per-vertex labels and
/// `edge_attr` optional per-edge attribute strings (e.g. `"color=red"`,
/// or an empty string for none).
///
/// # Examples
///
/// ```
/// use noc_graph::{dot, DiGraph};
/// let g = DiGraph::cycle(3);
/// let text = dot::to_dot(&g, "ring", |v| format!("core{v}"), |_, _| String::new());
/// assert!(text.starts_with("digraph ring {"));
/// assert!(text.contains("n0 -> n1"));
/// ```
pub fn to_dot(
    g: &DiGraph,
    name: &str,
    mut label: impl FnMut(crate::NodeId) -> String,
    mut edge_attr: impl FnMut(crate::NodeId, crate::NodeId) -> String,
) -> String {
    let mut out = format!("digraph {name} {{\n");
    out.push_str("  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for v in g.nodes() {
        out.push_str(&format!("  n{} [label=\"{}\"];\n", v.index(), label(v)));
    }
    for e in g.edges() {
        let attrs = edge_attr(e.src, e.dst);
        if attrs.is_empty() {
            out.push_str(&format!("  n{} -> n{};\n", e.src.index(), e.dst.index()));
        } else {
            out.push_str(&format!(
                "  n{} -> n{} [{}];\n",
                e.src.index(),
                e.dst.index(),
                attrs
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn renders_vertices_and_edges() {
        let g = DiGraph::from_edges(3, [(0, 1), (2, 0)]).unwrap();
        let text = to_dot(&g, "t", |v| format!("v{v}"), |_, _| String::new());
        assert!(text.contains("n0 [label=\"v0\"]"));
        assert!(text.contains("n2 [label=\"v2\"]"));
        assert!(text.contains("n0 -> n1;"));
        assert!(text.contains("n2 -> n0;"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn edge_attributes_are_emitted() {
        let g = DiGraph::from_edges(2, [(0, 1)]).unwrap();
        let text = to_dot(
            &g,
            "t",
            |v| v.to_string(),
            |s, d| format!("label=\"{}-{}\"", s.index(), d.index()),
        );
        assert!(text.contains("n0 -> n1 [label=\"0-1\"];"));
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let g = DiGraph::new(0);
        let text = to_dot(&g, "empty", |_| String::new(), |_, _| String::new());
        assert!(text.starts_with("digraph empty {"));
        assert!(text.ends_with("}\n"));
        let _ = NodeId(0); // silence unused import in cfg(test)
    }
}
