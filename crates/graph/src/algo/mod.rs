//! Graph algorithms used by the synthesis flow.
//!
//! * [`paths`] — BFS hop counts, weighted shortest paths, all-pairs hop
//!   matrices and diameter (bounds the custom architecture's worst-case hop
//!   count, Section 4.3 of the paper).
//! * [`connectivity`] — weak connectivity, strongly connected components and
//!   directed cycle detection (deadlock analysis of routing tables).
//! * [`partition`] — Kernighan–Lin bipartitioning and bisection bandwidth
//!   (the wiring-resource constraint of Section 4.2).

pub mod connectivity;
pub mod partition;
pub mod paths;

pub use connectivity::{
    find_cycle, is_weakly_connected, strongly_connected_components, weak_components,
};
pub use partition::{bisection_bandwidth, kernighan_lin, Bipartition};
pub use paths::{bfs_distances, diameter, dijkstra, hop_matrix, shortest_path, PathResult};
